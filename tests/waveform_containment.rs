//! The abstraction's fundamental soundness property at *waveform*
//! granularity: every concrete waveform tuple produced by exact
//! event-driven simulation under floating-mode inputs is contained in the
//! fixpoint domains — per net, the settling class is non-empty and the
//! last event time lies inside the class's last-transition interval.
//!
//! (Settle-time containment is checked elsewhere; this test uses full
//! traces with pre-time-0 noise, which exercise glitching and multi-event
//! behaviour the per-vector simulator cannot.)

use ltt_core::{FixpointResult, Narrower};
use ltt_netlist::generators::{figure1, random_circuit, RandomCircuitConfig};
use ltt_sta::{simulate, WaveformTrace};
use ltt_waveform::{Level, Signal, Time};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random floating-mode input trace: a few noise events in [-40, 0), then
/// the settled value at 0.
fn random_trace(rng: &mut StdRng) -> WaveformTrace {
    let initial = rng.gen_bool(0.5);
    let noise: Vec<(i64, bool)> = (0..rng.gen_range(0..4))
        .map(|_| (rng.gen_range(-40..0), rng.gen_bool(0.5)))
        .collect();
    WaveformTrace::floating(initial, noise, rng.gen_bool(0.5))
}

fn check_containment(c: &ltt_netlist::Circuit, traces_seed: u64) {
    let mut nw = Narrower::new(c);
    for &i in c.inputs() {
        nw.narrow_net(i, Signal::floating_input());
    }
    assert_eq!(nw.reach_fixpoint(), FixpointResult::Fixpoint);

    let mut rng = StdRng::seed_from_u64(traces_seed);
    let inputs: Vec<WaveformTrace> = c.inputs().iter().map(|_| random_trace(&mut rng)).collect();
    let traces = simulate(c, &inputs);

    for net in c.net_ids() {
        let trace = &traces[net.index()];
        let class = Level::from_bool(trace.settles_to());
        let domain = nw.domain(net);
        let interval = domain[class];
        assert!(
            !interval.is_empty(),
            "{}: net {} settles to {class} but the class is empty (domain {domain})",
            c.name(),
            c.net(net).name()
        );
        // LD(trace) = last event time (transport delays: stable after the
        // last event), or −∞ for a constant trace. Containment: the
        // interval's bounds must bracket it (lmin = −∞ waives existence).
        match trace.last_event() {
            None => {
                assert!(
                    interval.lmin() == Time::NEG_INF,
                    "{}: constant net {} but class {class} requires a transition ({domain})",
                    c.name(),
                    c.net(net).name()
                );
            }
            Some(event_time) => {
                // The abstraction's LD(f) is the last time the waveform
                // *differs* from its settle value; for a (normalized) event
                // at time t the waveform differs at t − 1, so the class
                // interval must contain event_time − 1.
                let ld = Time::new(event_time) - 1;
                assert!(
                    interval.contains_time(ld),
                    "{}: net {} last-difference {ld} outside class {class} interval {} of {domain}",
                    c.name(),
                    c.net(net).name(),
                    interval
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_circuit_traces_are_contained(seed in 0u64..50_000, tseed in 0u64..1000) {
        let c = random_circuit(&RandomCircuitConfig {
            num_inputs: 6,
            num_gates: 35,
            num_outputs: 2,
            max_fanin: 3,
            depth_bias: 4,
            delay: 10,
            seed,
        });
        check_containment(&c, tseed);
    }

    #[test]
    fn figure1_traces_are_contained(tseed in 0u64..2000) {
        check_containment(&figure1(10), tseed);
    }
}

/// Transition-mode containment: with inputs restricted to
/// `(0|_0^0, 1|_0^0)` — every input's last difference at exactly time 0,
/// i.e. a toggle event at time 1 — every all-inputs-toggling two-vector
/// trace lies inside the transition-mode fixpoint domains.
#[test]
fn transition_mode_traces_are_contained() {
    let c = figure1(10);
    let mut nw = Narrower::new(&c);
    for &i in c.inputs() {
        nw.narrow_net(i, Signal::transition_input());
    }
    assert_eq!(nw.reach_fixpoint(), FixpointResult::Fixpoint);

    for v1_bits in 0u32..128 {
        let inputs: Vec<WaveformTrace> = (0..7)
            .map(|i| {
                let v1 = (v1_bits >> i) & 1 == 1;
                WaveformTrace::new(v1, vec![(1, !v1)])
            })
            .collect();
        let traces = simulate(&c, &inputs);
        for net in c.net_ids() {
            let trace = &traces[net.index()];
            let class = Level::from_bool(trace.settles_to());
            let interval = nw.domain(net)[class];
            assert!(
                !interval.is_empty(),
                "net {} settles to {class}, class empty under v1={v1_bits:07b}",
                c.net(net).name()
            );
            match trace.last_event() {
                None => assert!(interval.lmin() == Time::NEG_INF),
                Some(t) => assert!(
                    interval.contains_time(Time::new(t) - 1),
                    "net {}: LD {} outside {} (v1={v1_bits:07b})",
                    c.net(net).name(),
                    t - 1,
                    interval
                ),
            }
        }
    }
}
