//! Differential fuzz harness for the two verification backends.
//!
//! The narrowing pipeline (`ltt-core`) and the CNF/CDCL oracle
//! (`ltt-sat`) share nothing beyond the netlist: different abstractions
//! (waveform intervals vs boolean threshold variables), different search
//! (case analysis vs clause learning), different code. Agreement between
//! them on hundreds of random circuits — and with the exhaustive
//! floating-mode oracle where cones are small enough to enumerate — is
//! the strongest soundness evidence the repo has for either engine.
//!
//! Also pinned here: the hybrid fallback contract on the `path_blowup`
//! instance — under a budget that exhausts narrowing, `--engine hybrid`
//! must return a `[lower, upper]` interval at least as tight as
//! narrowing's, and strictly tighter when the SAT probes decide.

use ltt_core::{Budget, CheckSession, Engine, LearningMode, VerifyConfig};
use ltt_netlist::generators::{random_circuit, serial_false_path_gadgets, RandomCircuitConfig};
use ltt_netlist::Circuit;
use ltt_sta::{exhaustive_floating_delay, vector_violates};
use std::time::Duration;

fn session(circuit: &Circuit, engine: Engine) -> CheckSession<'_> {
    CheckSession::new(
        circuit,
        VerifyConfig {
            engine,
            ..Default::default()
        },
    )
}

/// Cross-checks every output of `circuit` between the three deciders:
/// narrowing bisection, SAT bisection, and (where the fanin cone is small
/// enough) the exhaustive floating-mode oracle. Around the agreed exact
/// delay, also cross-checks the verdicts of single checks at δ = exact
/// (must be violated, with certified witnesses) and δ = exact + 1 (must
/// be safe).
fn assert_engines_agree(circuit: &Circuit) {
    let narrow = session(circuit, Engine::Narrow);
    let sat = session(circuit, Engine::Sat);
    for &o in circuit.outputs() {
        let name = circuit.net(o).name();
        let n = ltt_sat::exact_delay(&narrow, o);
        let s = ltt_sat::exact_delay(&sat, o);
        assert!(
            n.proven_exact,
            "{}/{name}: narrowing undecided",
            circuit.name()
        );
        assert!(s.proven_exact, "{}/{name}: SAT undecided", circuit.name());
        assert_eq!(
            n.delay,
            s.delay,
            "{}/{name}: narrowing {} vs SAT {}",
            circuit.name(),
            name,
            n.delay
        );
        if let Some(oracle) = exhaustive_floating_delay(circuit, o) {
            assert_eq!(
                s.delay,
                oracle.delay,
                "{}/{name}: engines {} vs exhaustive oracle {}",
                circuit.name(),
                s.delay,
                oracle.delay
            );
        }
        let exact = s.delay;
        if exact > 0 {
            let w = s.vector.as_ref().expect("SAT witness for positive delay");
            assert!(
                vector_violates(circuit, w, o, exact),
                "{}/{name}: SAT witness fails certification",
                circuit.name()
            );
            let rn = narrow.verify(o, exact);
            let rs = ltt_sat::verify(&sat, o, exact);
            assert!(
                rn.verdict.is_violation(),
                "{}/{name} δ=exact",
                circuit.name()
            );
            assert!(
                rs.verdict.is_violation(),
                "{}/{name} δ=exact",
                circuit.name()
            );
        }
        let rn = narrow.verify(o, exact + 1);
        let rs = ltt_sat::verify(&sat, o, exact + 1);
        assert!(
            rn.verdict.is_no_violation(),
            "{}/{name} δ=exact+1",
            circuit.name()
        );
        assert!(
            rs.verdict.is_no_violation(),
            "{}/{name} δ=exact+1",
            circuit.name()
        );
    }
}

fn fuzz_config(seed: u64) -> RandomCircuitConfig {
    // Rotate through a few shape profiles so the sweep covers wide/flat,
    // narrow/deep, and MUX-heavy DAGs rather than 500 near-clones.
    let profile = seed % 4;
    RandomCircuitConfig {
        num_inputs: [6, 8, 5, 7][profile as usize],
        num_gates: [20, 28, 36, 24][profile as usize],
        num_outputs: 2,
        max_fanin: [3, 2, 3, 4][profile as usize],
        depth_bias: [2, 6, 8, 4][profile as usize],
        delay: [10, 7, 13, 10][profile as usize],
        seed: 0x5EED_0000 + seed,
    }
}

/// Always-on smoke slice of the sweep (debug builds run this in seconds).
#[test]
fn engines_agree_on_random_circuits_smoke() {
    for seed in 0..20 {
        assert_engines_agree(&random_circuit(&fuzz_config(seed)));
    }
}

/// The full sweep: 500 random circuits (ISSUE acceptance floor), release
/// builds only — the narrowing + SAT + oracle triple per output is too
/// slow unoptimized.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; covered by `cargo test --release`"
)]
fn engines_agree_on_500_random_circuits() {
    for seed in 0..500 {
        assert_engines_agree(&random_circuit(&fuzz_config(seed)));
    }
}

/// Classic structures through the same triple-agreement check.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; covered by `cargo test --release`"
)]
fn engines_agree_on_structured_circuits() {
    use ltt_netlist::generators::{
        carry_skip_adder, cascade, false_path_chain, figure1, parity_tree, ripple_carry_adder,
        shared_select_mux_chain,
    };
    use ltt_netlist::GateKind;
    assert_engines_agree(&figure1(10));
    assert_engines_agree(&cascade(GateKind::Nand, 6, 10));
    assert_engines_agree(&cascade(GateKind::Nor, 5, 10));
    assert_engines_agree(&parity_tree(6, 10));
    assert_engines_agree(&ripple_carry_adder(3, 10));
    assert_engines_agree(&carry_skip_adder(4, 2, 10));
    assert_engines_agree(&false_path_chain(4, 3, 10));
    assert_engines_agree(&shared_select_mux_chain(4, 10));
    for k in [1, 2, 3] {
        assert_engines_agree(&serial_false_path_gadgets(k, 10));
    }
}

/// A config whose narrowing pipeline rides entirely on case analysis and
/// exhausts after one backtrack — the narrowing side of the hybrid
/// strictness tests.
fn starved_config(engine: Engine) -> VerifyConfig {
    VerifyConfig {
        engine,
        max_backtracks: 1,
        dominators: false,
        stem_correlation: false,
        learning: LearningMode::Off,
        ..Default::default()
    }
}

/// Hybrid must return an interval *strictly* tighter than starved
/// narrowing when the SAT probes can decide the remaining gap.
#[test]
fn hybrid_interval_strictly_tighter_when_sat_decides() {
    let c = serial_false_path_gadgets(4, 10);
    let s = c.outputs()[0];
    let narrow = CheckSession::new(&c, starved_config(Engine::Narrow));
    let n = ltt_sat::exact_delay(&narrow, s);
    assert!(!n.proven_exact, "narrowing should be starved");
    let hybrid = CheckSession::new(&c, starved_config(Engine::Hybrid));
    let h = ltt_sat::exact_delay(&hybrid, s);
    assert!(h.proven_exact, "SAT fallback decides the gap");
    assert_eq!(h.delay, 240, "4 gadgets × 60 true delay");
    // Strictly tighter: the hybrid interval is a proper subset.
    assert!(h.delay >= n.delay && h.upper_bound <= n.upper_bound);
    assert!(h.upper_bound - h.delay < n.upper_bound - n.delay);
}

/// The ISSUE acceptance instance: `path_blowup` at k = 800. Narrowing
/// exhausts its budget; hybrid must return an interval at least as tight
/// (never looser). The comparison runs under a deterministic backtrack
/// budget: under a wall-clock deadline two *independent* runs trip at
/// slightly different points (observed: [100, 55295] vs [100, 55316]),
/// so a cross-run interval comparison would test scheduler jitter, not
/// the fallback contract. At this size the gadget chain's settle grids
/// blow past the encoder's threshold-variable cap, so the SAT fallback
/// reports `Unknown` and the contract's "or-equally" arm is the one
/// exercised — strict tightening is pinned by
/// `hybrid_interval_strictly_tighter_when_sat_decides` above.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; covered by `cargo test --release`"
)]
fn hybrid_never_looser_on_path_blowup_800() {
    let c = serial_false_path_gadgets(800, 10);
    let s = c.outputs()[0];
    let narrow = CheckSession::new(&c, starved_config(Engine::Narrow));
    let n = ltt_sat::exact_delay(&narrow, s);
    assert!(!n.proven_exact, "backtrack cap should starve narrowing");
    let hybrid = CheckSession::new(&c, starved_config(Engine::Hybrid));
    let h = ltt_sat::exact_delay(&hybrid, s);
    assert!(
        h.delay >= n.delay && h.upper_bound <= n.upper_bound,
        "hybrid [{}, {}] looser than narrowing [{}, {}]",
        h.delay,
        h.upper_bound,
        n.delay,
        n.upper_bound
    );
    // Both intervals must bracket the true delay (60 per gadget).
    assert!(n.delay <= 48_000 && n.upper_bound >= 48_000);
    assert!(h.delay <= 48_000 && h.upper_bound >= 48_000);
}

/// Soundness under the ISSUE's 50 ms wall-clock deadline on the same
/// k = 800 instance: each engine separately must degrade to a bracketing
/// interval, never a wrong exact answer. (No cross-engine comparison —
/// see `hybrid_never_looser_on_path_blowup_800` for why.)
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; covered by `cargo test --release`"
)]
fn engines_stay_sound_on_path_blowup_800_under_deadline() {
    let c = serial_false_path_gadgets(800, 10);
    let s = c.outputs()[0];
    for engine in [Engine::Narrow, Engine::Sat, Engine::Hybrid] {
        let budget = Budget::unlimited().with_wall(Duration::from_millis(50));
        let sess = session(&c, engine);
        let r = ltt_sat::exact_delay_budgeted(&sess, s, &budget);
        assert!(
            r.delay <= 48_000 && r.upper_bound >= 48_000,
            "{engine:?}: interval [{}, {}] does not bracket 48000",
            r.delay,
            r.upper_bound
        );
        if r.proven_exact {
            assert_eq!(r.delay, 48_000, "{engine:?} claims a wrong exact delay");
        }
    }
}
