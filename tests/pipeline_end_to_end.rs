//! End-to-end integration of the full pipeline: the paper's worked
//! examples, cross-crate, through the public API only.

use ltt_core::{exact_delay, verify, Stage, StageVerdict, Verdict, VerifyConfig};
use ltt_netlist::generators::{
    carry_skip_adder, figure1, forked_false_path_chain, stem_conflict_circuit,
};
use ltt_netlist::suite::c17_nor;
use ltt_sta::vector_violates;

#[test]
fn example2_full_pipeline() {
    // Paper Example 2: Figure 1 circuit, δ = 61 impossible, δ = 60 exact.
    let c = figure1(10);
    let s = c.outputs()[0];
    let config = VerifyConfig::default();

    let r = verify(&c, s, 61, &config);
    assert_eq!(
        r.verdict,
        Verdict::NoViolation {
            stage: Stage::Narrowing
        },
        "plain narrowing proves δ = 61, as in the paper's trace"
    );

    let r = verify(&c, s, 60, &config);
    let Verdict::Violation { vector } = &r.verdict else {
        panic!("expected a violation at δ = 60, got {:?}", r.verdict);
    };
    assert!(vector_violates(&c, vector, s, 60));
}

#[test]
fn c17_exact_is_50_on_nor_netlist() {
    // Table 1 row 1: the NOR-gate implementation of c17 has top = exact = 50.
    let c = c17_nor(10);
    let config = VerifyConfig::default();
    for &o in c.outputs() {
        let search = exact_delay(&c, o, &config);
        assert!(search.proven_exact);
        assert_eq!(search.delay, c.arrival_times()[o.index()]);
    }
    assert_eq!(c.topological_delay(), 50);
}

#[test]
fn dominator_gadget_settles_at_the_dominator_stage() {
    let c = forked_false_path_chain(10, 4, 10);
    let s = c.outputs()[0];
    let config = VerifyConfig::default();
    let exact = 10 * (10 + 2);
    let r = verify(&c, s, exact + 1, &config);
    assert_eq!(
        r.verdict,
        Verdict::NoViolation {
            stage: Stage::Dominators
        }
    );
    assert_eq!(r.before_gitd, StageVerdict::Possible);
    // And the exact δ yields a certified vector.
    let r = verify(&c, s, exact, &config);
    assert!(matches!(r.verdict, Verdict::Violation { .. }));
}

#[test]
fn stem_gadget_settles_at_the_stem_stage() {
    let c = stem_conflict_circuit(12, 10);
    let s = c.outputs()[0];
    let config = VerifyConfig::default();
    let r = verify(&c, s, 111, &config);
    assert_eq!(
        r.verdict,
        Verdict::NoViolation {
            stage: Stage::StemCorrelation
        }
    );
    assert_eq!(r.after_gitd, Some(StageVerdict::Possible));
}

#[test]
fn ablation_stage_order_is_monotone() {
    // Disabling a stage never turns N into V, only into P (soundness of
    // the staging): check all four configurations on the stem gadget.
    let c = stem_conflict_circuit(10, 10);
    let s = c.outputs()[0];
    let delta = 91;
    let mut outcomes = Vec::new();
    for (dom, stems, ca) in [
        (false, false, false),
        (true, false, false),
        (true, true, false),
        (true, true, true),
    ] {
        let config = VerifyConfig {
            dominators: dom,
            stem_correlation: stems,
            case_analysis: ca,
            ..Default::default()
        };
        let r = verify(&c, s, delta, &config);
        outcomes.push(r.verdict.is_no_violation());
    }
    // Once a configuration proves it, every stronger one does too.
    for w in outcomes.windows(2) {
        assert!(w[1] >= w[0], "stage power must be monotone: {outcomes:?}");
    }
    assert!(outcomes[3], "the full pipeline decides");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; covered by `cargo test --release`"
)]
fn carry_skip_pipeline_matches_oracle() {
    let c = carry_skip_adder(8, 4, 10);
    let cout = c.net_by_name("cout").unwrap();
    let oracle = ltt_sta::exhaustive_floating_delay(&c, cout).unwrap();
    let search = exact_delay(&c, cout, &VerifyConfig::default());
    assert!(search.proven_exact);
    assert_eq!(search.delay, oracle.delay);
    let v = search.vector.unwrap();
    assert!(vector_violates(&c, &v, cout, oracle.delay));
}

#[test]
fn transition_mode_is_sound_wrt_topology() {
    use ltt_core::DelayMode;
    let c = figure1(10);
    let s = c.outputs()[0];
    let config = VerifyConfig {
        delay_mode: DelayMode::Transition,
        case_analysis: false,
        ..Default::default()
    };
    // Beyond the topological delay nothing can transition in any mode.
    assert!(verify(&c, s, 71, &config).verdict.is_no_violation());
    // At small δ the system stays consistent (transitions at 0 exist).
    let r = verify(&c, s, 10, &config);
    assert!(!r.verdict.is_no_violation());
}
