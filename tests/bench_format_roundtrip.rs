//! Cross-crate property test: every generated circuit survives a
//! `.bench`-format round trip with identical logic function, identical
//! timing analysis, and identical verifier verdicts.

use ltt_core::{verify, VerifyConfig};
use ltt_netlist::bench_format::{parse_bench, write_bench};
use ltt_netlist::generators::{
    carry_skip_adder, false_path_chain, figure1, random_circuit, RandomCircuitConfig,
};
use ltt_netlist::{Circuit, DelayInterval};
use proptest::prelude::*;

fn roundtrip(c: &Circuit, delay: u32) -> Circuit {
    let text = write_bench(c);
    parse_bench(c.name(), &text, DelayInterval::fixed(delay)).expect("roundtrip parses")
}

fn assert_equivalent(a: &Circuit, b: &Circuit) {
    assert_eq!(a.num_gates(), b.num_gates());
    assert_eq!(a.inputs().len(), b.inputs().len());
    assert_eq!(a.outputs().len(), b.outputs().len());
    assert_eq!(a.topological_delay(), b.topological_delay());
    // Input order may be preserved by name; evaluate both on the same
    // vectors by name mapping.
    let n = a.inputs().len();
    if n <= 16 {
        for v in 0..(1u64 << n) {
            let vec_a: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            let mut vec_b = vec![false; n];
            for (i, &net) in a.inputs().iter().enumerate() {
                let name = a.net(net).name();
                let pos = b
                    .inputs()
                    .iter()
                    .position(|&bn| b.net(bn).name() == name)
                    .expect("same input names");
                vec_b[pos] = vec_a[i];
            }
            let out_a = a.evaluate(&vec_a);
            let out_b = b.evaluate(&vec_b);
            // Outputs may be reordered; match by name.
            for (k, &net) in a.outputs().iter().enumerate() {
                let name = a.net(net).name();
                let pos = b
                    .outputs()
                    .iter()
                    .position(|&bn| b.net(bn).name() == name)
                    .expect("same output names");
                assert_eq!(out_a[k], out_b[pos], "vector {v:b} output {name}");
            }
        }
    }
}

#[test]
fn figure1_roundtrips() {
    let c = figure1(10);
    let r = roundtrip(&c, 10);
    assert_equivalent(&c, &r);
    // Verifier verdicts carry over.
    let config = VerifyConfig::default();
    let s_a = c.outputs()[0];
    let s_b = r.net_by_name(c.net(s_a).name()).unwrap();
    assert_eq!(
        verify(&c, s_a, 61, &config).verdict.is_no_violation(),
        verify(&r, s_b, 61, &config).verdict.is_no_violation()
    );
}

#[test]
fn adders_roundtrip() {
    let c = carry_skip_adder(8, 4, 10);
    let r = roundtrip(&c, 10);
    assert_equivalent(&c, &r);
}

#[test]
fn chains_roundtrip() {
    for (p, q) in [(4, 2), (6, 3)] {
        let c = false_path_chain(p, q, 10);
        let r = roundtrip(&c, 10);
        assert_equivalent(&c, &r);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_circuits_roundtrip(seed in 0u64..1000) {
        let c = random_circuit(&RandomCircuitConfig {
            num_inputs: 6,
            num_gates: 25,
            num_outputs: 2,
            max_fanin: 3,
            depth_bias: 3,
            delay: 10,
            seed,
        });
        let r = roundtrip(&c, 10);
        assert_equivalent(&c, &r);
    }
}
