//! Determinism of the parallel batch engine, checked across crates: for
//! any job count, [`BatchRunner`] must produce **bit-identical** reports to
//! the serial run — same verdicts, same witness vectors, same stage
//! columns, same effort counters — on the paper's circuits, the false-path
//! gadgets, carry-skip adders, and property-tested random DAGs. The
//! session layer must also agree with the legacy one-shot entry points
//! (which it now implements), so this doubles as a regression net for the
//! shared-base-fixpoint seeding.

use ltt_core::{
    delay_profile, verify, BatchRunner, CaseStats, CheckSession, SolverStats, StageVerdict,
    StemStats, Verdict, VerifyConfig, VerifyReport,
};
use ltt_netlist::generators::{
    carry_skip_adder, false_path_chain, figure1, random_circuit, RandomCircuitConfig,
};
use ltt_netlist::Circuit;
use proptest::prelude::*;

/// Job count for the parallel side (`LTT_TEST_JOBS`, default 8 — more
/// workers than this machine may have cores, which is exactly the point:
/// determinism must not depend on the schedule).
fn test_jobs() -> usize {
    std::env::var("LTT_TEST_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// A bounded config so case analysis stays fast in debug builds; the
/// `Abandoned` verdicts a tight budget produces must be deterministic too.
fn config() -> VerifyConfig {
    VerifyConfig {
        max_backtracks: 2_000,
        ..Default::default()
    }
}

/// Everything a check reports except wall-clock.
type Fingerprint = (
    usize,
    i64,
    Verdict,
    StageVerdict,
    Option<StageVerdict>,
    Option<StageVerdict>,
    u64,
    SolverStats,
    StemStats,
    CaseStats,
);

fn fingerprint(r: &VerifyReport) -> Fingerprint {
    (
        r.output.index(),
        r.delta,
        r.verdict.clone(),
        r.before_gitd,
        r.after_gitd,
        r.after_stems,
        r.backtracks,
        r.solver,
        r.stems,
        r.case,
    )
}

/// The δ points worth probing on a circuit: around half, around the
/// topological delay, and past it.
fn probe_deltas(c: &Circuit) -> Vec<i64> {
    let top = c.topological_delay();
    let mut d = vec![top / 2, top - 1, top, top + 1];
    d.sort();
    d.dedup();
    d
}

fn assert_batches_identical(c: &Circuit) {
    let session = CheckSession::new(c, config());
    let serial = BatchRunner::serial();
    let parallel = BatchRunner::new(test_jobs());
    for delta in probe_deltas(c) {
        let a = serial.verify_all_outputs(&session, delta);
        let b = parallel.verify_all_outputs(&session, delta);
        let fa: Vec<Fingerprint> = a.reports.iter().map(fingerprint).collect();
        let fb: Vec<Fingerprint> = b.reports.iter().map(fingerprint).collect();
        assert_eq!(fa, fb, "{} δ = {delta}", c.name());
        assert_eq!(a.outcome(), b.outcome(), "{} δ = {delta}", c.name());
        // Aggregates are sums of identical parts.
        assert_eq!(a.summary.checks, b.summary.checks);
        assert_eq!(a.summary.violations, b.summary.violations);
        assert_eq!(a.summary.backtracks, b.summary.backtracks);
        assert_eq!(a.summary.solver, b.summary.solver);
    }
}

fn assert_session_matches_legacy(c: &Circuit) {
    let cfg = config();
    let session = CheckSession::new(c, cfg.clone());
    for delta in probe_deltas(c) {
        for &o in c.outputs() {
            let s = session.verify(o, delta);
            let l = verify(c, o, delta, &cfg);
            assert_eq!(
                s.verdict,
                l.verdict,
                "{} {} δ = {delta}",
                c.name(),
                o.index()
            );
        }
    }
}

fn assert_profiles_identical(c: &Circuit) {
    let session = CheckSession::new(c, config());
    let top = c.topological_delay();
    let deltas: Vec<i64> = (0..=top + 2).step_by(7).collect();
    for &o in c.outputs() {
        let serial = BatchRunner::serial().delay_profile(&session, o, &deltas);
        let parallel = BatchRunner::new(test_jobs()).delay_profile(&session, o, &deltas);
        assert_eq!(serial, parallel, "{} output {}", c.name(), o.index());
    }
    // The default-config session profile also agrees with the legacy
    // (always-dominators, no-learning) sweep on `possible` flags, because
    // learning constants are sound and dominators match.
    let o = c.outputs()[0];
    let legacy = delay_profile(c, o, &deltas);
    let session_profile = session.delay_profile(o, &deltas);
    for (a, b) in legacy.iter().zip(&session_profile) {
        assert_eq!(a.delta, b.delta);
        // Session (with learning) can only be tighter, never looser.
        assert!(
            a.possible || !b.possible,
            "{}: session resurrected a refuted δ = {}",
            c.name(),
            a.delta
        );
    }
}

#[test]
fn figure1_batches_are_deterministic() {
    let c = figure1(10);
    assert_batches_identical(&c);
    assert_session_matches_legacy(&c);
    assert_profiles_identical(&c);
}

#[test]
fn false_path_chain_batches_are_deterministic() {
    let c = false_path_chain(4, 3, 10);
    assert_batches_identical(&c);
    assert_session_matches_legacy(&c);
    assert_profiles_identical(&c);
}

#[test]
fn carry_skip_batches_are_deterministic() {
    let c = carry_skip_adder(4, 2, 10);
    assert_batches_identical(&c);
    assert_session_matches_legacy(&c);
    assert_profiles_identical(&c);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_dag_batches_are_deterministic(seed in any::<u64>()) {
        let c = random_circuit(&RandomCircuitConfig {
            seed,
            num_inputs: 10,
            num_gates: 60,
            num_outputs: 3,
            ..Default::default()
        });
        assert_batches_identical(&c);
        assert_session_matches_legacy(&c);
    }

    #[test]
    fn random_dag_profiles_are_deterministic(seed in any::<u64>()) {
        let c = random_circuit(&RandomCircuitConfig {
            seed,
            num_inputs: 8,
            num_gates: 40,
            num_outputs: 2,
            ..Default::default()
        });
        assert_profiles_identical(&c);
    }
}
