//! The Table 1 harness itself, tested on the fast half of the suite: the
//! generated rows must reproduce the paper's qualitative shape — who wins,
//! at which stage, and the exact-vs-topological relation per circuit.

use ltt_bench::table1::{render_rows, run_entry};
use ltt_core::VerifyConfig;
use ltt_netlist::suite::iscas85_suite;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; covered by `cargo test --release`"
)]
fn table1_rows_have_the_paper_shape() {
    let config = VerifyConfig {
        max_backtracks: 10_000,
        ..Default::default()
    };
    let suite = iscas85_suite(10);
    for entry in suite
        .iter()
        .filter(|e| e.circuit.num_gates() <= 1200 && e.name != "s6288")
    {
        let rows = run_entry(entry, &config);
        assert_eq!(rows.len(), 2, "{}", entry.name);
        let (proof_row, exact_row) = (&rows[0], &rows[1]);

        // Topological delay matches the paper exactly (by construction).
        assert_eq!(exact_row.top, entry.paper_top, "{} top", entry.name);
        // Exact delay matches the paper exactly (engineered gap).
        assert_eq!(
            Some(exact_row.delta),
            entry.paper_exact,
            "{} exact",
            entry.name
        );
        assert_eq!(exact_row.marker, 'E');
        // δ = exact: a certified vector.
        assert_eq!(exact_row.result, 'V', "{}", entry.name);
        // δ = exact + 1: proven, never via case analysis on these rows.
        assert_eq!(proof_row.delta, exact_row.delta + 1);
        assert_ne!(proof_row.result, 'A', "{}", entry.name);
        assert!(
            proof_row.before_gitd == 'N'
                || proof_row.after_gitd == 'N'
                || proof_row.after_stems == 'N'
                || proof_row.result == 'N',
            "{}: some stage must prove δ = exact + 1",
            entry.name
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; covered by `cargo test --release`"
)]
fn table1_stage_columns_follow_the_paper() {
    // The paper's qualitative stage structure:
    //   c1908-, c3540-style rows need the dominator stage;
    //   c2670-style rows need stem correlation;
    //   c5315-, c7552-style rows are settled before G.I.T.D.
    let config = VerifyConfig {
        max_backtracks: 10_000,
        ..Default::default()
    };
    let suite = iscas85_suite(10);
    let by_name = |n: &str| suite.iter().find(|e| e.name == n).unwrap();

    let rows = run_entry(by_name("s1908"), &config);
    assert_eq!(rows[0].before_gitd, 'P');
    assert_eq!(rows[0].after_gitd, 'N');

    let rows = run_entry(by_name("s2670"), &config);
    assert_eq!(rows[0].before_gitd, 'P');
    assert_eq!(rows[0].after_gitd, 'P');
    assert_eq!(rows[0].after_stems, 'N');

    let rendered = render_rows(&rows);
    assert!(rendered.contains("s2670"));
    assert!(rendered.contains("PAPER"));
}
