//! Observability must be a pure observer: running the pipeline with a
//! recording [`Obs`] handle attached produces **bit-identical** reports to
//! an uninstrumented run — same verdicts, same witness vectors, same
//! per-stage effort counters — at any worker count. Only wall-clock
//! timings are exempt (and those live outside the compared fingerprint).

use ltt_core::{
    BatchRunner, CaseStats, CheckSession, Obs, Recorder, SolverStats, StageEffort, StageVerdict,
    StemStats, Verdict, VerifyConfig, VerifyReport,
};
use ltt_netlist::generators::{carry_skip_adder, figure1, stem_conflict_circuit};
use ltt_netlist::suite::c17;
use ltt_netlist::Circuit;
use std::sync::Arc;

/// A bounded config so debug-build case analysis stays fast; abandoned
/// verdicts must be identical under instrumentation too.
fn config(obs: Obs) -> VerifyConfig {
    VerifyConfig {
        max_backtracks: 2_000,
        obs,
        ..Default::default()
    }
}

/// Everything a check reports except wall-clock.
type Fingerprint = (
    usize,
    i64,
    Verdict,
    StageVerdict,
    Option<StageVerdict>,
    Option<StageVerdict>,
    u64,
    SolverStats,
    StemStats,
    CaseStats,
    StageEffort,
);

fn fingerprint(r: &VerifyReport) -> Fingerprint {
    (
        r.output.index(),
        r.delta,
        r.verdict.clone(),
        r.before_gitd,
        r.after_gitd,
        r.after_stems,
        r.backtracks,
        r.solver,
        r.stems,
        r.case,
        r.effort,
    )
}

fn probe_checks(c: &Circuit) -> Vec<(ltt_netlist::NetId, i64)> {
    let top = c.topological_delay();
    let mut deltas = vec![top / 2, top - 1, top, top + 1];
    deltas.sort();
    deltas.dedup();
    c.outputs()
        .iter()
        .flat_map(|&o| deltas.iter().map(move |&d| (o, d)))
        .collect()
}

#[test]
fn recording_changes_no_report_at_any_job_count() {
    for circuit in [
        figure1(10),
        c17(10),
        stem_conflict_circuit(10, 10),
        carry_skip_adder(8, 4, 10),
    ] {
        let checks = probe_checks(&circuit);
        let quiet_session = CheckSession::new(&circuit, config(Obs::disabled()));
        let quiet = BatchRunner::new(1).run(&quiet_session, &checks);
        let quiet_prints: Vec<Fingerprint> = quiet.reports.iter().map(fingerprint).collect();

        for jobs in [1, 4] {
            let recorder = Arc::new(Recorder::new());
            let session = CheckSession::new(&circuit, config(Obs::recording(recorder.clone())));
            let traced = BatchRunner::new(jobs).run(&session, &checks);
            let traced_prints: Vec<Fingerprint> = traced.reports.iter().map(fingerprint).collect();
            assert_eq!(
                quiet_prints, traced_prints,
                "instrumented reports diverged at jobs={jobs}"
            );
            // The batch-level Table 1 effort breakdown is part of the
            // contract too (it is summed from the same integer counters).
            assert_eq!(
                quiet.summary.stage_effort, traced.summary.stage_effort,
                "stage_effort diverged at jobs={jobs}"
            );
            // And the run was actually observed: every check contributes
            // its four stage spans (prepare-time spans come on top).
            assert!(
                recorder.len() >= checks.len(),
                "only {} spans for {} checks",
                recorder.len(),
                checks.len()
            );
            let spans = recorder.spans();
            for stage in ["check.narrowing", "check.dominators"] {
                assert!(
                    spans.iter().any(|s| s.name == stage),
                    "no {stage} span recorded at jobs={jobs}"
                );
            }
        }
    }
}

#[test]
fn effort_counters_are_identical_serial_vs_parallel() {
    // Same property at the single-report level with a shared session:
    // two runners over one session, different job counts, one recording.
    let circuit = carry_skip_adder(8, 4, 10);
    let checks = probe_checks(&circuit);
    let session = CheckSession::new(&circuit, config(Obs::disabled()));
    let serial = BatchRunner::new(1).run(&session, &checks);

    let recorder = Arc::new(Recorder::new());
    let traced_session = CheckSession::new(&circuit, config(Obs::recording(recorder)));
    let parallel = BatchRunner::new(4).run(&traced_session, &checks);

    for (a, b) in serial.reports.iter().zip(&parallel.reports) {
        assert_eq!(fingerprint(a), fingerprint(b));
    }
    let total = serial.summary.stage_effort.total();
    assert_eq!(total, parallel.summary.stage_effort.total());
    // The narrowing stage always does work on these probes.
    assert!(total.events > 0);
}
