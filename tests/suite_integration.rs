//! Integration of the evaluation suite with the verifier: every stand-in's
//! engineered delays must be confirmed by the pipeline itself (the Table 1
//! regeneration in miniature), and the stage structure must match the spec.

use ltt_core::{exact_delay, verify, Stage, Verdict, VerifyConfig};
use ltt_netlist::suite::{standin, standin_specs, SpineKind};

fn critical_output(c: &ltt_netlist::Circuit) -> ltt_netlist::NetId {
    let arrival = c.arrival_times();
    c.outputs()
        .iter()
        .copied()
        .max_by_key(|o| arrival[o.index()])
        .unwrap()
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; covered by `cargo test --release`"
)]
fn every_standin_has_the_engineered_exact_delay() {
    let config = VerifyConfig {
        max_backtracks: 10_000,
        ..Default::default()
    };
    for spec in standin_specs() {
        let c = standin(&spec, 10);
        let s = critical_output(&c);
        let search = exact_delay(&c, s, &config);
        assert!(search.proven_exact, "{}: search undecided", spec.name);
        assert_eq!(
            search.delay,
            10 * spec.exact_levels as i64,
            "{}: exact delay",
            spec.name
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; covered by `cargo test --release`"
)]
fn standins_settle_at_their_designed_stage() {
    let config = VerifyConfig::default();
    for spec in standin_specs() {
        if spec.exact_levels == spec.levels {
            continue; // no false path: δ = exact + 1 exceeds top
        }
        let c = standin(&spec, 10);
        let s = critical_output(&c);
        let delta = 10 * spec.exact_levels as i64 + 1;
        let r = verify(&c, s, delta, &config);
        let Verdict::NoViolation { stage } = r.verdict else {
            panic!("{}: δ = {delta} not proven", spec.name);
        };
        let expected = match spec.kind {
            SpineKind::Chain => Stage::Narrowing,
            SpineKind::Forked => Stage::Dominators,
            SpineKind::StemMux => Stage::StemCorrelation,
        };
        assert_eq!(stage, expected, "{}: wrong deciding stage", spec.name);
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; covered by `cargo test --release`"
)]
fn filler_outputs_never_exceed_the_exact_delay() {
    // The stand-in construction promises that no filler path reaches the
    // exact delay; the verifier confirms it output by output.
    let config = VerifyConfig {
        max_backtracks: 2_000,
        ..Default::default()
    };
    for spec in standin_specs().into_iter().take(4) {
        let c = standin(&spec, 10);
        let critical = critical_output(&c);
        let exact = 10 * spec.exact_levels as i64;
        for &o in c.outputs() {
            if o == critical {
                continue;
            }
            let r = verify(&c, o, exact, &config);
            assert!(
                r.verdict.is_no_violation(),
                "{}: filler output {} can reach {exact}",
                spec.name,
                c.net(o).name()
            );
        }
    }
}
