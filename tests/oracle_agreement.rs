//! The central correctness property of the whole system, checked across
//! crates: on every circuit small enough for exhaustive simulation, the
//! verifier's exact-delay search must agree with the floating-mode oracle —
//! for random circuits, classic structures, and every false-path gadget.

use ltt_core::{exact_delay, VerifyConfig};
use ltt_netlist::generators::{
    array_multiplier, carry_skip_adder, cascade, false_path_chain, figure1,
    forked_false_path_chain, parity_tree, random_circuit, ripple_carry_adder,
    shared_select_mux_chain, stem_conflict_circuit, RandomCircuitConfig,
};
use ltt_netlist::transform::nor_mapping;
use ltt_netlist::{Circuit, GateKind};
use ltt_sta::{exhaustive_floating_delay, vector_violates};

fn assert_agrees(c: &Circuit) {
    let config = VerifyConfig::default();
    for &o in c.outputs() {
        let Some(oracle) = exhaustive_floating_delay(c, o) else {
            continue; // cone too wide for the oracle
        };
        let search = exact_delay(c, o, &config);
        assert!(
            search.proven_exact,
            "{} output {}: search not decided",
            c.name(),
            c.net(o).name()
        );
        assert_eq!(
            search.delay,
            oracle.delay,
            "{} output {}: verifier {} vs oracle {}",
            c.name(),
            c.net(o).name(),
            search.delay,
            oracle.delay
        );
        if oracle.delay > 0 {
            let v = search.vector.expect("witness for positive delay");
            assert!(vector_violates(c, &v, o, search.delay));
        }
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; covered by `cargo test --release`"
)]
fn classic_structures_agree() {
    assert_agrees(&figure1(10));
    assert_agrees(&cascade(GateKind::And, 6, 10));
    assert_agrees(&cascade(GateKind::Nor, 5, 10));
    assert_agrees(&parity_tree(8, 10));
    assert_agrees(&ripple_carry_adder(4, 10));
    assert_agrees(&carry_skip_adder(8, 4, 10));
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; covered by `cargo test --release`"
)]
fn false_path_gadgets_agree() {
    for (p, q) in [(3, 2), (4, 3), (5, 2), (6, 4), (7, 5)] {
        assert_agrees(&false_path_chain(p, q, 10));
    }
    for (p, q) in [(4, 3), (6, 4), (7, 3)] {
        assert_agrees(&forked_false_path_chain(p, q, 10));
    }
    for depth in [6, 8, 10, 13] {
        assert_agrees(&stem_conflict_circuit(depth, 10));
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; covered by `cargo test --release`"
)]
fn small_multiplier_agrees() {
    assert_agrees(&array_multiplier(3, 10));
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; covered by `cargo test --release`"
)]
fn mux_chains_agree() {
    for stages in [1usize, 2, 3, 5, 8] {
        assert_agrees(&shared_select_mux_chain(stages, 10));
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; covered by `cargo test --release`"
)]
fn nor_mapped_circuits_agree() {
    assert_agrees(&nor_mapping(&figure1(10), 10));
    assert_agrees(&nor_mapping(&carry_skip_adder(4, 2, 10), 10));
    assert_agrees(&nor_mapping(&parity_tree(5, 10), 10));
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; covered by `cargo test --release`"
)]
fn random_circuits_agree() {
    for seed in 0..12 {
        let c = random_circuit(&RandomCircuitConfig {
            num_inputs: 8,
            num_gates: 40,
            num_outputs: 3,
            max_fanin: 3,
            depth_bias: 4,
            delay: 10,
            seed,
        });
        assert_agrees(&c);
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; covered by `cargo test --release`"
)]
fn random_deep_circuits_agree() {
    for seed in 100..106 {
        let c = random_circuit(&RandomCircuitConfig {
            num_inputs: 6,
            num_gates: 60,
            num_outputs: 2,
            max_fanin: 2,
            depth_bias: 8,
            delay: 7, // non-uniform-friendly delay value
            seed,
        });
        assert_agrees(&c);
    }
}

#[test]
fn mixed_delays_agree() {
    // Different delays per gate kind exercise non-unit arithmetic.
    use ltt_netlist::{CircuitBuilder, DelayInterval};
    let mut b = CircuitBuilder::new("mixed_delays");
    let x = b.input("x");
    let y = b.input("y");
    let z = b.input("z");
    let a = b.gate("a", GateKind::And, &[x, y], DelayInterval::fixed(3));
    let o = b.gate("o", GateKind::Or, &[a, z], DelayInterval::fixed(17));
    let n = b.gate("n", GateKind::Not, &[o], DelayInterval::fixed(5));
    let w = b.gate("w", GateKind::Xor, &[n, x], DelayInterval::fixed(11));
    b.mark_output(w);
    assert_agrees(&b.build().unwrap());
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; covered by `cargo test --release`"
)]
fn serial_false_path_gadgets_agree() {
    // The `path_blowup` experiment chains Figure-1-style gadgets serially
    // and assumes exact = 60·k; validate that against the oracle for the
    // sizes the window allows.
    use ltt_netlist::{CircuitBuilder, DelayInterval};
    let d = DelayInterval::fixed(10);
    for k in [1usize, 2] {
        let mut b = CircuitBuilder::new(format!("serial{k}"));
        let mut feed = b.input("x0");
        for g in 0..k {
            let x1 = b.input(format!("x1_{g}"));
            let shared = b.input(format!("sh_{g}"));
            let mut n = b.gate(format!("n1_{g}"), GateKind::And, &[feed, x1], d);
            for i in 2..4 {
                let side = b.input(format!("p{i}_{g}"));
                let kind = if i % 2 == 1 {
                    GateKind::Or
                } else {
                    GateKind::And
                };
                n = b.gate(format!("n{i}_{g}"), kind, &[n, side], d);
            }
            n = b.gate(format!("n4_{g}"), GateKind::And, &[n, shared], d);
            let sb = b.input(format!("sb_{g}"));
            let short = b.gate(format!("short_{g}"), GateKind::And, &[n, sb], d);
            let a1 = b.gate(format!("a1_{g}"), GateKind::Or, &[n, shared], d);
            let q2 = b.input(format!("q2_{g}"));
            let a2 = b.gate(format!("a2_{g}"), GateKind::And, &[a1, q2], d);
            feed = b.gate(format!("s_{g}"), GateKind::Or, &[a2, short], d);
        }
        b.mark_output(feed);
        let c = b.build().unwrap();
        let s = c.outputs()[0];
        let oracle = exhaustive_floating_delay(&c, s).expect("small enough");
        assert_eq!(oracle.delay, 60 * k as i64, "serial({k}) oracle");
        let search = exact_delay(&c, s, &VerifyConfig::default());
        assert!(search.proven_exact);
        assert_eq!(search.delay, oracle.delay, "serial({k}) verifier");
    }
}
