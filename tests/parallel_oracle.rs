//! Oracle agreement of the **parallel** batch engine: with more than one
//! worker, [`BatchRunner::exact_delays`] and
//! [`BatchRunner::verify_all_outputs`] must still agree with the
//! exhaustive floating-mode simulator on every circuit small enough to
//! enumerate — delays, proofs, and certified witness vectors alike.

use ltt_core::{BatchOutcome, BatchRunner, CheckSession, Verdict, VerifyConfig};
use ltt_netlist::generators::{carry_skip_adder, cascade, false_path_chain, figure1};
use ltt_netlist::{Circuit, GateKind};
use ltt_sta::{exhaustive_floating_delay, vector_violates};

fn suite() -> Vec<Circuit> {
    vec![
        figure1(10),
        cascade(GateKind::And, 5, 10),
        cascade(GateKind::Or, 3, 10),
        false_path_chain(4, 3, 10),
        false_path_chain(5, 2, 10),
        carry_skip_adder(4, 2, 10),
    ]
}

fn runner() -> BatchRunner {
    // Deliberately more workers than outputs: stragglers and idle workers
    // must not perturb anything.
    BatchRunner::new(8)
}

#[test]
fn parallel_exact_delays_match_the_oracle() {
    let config = VerifyConfig::default();
    for c in suite() {
        let session = CheckSession::new(&c, config.clone());
        let searches = runner().exact_delays(&session);
        assert_eq!(searches.len(), c.outputs().len());
        for (&o, search) in c.outputs().iter().zip(&searches) {
            let oracle = exhaustive_floating_delay(&c, o).expect("small cone");
            assert!(search.proven_exact, "{} {}", c.name(), c.net(o).name());
            assert_eq!(
                search.delay,
                oracle.delay,
                "{} output {}",
                c.name(),
                c.net(o).name()
            );
            if let Some(v) = &search.vector {
                assert!(
                    vector_violates(&c, v, o, search.delay),
                    "{} output {}: witness does not reproduce the delay",
                    c.name(),
                    c.net(o).name()
                );
            }
        }
    }
}

#[test]
fn parallel_verify_all_outputs_matches_the_oracle() {
    let config = VerifyConfig::default();
    for c in suite() {
        let session = CheckSession::new(&c, config.clone());
        let per_output: Vec<i64> = c
            .outputs()
            .iter()
            .map(|&o| exhaustive_floating_delay(&c, o).expect("small cone").delay)
            .collect();
        let circuit_delay = per_output.iter().copied().max().unwrap();

        // One past the circuit delay: every output must be proven safe.
        let batch = runner().verify_all_outputs(&session, circuit_delay + 1);
        assert_eq!(
            batch.outcome(),
            BatchOutcome::AllSafe,
            "{} δ = {}",
            c.name(),
            circuit_delay + 1
        );

        // At the circuit delay: a certified violation on (at least) every
        // output whose own exact delay reaches it, safety proofs elsewhere.
        let batch = runner().verify_all_outputs(&session, circuit_delay);
        assert_eq!(batch.outcome(), BatchOutcome::Violation, "{}", c.name());
        for (r, &exact) in batch.reports.iter().zip(&per_output) {
            match &r.verdict {
                Verdict::Violation { vector } => {
                    assert!(exact >= circuit_delay, "{}: spurious violation", c.name());
                    assert!(vector_violates(&c, vector, r.output, circuit_delay));
                }
                Verdict::NoViolation { .. } => {
                    assert!(exact < circuit_delay, "{}: missed violation", c.name());
                }
                other => panic!("{}: undecided verdict {other:?}", c.name()),
            }
        }
    }
}
