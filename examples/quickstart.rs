//! Quickstart: build a small circuit, run a timing check, and search for
//! its exact floating-mode delay.
//!
//! Run with `cargo run --release -p ltt-bench --example quickstart`.

use ltt_core::{exact_delay, verify, Verdict, VerifyConfig};
use ltt_netlist::{CircuitBuilder, DelayInterval, GateKind};
use ltt_sta::describe_vector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny circuit with a false path: the long chain from x is
    // transparent only while `sel` settles 0 (it feeds two OR gates on the
    // chain), but the product gate that would deliver its transitions to y
    // needs `sel` to settle 1 — a conflict, so the topologically longest
    // path can never propagate a transition.
    let d = DelayInterval::fixed(10);
    let mut b = CircuitBuilder::new("quickstart");
    let sel = b.input("sel");
    let a = b.input("a");
    let x = b.input("x");

    // Long chain from x, transparent only while sel settles 0.
    let c1 = b.gate("c1", GateKind::Or, &[x, sel], d);
    let c2 = b.gate("c2", GateKind::And, &[c1, x], d);
    let c3 = b.gate("c3", GateKind::Or, &[c2, sel], d);

    // The two mux products and the output: p0 needs sel = 1 (conflict!).
    let nsel = b.gate("nsel", GateKind::Not, &[sel], d);
    let p0 = b.gate("p0", GateKind::And, &[c3, sel], d);
    let p1 = b.gate("p1", GateKind::And, &[a, nsel], d);
    let y = b.gate("y", GateKind::Or, &[p0, p1], d);
    b.mark_output(y);
    let circuit = b.build()?;

    let top = circuit.topological_delay();
    println!(
        "circuit `{}`: {} gates, topological delay {top}",
        circuit.name(),
        circuit.num_gates()
    );

    // Ask the paper's timing-check question directly: can y still
    // transition at or after δ?
    let config = VerifyConfig::default();
    for delta in [top, top - 10] {
        let report = verify(&circuit, y, delta, &config);
        match &report.verdict {
            Verdict::NoViolation { stage } => {
                println!("δ = {delta}: impossible (proved by {stage:?})");
            }
            Verdict::Violation { vector } => {
                let pretty: Vec<String> = describe_vector(&circuit, vector)
                    .into_iter()
                    .map(|(n, v)| format!("{n}={v}"))
                    .collect();
                println!("δ = {delta}: violating vector {}", pretty.join(" "));
            }
            other => println!("δ = {delta}: {other:?}"),
        }
    }

    // Or search for the exact floating-mode delay in one call.
    let search = exact_delay(&circuit, y, &config);
    println!(
        "exact floating-mode delay: {} (topological {top}) — the longest path is {}",
        search.delay,
        if search.delay < top { "FALSE" } else { "true" }
    );
    Ok(())
}
