//! Complex gates + SDF back-annotation: a shared-select MUX chain (the
//! textbook false-path structure) whose delays come from an SDF file.
//!
//! Demonstrates two extensions the paper's conclusion announces:
//! constraint models for complex gates (MUX) and SDF back-annotation.
//!
//! Run with `cargo run --release -p ltt-bench --example mux_sdf`.

use ltt_core::{exact_delay, VerifyConfig};
use ltt_netlist::generators::shared_select_mux_chain;
use ltt_netlist::sdf::apply_sdf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 6-stage MUX chain with one shared select: the full data-chain path
    // alternates between the a- and b-ports, so it would need the select
    // to settle both ways — statically false.
    let chain = shared_select_mux_chain(6, 10);
    println!(
        "6-stage shared-select MUX chain: {} gates, topological delay {}",
        chain.num_gates(),
        chain.topological_delay()
    );

    let config = VerifyConfig::default();
    let s = chain.outputs()[0];
    let search = exact_delay(&chain, s, &config);
    println!(
        "uniform delays: exact floating-mode delay {} (a settled select lets\n\
         at most one unstable stage output propagate one further level)",
        search.delay
    );

    // Back-annotate per-stage delays from an SDF file: the middle stages
    // are much slower, as a placed-and-routed netlist might be.
    let sdf = r#"(DELAYFILE
      (SDFVERSION "3.0")
      (DESIGN "mux_chain_6")
      (CELL (CELLTYPE "MUX2") (INSTANCE m0)
        (DELAY (ABSOLUTE (IOPATH sel m0 (8:9:10)))))
      (CELL (CELLTYPE "MUX2") (INSTANCE m1)
        (DELAY (ABSOLUTE (IOPATH sel m1 (38:40:45)))))
      (CELL (CELLTYPE "MUX2") (INSTANCE m2)
        (DELAY (ABSOLUTE (IOPATH sel m2 (55:58:60)))))
      (CELL (CELLTYPE "MUX2") (INSTANCE m3)
        (DELAY (ABSOLUTE (IOPATH sel m3 (18:19:20)))))
      (CELL (CELLTYPE "MUX2") (INSTANCE m4)
        (DELAY (ABSOLUTE (IOPATH sel m4 (9:10:12)))))
      (CELL (CELLTYPE "MUX2") (INSTANCE m5)
        (DELAY (ABSOLUTE (IOPATH sel m5 (14:15:15)))))
    )"#;
    let annotated = apply_sdf(&chain, sdf)?;
    println!(
        "after SDF back-annotation: topological delay {}",
        annotated.topological_delay()
    );
    let search = exact_delay(&annotated, annotated.outputs()[0], &config);
    println!(
        "annotated exact floating-mode delay: {} (proven: {})",
        search.delay, search.proven_exact
    );
    assert!(search.delay < annotated.topological_delay());
    println!("the false chain path is still false under annotated delays ✓");
    Ok(())
}
