//! Checks an ISCAS `.bench` netlist from the command line: parses the
//! file, reports per-output topological and exact floating-mode delays,
//! and flags outputs whose longest path is false.
//!
//! Run with
//! `cargo run --release -p ltt-bench --example bench_file_check -- <file.bench> [gate-delay]`
//! (with no arguments it analyzes the embedded c17).

use ltt_core::{exact_delay, VerifyConfig};
use ltt_netlist::bench_format::parse_bench;
use ltt_netlist::suite::c17;
use ltt_netlist::{Circuit, DelayInterval};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let delay: u32 = args.get(2).map_or(Ok(10), |s| s.parse())?;
    let circuit: Circuit = match args.get(1) {
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            parse_bench(path, &text, DelayInterval::fixed(delay))?
        }
        None => {
            eprintln!("(no file given; analyzing the embedded c17)");
            c17(delay)
        }
    };
    println!(
        "{}: {} gates, {} inputs, {} outputs, topological delay {}",
        circuit.name(),
        circuit.num_gates(),
        circuit.inputs().len(),
        circuit.outputs().len(),
        circuit.topological_delay()
    );

    let config = VerifyConfig {
        max_backtracks: 10_000,
        ..Default::default()
    };
    let arrival = circuit.arrival_times();
    for &o in circuit.outputs() {
        let top = arrival[o.index()];
        let search = exact_delay(&circuit, o, &config);
        let label = if !search.proven_exact {
            format!("<= {} (search abandoned)", search.upper_bound)
        } else if search.delay < top {
            format!("{}  ** longest path FALSE **", search.delay)
        } else {
            search.delay.to_string()
        };
        println!(
            "  output {:<12} top {:>6}   exact {label}",
            circuit.net(o).name(),
            top
        );
    }
    Ok(())
}
