//! A guided, printed walkthrough of the paper's two worked examples —
//! Example 1 (one AND-gate projection) and Example 2 (the full narrowing
//! of the Figure 1 circuit at δ = 61) — with the library's values shown
//! next to the paper's.
//!
//! Run with `cargo run --release -p ltt-bench --example paper_walkthrough`.

use ltt_core::{explain, project, verify, Narrower, VerifyConfig};
use ltt_netlist::generators::figure1;
use ltt_netlist::GateKind;
use ltt_waveform::{Aw, Level, Signal, Time};

fn main() {
    // ---- Example 1 -------------------------------------------------------
    println!("== Example 1: projecting one 2-input AND constraint (delay 0) ==");
    let d_i = Signal::new(
        Aw::before(Time::new(33)),
        Aw::new(Time::new(50), Time::new(100)),
    );
    let d_j = Signal::new(Aw::new(Time::new(25), Time::new(75)), Aw::EMPTY);
    let d_s = Signal::new(Aw::new(Time::new(35), Time::new(125)), Aw::EMPTY);
    println!("  inputs : D_i = {d_i}   D_j = {d_j}");
    println!("  output : D_s = {d_s}");
    let p = project(GateKind::And, 0, &[d_i, d_j], d_s);
    println!("  paper  : D_i' = (phi, 1|[50, 100])   D_j' = (0|[35, 75], phi)   D_s' = (0|[35, 75], phi)");
    println!(
        "  ours   : D_i' = {}   D_j' = {}   D_s' = {}",
        p.inputs[0], p.inputs[1], p.output
    );
    assert_eq!(
        p.inputs[0],
        Signal::new(Aw::EMPTY, Aw::new(Time::new(50), Time::new(100)))
    );
    assert_eq!(
        p.inputs[1],
        Signal::new(Aw::new(Time::new(35), Time::new(75)), Aw::EMPTY)
    );
    assert_eq!(
        p.output,
        Signal::new(Aw::new(Time::new(35), Time::new(75)), Aw::EMPTY)
    );
    println!("  (identical)");

    // ---- Example 2 -------------------------------------------------------
    println!();
    println!("== Example 2: the Figure 1 circuit, timing check (ξ, s, 61) ==");
    let c = figure1(10);
    let s = c.outputs()[0];
    println!(
        "  circuit: {} gates of delay 10, top = {}, the 70-path is false",
        c.num_gates(),
        c.topological_delay()
    );

    // Forward pass: settle bounds, exactly the paper's first narrowings.
    let mut nw = Narrower::new(&c);
    for &i in c.inputs() {
        nw.narrow_net(i, Signal::floating_input());
    }
    nw.reach_fixpoint();
    println!("  forward settle bounds (paper: n1 ≤ 10, n2 ≤ 20, …, n7 ≤ 60):");
    for name in ["n1", "n2", "n3", "n4", "n5", "n6", "n7"] {
        let net = c.net_by_name(name).unwrap();
        println!("    {name} settles by {}", nw.domain(net).latest_settle());
    }

    // The check constraint, applied one gate at a time: g8 removes n5's
    // controlling class and pins n7's last-transition interval.
    nw.narrow_net(s, Signal::violation(Time::new(61)));
    let g8 = c.net(s).driver().unwrap();
    nw.apply_gate(g8);
    let n5 = c.net_by_name("n5").unwrap();
    let n7 = c.net_by_name("n7").unwrap();
    println!("  after one application of g8's constraint at δ = 61:");
    println!(
        "    D_n5 = {}   (paper: (0|[-inf, 50], phi) — class 1 removed)",
        nw.domain(n5)
    );
    println!(
        "    D_n7 = {}   (paper: (0|[51, 60], 1|[51, 60]))",
        nw.domain(n7)
    );
    assert!(nw.domain(n5)[Level::One].is_empty());
    assert_eq!(
        nw.domain(n7)[Level::Zero],
        Aw::new(Time::new(51), Time::new(60))
    );

    // Running to the fixpoint reaches the paper's contradiction at e3.
    let result = nw.reach_fixpoint();
    println!("  full fixpoint: {result:?}  (paper: D_e3 = (phi, phi) ⇒ D_s = (phi, phi))");

    // The packaged pipeline agrees, and δ = 60 yields the witness.
    let config = VerifyConfig::default();
    assert!(verify(&c, s, 61, &config).verdict.is_no_violation());
    let r = verify(&c, s, 60, &config);
    println!(
        "  verify(ξ, s, 61): no violation; verify(ξ, s, 60): {:?}",
        r.verdict
    );

    // And the explanation facility names the structures of §4.
    println!();
    println!("== explain(ξ, s, 60) ==");
    print!("{}", explain(&c, s, 60));
}
