//! The carry-skip adder walkthrough (paper Figures 2–3): a realistic
//! arithmetic circuit whose *topologically* longest path — the full carry
//! ripple — can never propagate a transition, and how each analysis sees
//! that.
//!
//! Run with `cargo run --release -p ltt-bench --example false_path_adder`.

use ltt_core::{exact_delay, verify, Verdict, VerifyConfig};
use ltt_netlist::generators::carry_skip_adder;
use ltt_sta::{exhaustive_floating_delay, topological_check};

fn main() {
    let width = 8;
    let c = carry_skip_adder(width, 4, 10);
    let cout = c.net_by_name("cout").expect("adder has a carry out");
    let arrival = c.arrival_times();
    let top = arrival[cout.index()];

    println!("{width}-bit carry-skip adder: {} gates", c.num_gates());
    println!("topological delay at cout: {top}");

    // 1. The conservative baseline cannot rule anything out below top.
    assert!(topological_check(&c, cout, top));
    println!("topological STA: a delay of {top} looks possible (conservative)");

    // 2. The exact oracle (exhaustive floating-mode simulation) knows
    //    better: rippling across a block requires every propagate signal to
    //    be 1, which makes the skip multiplexer bypass the block.
    let oracle = exhaustive_floating_delay(&c, cout).expect("small adder");
    println!(
        "exhaustive simulation: true floating-mode delay of cout is {} ({} levels shaved)",
        oracle.delay,
        (top - oracle.delay) / 10
    );

    // 3. The waveform-narrowing verifier proves the same bound without
    //    enumerating 2^17 vectors, and finds a certified witness at the
    //    exact delay.
    let config = VerifyConfig::default();
    let search = exact_delay(&c, cout, &config);
    println!(
        "waveform narrowing: exact delay {} proven with {} backtracks",
        search.delay, search.backtracks
    );
    assert_eq!(search.delay, oracle.delay);

    let r = verify(&c, cout, search.delay + 1, &config);
    match r.verdict {
        Verdict::NoViolation { stage } => println!(
            "δ = {}: proven impossible by the {stage:?} stage in {:.2} ms",
            search.delay + 1,
            r.elapsed.as_secs_f64() * 1e3
        ),
        other => println!("unexpected: {other:?}"),
    }
}
