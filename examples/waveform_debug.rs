//! Waveform-level debugging: simulate a carry-skip adder's worst two-vector
//! transition exactly, dump a VCD for a waveform viewer, and show the
//! glitching the skip logic produces — the concrete behaviour the abstract
//! last-transition intervals summarize.
//!
//! Run with `cargo run --release -p ltt-bench --example waveform_debug`.

use ltt_netlist::generators::carry_skip_adder;
use ltt_sta::{simulate, transition_counts, two_vector_delay, write_vcd, WaveformTrace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let c = carry_skip_adder(8, 4, 10);
    let cout = c.net_by_name("cout").expect("adder has a carry out");
    let n = c.inputs().len();

    // Find the worst two-vector pair for cout by sampling.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(1);
    let mut best = (0i64, vec![false; n], vec![false; n]);
    for _ in 0..20_000 {
        let v1: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let v2: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let d = two_vector_delay(&c, &v1, &v2, cout);
        if d > best.0 {
            best = (d, v1, v2);
        }
    }
    let (delay, v1, v2) = best;
    println!(
        "worst sampled two-vector delay at cout: {delay} (topological {})",
        c.arrival_times()[cout.index()]
    );

    // Exact waveform simulation of that pair.
    let inputs: Vec<WaveformTrace> = v1
        .iter()
        .zip(&v2)
        .map(|(&a, &b)| WaveformTrace::new(a, vec![(0, b)]))
        .collect();
    let traces = simulate(&c, &inputs);
    let counts = transition_counts(&traces);
    println!(
        "total transitions: {} across {} nets (functional need: ≤ 1 per net)",
        counts.iter().sum::<usize>(),
        c.num_nets()
    );
    let mut glitchy: Vec<(usize, &str)> = c
        .net_ids()
        .map(|nid| (counts[nid.index()], c.net(nid).name()))
        .filter(|&(k, _)| k > 1)
        .collect();
    glitchy.sort();
    glitchy.reverse();
    println!("glitchiest nets:");
    for (k, name) in glitchy.iter().take(6) {
        println!("  {name}: {k} transitions");
    }
    println!("cout trace: {:?}", traces[cout.index()].events());

    let path = std::env::temp_dir().join("carry_skip_debug.vcd");
    std::fs::write(&path, write_vcd(&c, &traces))?;
    println!(
        "VCD written to {} (open with any waveform viewer)",
        path.display()
    );
    Ok(())
}
