//! Runs a compact Table-1-style sweep over the small half of the
//! evaluation suite and prints circuit delays with their paper references.
//!
//! Run with `cargo run --release -p ltt-bench --example iscas_suite`.

use ltt_bench::table1::critical_output;
use ltt_core::{exact_delay, VerifyConfig};
use ltt_netlist::suite::iscas85_suite;

fn main() {
    let config = VerifyConfig {
        max_backtracks: 10_000,
        ..Default::default()
    };
    println!(
        "{:<8} {:>6} {:>6} {:>7} {:>9}   paper(top/exact)",
        "circuit", "gates", "top", "exact", "backtracks"
    );
    for entry in iscas85_suite(10) {
        if entry.circuit.num_gates() > 1500 {
            continue; // keep the example quick; `table1` runs everything
        }
        let s = critical_output(&entry.circuit);
        let top = entry.circuit.arrival_times()[s.index()];
        let search = exact_delay(&entry.circuit, s, &config);
        let exact = if search.proven_exact {
            search.delay.to_string()
        } else {
            format!("<={}", search.upper_bound)
        };
        println!(
            "{:<8} {:>6} {:>6} {:>7} {:>9}   {}/{}",
            entry.name,
            entry.circuit.num_gates(),
            top,
            exact,
            search.backtracks,
            entry.paper_top,
            entry.paper_exact.map_or("-".to_string(), |e| e.to_string()),
        );
    }
}
