/root/repo/target/debug/deps/ltt-4d0cb6d928d9de1f.d: crates/cli/src/main.rs crates/cli/src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libltt-4d0cb6d928d9de1f.rmeta: crates/cli/src/main.rs crates/cli/src/cli.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
