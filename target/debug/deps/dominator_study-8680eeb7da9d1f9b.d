/root/repo/target/debug/deps/dominator_study-8680eeb7da9d1f9b.d: crates/bench/src/bin/dominator_study.rs

/root/repo/target/debug/deps/libdominator_study-8680eeb7da9d1f9b.rmeta: crates/bench/src/bin/dominator_study.rs

crates/bench/src/bin/dominator_study.rs:
