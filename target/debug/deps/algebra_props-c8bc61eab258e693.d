/root/repo/target/debug/deps/algebra_props-c8bc61eab258e693.d: crates/waveform/tests/algebra_props.rs

/root/repo/target/debug/deps/algebra_props-c8bc61eab258e693: crates/waveform/tests/algebra_props.rs

crates/waveform/tests/algebra_props.rs:
