/root/repo/target/debug/deps/carry_skip_study-6eb3e0594c54b926.d: crates/bench/src/bin/carry_skip_study.rs

/root/repo/target/debug/deps/libcarry_skip_study-6eb3e0594c54b926.rmeta: crates/bench/src/bin/carry_skip_study.rs

crates/bench/src/bin/carry_skip_study.rs:
