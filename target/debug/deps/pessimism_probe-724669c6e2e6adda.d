/root/repo/target/debug/deps/pessimism_probe-724669c6e2e6adda.d: crates/bench/src/bin/pessimism_probe.rs

/root/repo/target/debug/deps/libpessimism_probe-724669c6e2e6adda.rmeta: crates/bench/src/bin/pessimism_probe.rs

crates/bench/src/bin/pessimism_probe.rs:
