/root/repo/target/debug/deps/path_blowup-1dac3d06232debca.d: crates/bench/src/bin/path_blowup.rs Cargo.toml

/root/repo/target/debug/deps/libpath_blowup-1dac3d06232debca.rmeta: crates/bench/src/bin/path_blowup.rs Cargo.toml

crates/bench/src/bin/path_blowup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
