/root/repo/target/debug/deps/learning_props-8585cb772a5c29d2.d: crates/core/tests/learning_props.rs

/root/repo/target/debug/deps/learning_props-8585cb772a5c29d2: crates/core/tests/learning_props.rs

crates/core/tests/learning_props.rs:
