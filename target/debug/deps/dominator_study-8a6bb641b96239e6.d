/root/repo/target/debug/deps/dominator_study-8a6bb641b96239e6.d: crates/bench/src/bin/dominator_study.rs

/root/repo/target/debug/deps/libdominator_study-8a6bb641b96239e6.rmeta: crates/bench/src/bin/dominator_study.rs

crates/bench/src/bin/dominator_study.rs:
