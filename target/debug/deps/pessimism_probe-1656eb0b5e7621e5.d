/root/repo/target/debug/deps/pessimism_probe-1656eb0b5e7621e5.d: crates/bench/src/bin/pessimism_probe.rs

/root/repo/target/debug/deps/pessimism_probe-1656eb0b5e7621e5: crates/bench/src/bin/pessimism_probe.rs

crates/bench/src/bin/pessimism_probe.rs:
