/root/repo/target/debug/deps/fig1_example2-d963a98b40bad86b.d: crates/bench/src/bin/fig1_example2.rs

/root/repo/target/debug/deps/fig1_example2-d963a98b40bad86b: crates/bench/src/bin/fig1_example2.rs

crates/bench/src/bin/fig1_example2.rs:
