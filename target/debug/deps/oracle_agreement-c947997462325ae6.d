/root/repo/target/debug/deps/oracle_agreement-c947997462325ae6.d: crates/bench/../../tests/oracle_agreement.rs Cargo.toml

/root/repo/target/debug/deps/liboracle_agreement-c947997462325ae6.rmeta: crates/bench/../../tests/oracle_agreement.rs Cargo.toml

crates/bench/../../tests/oracle_agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
