/root/repo/target/debug/deps/algebra_props-3dbeebdd86651948.d: crates/waveform/tests/algebra_props.rs

/root/repo/target/debug/deps/libalgebra_props-3dbeebdd86651948.rmeta: crates/waveform/tests/algebra_props.rs

crates/waveform/tests/algebra_props.rs:
