/root/repo/target/debug/deps/dominator_study-90ffea29417e4f73.d: crates/bench/src/bin/dominator_study.rs

/root/repo/target/debug/deps/dominator_study-90ffea29417e4f73: crates/bench/src/bin/dominator_study.rs

crates/bench/src/bin/dominator_study.rs:
