/root/repo/target/debug/deps/bench_table1-5fc2e87a1b425133.d: crates/bench/benches/bench_table1.rs

/root/repo/target/debug/deps/libbench_table1-5fc2e87a1b425133.rmeta: crates/bench/benches/bench_table1.rs

crates/bench/benches/bench_table1.rs:
