/root/repo/target/debug/deps/trail_props-09ca716756219909.d: crates/core/tests/trail_props.rs Cargo.toml

/root/repo/target/debug/deps/libtrail_props-09ca716756219909.rmeta: crates/core/tests/trail_props.rs Cargo.toml

crates/core/tests/trail_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
