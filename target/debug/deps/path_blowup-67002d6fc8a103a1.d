/root/repo/target/debug/deps/path_blowup-67002d6fc8a103a1.d: crates/bench/src/bin/path_blowup.rs Cargo.toml

/root/repo/target/debug/deps/libpath_blowup-67002d6fc8a103a1.rmeta: crates/bench/src/bin/path_blowup.rs Cargo.toml

crates/bench/src/bin/path_blowup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
