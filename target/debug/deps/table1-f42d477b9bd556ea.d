/root/repo/target/debug/deps/table1-f42d477b9bd556ea.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-f42d477b9bd556ea.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
