/root/repo/target/debug/deps/pipeline_end_to_end-abd6c5b164ca9fa1.d: crates/bench/../../tests/pipeline_end_to_end.rs

/root/repo/target/debug/deps/pipeline_end_to_end-abd6c5b164ca9fa1: crates/bench/../../tests/pipeline_end_to_end.rs

crates/bench/../../tests/pipeline_end_to_end.rs:
