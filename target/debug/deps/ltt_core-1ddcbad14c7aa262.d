/root/repo/target/debug/deps/ltt_core-1ddcbad14c7aa262.d: crates/core/src/lib.rs crates/core/src/batch.rs crates/core/src/budget.rs crates/core/src/carriers.rs crates/core/src/check.rs crates/core/src/domain.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/failpoint.rs crates/core/src/fan.rs crates/core/src/learning.rs crates/core/src/prepared.rs crates/core/src/projection.rs crates/core/src/scoap.rs crates/core/src/solver.rs crates/core/src/stems.rs Cargo.toml

/root/repo/target/debug/deps/libltt_core-1ddcbad14c7aa262.rmeta: crates/core/src/lib.rs crates/core/src/batch.rs crates/core/src/budget.rs crates/core/src/carriers.rs crates/core/src/check.rs crates/core/src/domain.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/failpoint.rs crates/core/src/fan.rs crates/core/src/learning.rs crates/core/src/prepared.rs crates/core/src/projection.rs crates/core/src/scoap.rs crates/core/src/solver.rs crates/core/src/stems.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/batch.rs:
crates/core/src/budget.rs:
crates/core/src/carriers.rs:
crates/core/src/check.rs:
crates/core/src/domain.rs:
crates/core/src/error.rs:
crates/core/src/explain.rs:
crates/core/src/failpoint.rs:
crates/core/src/fan.rs:
crates/core/src/learning.rs:
crates/core/src/prepared.rs:
crates/core/src/projection.rs:
crates/core/src/scoap.rs:
crates/core/src/solver.rs:
crates/core/src/stems.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
