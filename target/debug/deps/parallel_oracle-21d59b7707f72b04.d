/root/repo/target/debug/deps/parallel_oracle-21d59b7707f72b04.d: crates/bench/../../tests/parallel_oracle.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_oracle-21d59b7707f72b04.rmeta: crates/bench/../../tests/parallel_oracle.rs Cargo.toml

crates/bench/../../tests/parallel_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
