/root/repo/target/debug/deps/trail_props-8b3f5d2e1962c246.d: crates/core/tests/trail_props.rs

/root/repo/target/debug/deps/trail_props-8b3f5d2e1962c246: crates/core/tests/trail_props.rs

crates/core/tests/trail_props.rs:
