/root/repo/target/debug/deps/parallel_oracle-df429b52c1fffa9d.d: crates/bench/../../tests/parallel_oracle.rs

/root/repo/target/debug/deps/libparallel_oracle-df429b52c1fffa9d.rmeta: crates/bench/../../tests/parallel_oracle.rs

crates/bench/../../tests/parallel_oracle.rs:
