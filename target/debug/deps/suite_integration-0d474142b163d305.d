/root/repo/target/debug/deps/suite_integration-0d474142b163d305.d: crates/bench/../../tests/suite_integration.rs Cargo.toml

/root/repo/target/debug/deps/libsuite_integration-0d474142b163d305.rmeta: crates/bench/../../tests/suite_integration.rs Cargo.toml

crates/bench/../../tests/suite_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
