/root/repo/target/debug/deps/trail_props-4c383e4582132c30.d: crates/core/tests/trail_props.rs

/root/repo/target/debug/deps/libtrail_props-4c383e4582132c30.rmeta: crates/core/tests/trail_props.rs

crates/core/tests/trail_props.rs:
