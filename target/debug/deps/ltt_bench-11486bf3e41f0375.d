/root/repo/target/debug/deps/ltt_bench-11486bf3e41f0375.d: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/table1.rs

/root/repo/target/debug/deps/libltt_bench-11486bf3e41f0375.rlib: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/table1.rs

/root/repo/target/debug/deps/libltt_bench-11486bf3e41f0375.rmeta: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/table1.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
crates/bench/src/table1.rs:
