/root/repo/target/debug/deps/table1_shape-4c489caf38cc52fb.d: crates/bench/../../tests/table1_shape.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_shape-4c489caf38cc52fb.rmeta: crates/bench/../../tests/table1_shape.rs Cargo.toml

crates/bench/../../tests/table1_shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
