/root/repo/target/debug/deps/ltt_bench-e0bfda121c716ba8.d: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/table1.rs

/root/repo/target/debug/deps/ltt_bench-e0bfda121c716ba8: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/table1.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
crates/bench/src/table1.rs:
