/root/repo/target/debug/deps/ltt-e6a7ecb961c31929.d: crates/cli/src/main.rs crates/cli/src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libltt-e6a7ecb961c31929.rmeta: crates/cli/src/main.rs crates/cli/src/cli.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
