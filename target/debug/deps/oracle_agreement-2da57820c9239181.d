/root/repo/target/debug/deps/oracle_agreement-2da57820c9239181.d: crates/bench/../../tests/oracle_agreement.rs

/root/repo/target/debug/deps/liboracle_agreement-2da57820c9239181.rmeta: crates/bench/../../tests/oracle_agreement.rs

crates/bench/../../tests/oracle_agreement.rs:
