/root/repo/target/debug/deps/gadget_probe-77241a748b017125.d: crates/bench/src/bin/gadget_probe.rs

/root/repo/target/debug/deps/libgadget_probe-77241a748b017125.rmeta: crates/bench/src/bin/gadget_probe.rs

crates/bench/src/bin/gadget_probe.rs:
