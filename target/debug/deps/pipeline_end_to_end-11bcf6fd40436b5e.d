/root/repo/target/debug/deps/pipeline_end_to_end-11bcf6fd40436b5e.d: crates/bench/../../tests/pipeline_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_end_to_end-11bcf6fd40436b5e.rmeta: crates/bench/../../tests/pipeline_end_to_end.rs Cargo.toml

crates/bench/../../tests/pipeline_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
