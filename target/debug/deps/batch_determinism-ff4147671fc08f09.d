/root/repo/target/debug/deps/batch_determinism-ff4147671fc08f09.d: crates/bench/../../tests/batch_determinism.rs

/root/repo/target/debug/deps/batch_determinism-ff4147671fc08f09: crates/bench/../../tests/batch_determinism.rs

crates/bench/../../tests/batch_determinism.rs:
