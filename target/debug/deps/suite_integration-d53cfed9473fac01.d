/root/repo/target/debug/deps/suite_integration-d53cfed9473fac01.d: crates/bench/../../tests/suite_integration.rs

/root/repo/target/debug/deps/libsuite_integration-d53cfed9473fac01.rmeta: crates/bench/../../tests/suite_integration.rs

crates/bench/../../tests/suite_integration.rs:
