/root/repo/target/debug/deps/ltt_waveform-c2190106bf18b7e3.d: crates/waveform/src/lib.rs crates/waveform/src/aw.rs crates/waveform/src/dense.rs crates/waveform/src/signal.rs crates/waveform/src/time.rs

/root/repo/target/debug/deps/libltt_waveform-c2190106bf18b7e3.rmeta: crates/waveform/src/lib.rs crates/waveform/src/aw.rs crates/waveform/src/dense.rs crates/waveform/src/signal.rs crates/waveform/src/time.rs

crates/waveform/src/lib.rs:
crates/waveform/src/aw.rs:
crates/waveform/src/dense.rs:
crates/waveform/src/signal.rs:
crates/waveform/src/time.rs:
