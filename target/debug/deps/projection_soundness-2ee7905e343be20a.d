/root/repo/target/debug/deps/projection_soundness-2ee7905e343be20a.d: crates/core/tests/projection_soundness.rs

/root/repo/target/debug/deps/libprojection_soundness-2ee7905e343be20a.rmeta: crates/core/tests/projection_soundness.rs

crates/core/tests/projection_soundness.rs:
