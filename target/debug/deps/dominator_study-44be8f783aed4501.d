/root/repo/target/debug/deps/dominator_study-44be8f783aed4501.d: crates/bench/src/bin/dominator_study.rs Cargo.toml

/root/repo/target/debug/deps/libdominator_study-44be8f783aed4501.rmeta: crates/bench/src/bin/dominator_study.rs Cargo.toml

crates/bench/src/bin/dominator_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
