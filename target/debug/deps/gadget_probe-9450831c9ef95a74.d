/root/repo/target/debug/deps/gadget_probe-9450831c9ef95a74.d: crates/bench/src/bin/gadget_probe.rs Cargo.toml

/root/repo/target/debug/deps/libgadget_probe-9450831c9ef95a74.rmeta: crates/bench/src/bin/gadget_probe.rs Cargo.toml

crates/bench/src/bin/gadget_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
