/root/repo/target/debug/deps/ltt_sta-15981dc6b331c8ec.d: crates/sta/src/lib.rs crates/sta/src/floating.rs crates/sta/src/paths.rs crates/sta/src/simulate.rs crates/sta/src/slack.rs Cargo.toml

/root/repo/target/debug/deps/libltt_sta-15981dc6b331c8ec.rmeta: crates/sta/src/lib.rs crates/sta/src/floating.rs crates/sta/src/paths.rs crates/sta/src/simulate.rs crates/sta/src/slack.rs Cargo.toml

crates/sta/src/lib.rs:
crates/sta/src/floating.rs:
crates/sta/src/paths.rs:
crates/sta/src/simulate.rs:
crates/sta/src/slack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
