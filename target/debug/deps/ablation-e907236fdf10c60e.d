/root/repo/target/debug/deps/ablation-e907236fdf10c60e.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-e907236fdf10c60e.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
