/root/repo/target/debug/deps/suite_stats-89a438b4ece6e8e6.d: crates/bench/src/bin/suite_stats.rs

/root/repo/target/debug/deps/suite_stats-89a438b4ece6e8e6: crates/bench/src/bin/suite_stats.rs

crates/bench/src/bin/suite_stats.rs:
