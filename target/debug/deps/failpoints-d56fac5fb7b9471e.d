/root/repo/target/debug/deps/failpoints-d56fac5fb7b9471e.d: crates/core/tests/failpoints.rs

/root/repo/target/debug/deps/libfailpoints-d56fac5fb7b9471e.rmeta: crates/core/tests/failpoints.rs

crates/core/tests/failpoints.rs:
