/root/repo/target/debug/deps/suite_stats-a2095fe9ccb1cb4b.d: crates/bench/src/bin/suite_stats.rs Cargo.toml

/root/repo/target/debug/deps/libsuite_stats-a2095fe9ccb1cb4b.rmeta: crates/bench/src/bin/suite_stats.rs Cargo.toml

crates/bench/src/bin/suite_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
