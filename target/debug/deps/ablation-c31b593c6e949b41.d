/root/repo/target/debug/deps/ablation-c31b593c6e949b41.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-c31b593c6e949b41: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
