/root/repo/target/debug/deps/pessimism_probe-b2edb6c9b36a159d.d: crates/bench/src/bin/pessimism_probe.rs Cargo.toml

/root/repo/target/debug/deps/libpessimism_probe-b2edb6c9b36a159d.rmeta: crates/bench/src/bin/pessimism_probe.rs Cargo.toml

crates/bench/src/bin/pessimism_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
