/root/repo/target/debug/deps/suite_stats-1572eb6cdf534987.d: crates/bench/src/bin/suite_stats.rs

/root/repo/target/debug/deps/suite_stats-1572eb6cdf534987: crates/bench/src/bin/suite_stats.rs

crates/bench/src/bin/suite_stats.rs:
