/root/repo/target/debug/deps/narrowing_props-f67478674d9ce2c8.d: crates/core/tests/narrowing_props.rs Cargo.toml

/root/repo/target/debug/deps/libnarrowing_props-f67478674d9ce2c8.rmeta: crates/core/tests/narrowing_props.rs Cargo.toml

crates/core/tests/narrowing_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
