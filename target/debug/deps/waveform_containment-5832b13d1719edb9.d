/root/repo/target/debug/deps/waveform_containment-5832b13d1719edb9.d: crates/bench/../../tests/waveform_containment.rs

/root/repo/target/debug/deps/waveform_containment-5832b13d1719edb9: crates/bench/../../tests/waveform_containment.rs

crates/bench/../../tests/waveform_containment.rs:
