/root/repo/target/debug/deps/fig1_example2-f12ebead61f112f7.d: crates/bench/src/bin/fig1_example2.rs

/root/repo/target/debug/deps/fig1_example2-f12ebead61f112f7: crates/bench/src/bin/fig1_example2.rs

crates/bench/src/bin/fig1_example2.rs:
