/root/repo/target/debug/deps/ltt_waveform-804870cb487e6d1e.d: crates/waveform/src/lib.rs crates/waveform/src/aw.rs crates/waveform/src/dense.rs crates/waveform/src/signal.rs crates/waveform/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libltt_waveform-804870cb487e6d1e.rmeta: crates/waveform/src/lib.rs crates/waveform/src/aw.rs crates/waveform/src/dense.rs crates/waveform/src/signal.rs crates/waveform/src/time.rs Cargo.toml

crates/waveform/src/lib.rs:
crates/waveform/src/aw.rs:
crates/waveform/src/dense.rs:
crates/waveform/src/signal.rs:
crates/waveform/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
