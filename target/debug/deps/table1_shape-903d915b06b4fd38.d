/root/repo/target/debug/deps/table1_shape-903d915b06b4fd38.d: crates/bench/../../tests/table1_shape.rs

/root/repo/target/debug/deps/libtable1_shape-903d915b06b4fd38.rmeta: crates/bench/../../tests/table1_shape.rs

crates/bench/../../tests/table1_shape.rs:
