/root/repo/target/debug/deps/ablation-d7c7a0e25f4dae54.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-d7c7a0e25f4dae54.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
