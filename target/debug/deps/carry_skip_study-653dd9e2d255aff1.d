/root/repo/target/debug/deps/carry_skip_study-653dd9e2d255aff1.d: crates/bench/src/bin/carry_skip_study.rs

/root/repo/target/debug/deps/carry_skip_study-653dd9e2d255aff1: crates/bench/src/bin/carry_skip_study.rs

crates/bench/src/bin/carry_skip_study.rs:
