/root/repo/target/debug/deps/ltt_bench-0297fd3afc18863e.d: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/table1.rs Cargo.toml

/root/repo/target/debug/deps/libltt_bench-0297fd3afc18863e.rmeta: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/table1.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
crates/bench/src/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
