/root/repo/target/debug/deps/parallel_oracle-16b7e4405ae677d0.d: crates/bench/../../tests/parallel_oracle.rs

/root/repo/target/debug/deps/parallel_oracle-16b7e4405ae677d0: crates/bench/../../tests/parallel_oracle.rs

crates/bench/../../tests/parallel_oracle.rs:
