/root/repo/target/debug/deps/dominator_study-31ae3139477835ba.d: crates/bench/src/bin/dominator_study.rs Cargo.toml

/root/repo/target/debug/deps/libdominator_study-31ae3139477835ba.rmeta: crates/bench/src/bin/dominator_study.rs Cargo.toml

crates/bench/src/bin/dominator_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
