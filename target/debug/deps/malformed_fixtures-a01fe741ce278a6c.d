/root/repo/target/debug/deps/malformed_fixtures-a01fe741ce278a6c.d: crates/netlist/tests/malformed_fixtures.rs

/root/repo/target/debug/deps/malformed_fixtures-a01fe741ce278a6c: crates/netlist/tests/malformed_fixtures.rs

crates/netlist/tests/malformed_fixtures.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/netlist
