/root/repo/target/debug/deps/pessimism_probe-068d0043a43b8ab7.d: crates/bench/src/bin/pessimism_probe.rs

/root/repo/target/debug/deps/pessimism_probe-068d0043a43b8ab7: crates/bench/src/bin/pessimism_probe.rs

crates/bench/src/bin/pessimism_probe.rs:
