/root/repo/target/debug/deps/ltt-5e6dfbca74f90a3d.d: crates/cli/src/main.rs crates/cli/src/cli.rs

/root/repo/target/debug/deps/libltt-5e6dfbca74f90a3d.rmeta: crates/cli/src/main.rs crates/cli/src/cli.rs

crates/cli/src/main.rs:
crates/cli/src/cli.rs:
