/root/repo/target/debug/deps/projection_soundness-4f79b629a16dd77d.d: crates/core/tests/projection_soundness.rs

/root/repo/target/debug/deps/projection_soundness-4f79b629a16dd77d: crates/core/tests/projection_soundness.rs

crates/core/tests/projection_soundness.rs:
