/root/repo/target/debug/deps/failpoints-9bbb96b0b18766db.d: crates/core/tests/failpoints.rs Cargo.toml

/root/repo/target/debug/deps/libfailpoints-9bbb96b0b18766db.rmeta: crates/core/tests/failpoints.rs Cargo.toml

crates/core/tests/failpoints.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
