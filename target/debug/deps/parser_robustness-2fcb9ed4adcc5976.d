/root/repo/target/debug/deps/parser_robustness-2fcb9ed4adcc5976.d: crates/netlist/tests/parser_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libparser_robustness-2fcb9ed4adcc5976.rmeta: crates/netlist/tests/parser_robustness.rs Cargo.toml

crates/netlist/tests/parser_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
