/root/repo/target/debug/deps/ltt_sta-2917f41eb7f8dcb3.d: crates/sta/src/lib.rs crates/sta/src/floating.rs crates/sta/src/paths.rs crates/sta/src/simulate.rs crates/sta/src/slack.rs

/root/repo/target/debug/deps/libltt_sta-2917f41eb7f8dcb3.rmeta: crates/sta/src/lib.rs crates/sta/src/floating.rs crates/sta/src/paths.rs crates/sta/src/simulate.rs crates/sta/src/slack.rs

crates/sta/src/lib.rs:
crates/sta/src/floating.rs:
crates/sta/src/paths.rs:
crates/sta/src/simulate.rs:
crates/sta/src/slack.rs:
