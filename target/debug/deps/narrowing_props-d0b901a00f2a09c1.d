/root/repo/target/debug/deps/narrowing_props-d0b901a00f2a09c1.d: crates/core/tests/narrowing_props.rs

/root/repo/target/debug/deps/libnarrowing_props-d0b901a00f2a09c1.rmeta: crates/core/tests/narrowing_props.rs

crates/core/tests/narrowing_props.rs:
