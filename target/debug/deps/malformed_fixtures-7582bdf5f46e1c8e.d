/root/repo/target/debug/deps/malformed_fixtures-7582bdf5f46e1c8e.d: crates/netlist/tests/malformed_fixtures.rs Cargo.toml

/root/repo/target/debug/deps/libmalformed_fixtures-7582bdf5f46e1c8e.rmeta: crates/netlist/tests/malformed_fixtures.rs Cargo.toml

crates/netlist/tests/malformed_fixtures.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/netlist
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
