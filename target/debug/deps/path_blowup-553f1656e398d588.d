/root/repo/target/debug/deps/path_blowup-553f1656e398d588.d: crates/bench/src/bin/path_blowup.rs

/root/repo/target/debug/deps/libpath_blowup-553f1656e398d588.rmeta: crates/bench/src/bin/path_blowup.rs

crates/bench/src/bin/path_blowup.rs:
