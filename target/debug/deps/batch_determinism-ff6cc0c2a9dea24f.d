/root/repo/target/debug/deps/batch_determinism-ff6cc0c2a9dea24f.d: crates/bench/../../tests/batch_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libbatch_determinism-ff6cc0c2a9dea24f.rmeta: crates/bench/../../tests/batch_determinism.rs Cargo.toml

crates/bench/../../tests/batch_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
