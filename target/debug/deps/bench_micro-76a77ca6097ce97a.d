/root/repo/target/debug/deps/bench_micro-76a77ca6097ce97a.d: crates/bench/benches/bench_micro.rs

/root/repo/target/debug/deps/libbench_micro-76a77ca6097ce97a.rmeta: crates/bench/benches/bench_micro.rs

crates/bench/benches/bench_micro.rs:
