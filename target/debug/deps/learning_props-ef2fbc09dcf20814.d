/root/repo/target/debug/deps/learning_props-ef2fbc09dcf20814.d: crates/core/tests/learning_props.rs Cargo.toml

/root/repo/target/debug/deps/liblearning_props-ef2fbc09dcf20814.rmeta: crates/core/tests/learning_props.rs Cargo.toml

crates/core/tests/learning_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
