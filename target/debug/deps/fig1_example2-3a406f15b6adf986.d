/root/repo/target/debug/deps/fig1_example2-3a406f15b6adf986.d: crates/bench/src/bin/fig1_example2.rs

/root/repo/target/debug/deps/libfig1_example2-3a406f15b6adf986.rmeta: crates/bench/src/bin/fig1_example2.rs

crates/bench/src/bin/fig1_example2.rs:
