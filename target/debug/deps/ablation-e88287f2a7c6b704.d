/root/repo/target/debug/deps/ablation-e88287f2a7c6b704.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-e88287f2a7c6b704.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
