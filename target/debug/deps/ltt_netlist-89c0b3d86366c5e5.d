/root/repo/target/debug/deps/ltt_netlist-89c0b3d86366c5e5.d: crates/netlist/src/lib.rs crates/netlist/src/analysis.rs crates/netlist/src/bench_format.rs crates/netlist/src/circuit.rs crates/netlist/src/dominators.rs crates/netlist/src/gate.rs crates/netlist/src/generators/mod.rs crates/netlist/src/generators/adders.rs crates/netlist/src/generators/false_path.rs crates/netlist/src/generators/multiplier.rs crates/netlist/src/generators/random_dag.rs crates/netlist/src/generators/trees.rs crates/netlist/src/sdf.rs crates/netlist/src/suite.rs crates/netlist/src/transform.rs crates/netlist/src/verilog.rs

/root/repo/target/debug/deps/libltt_netlist-89c0b3d86366c5e5.rmeta: crates/netlist/src/lib.rs crates/netlist/src/analysis.rs crates/netlist/src/bench_format.rs crates/netlist/src/circuit.rs crates/netlist/src/dominators.rs crates/netlist/src/gate.rs crates/netlist/src/generators/mod.rs crates/netlist/src/generators/adders.rs crates/netlist/src/generators/false_path.rs crates/netlist/src/generators/multiplier.rs crates/netlist/src/generators/random_dag.rs crates/netlist/src/generators/trees.rs crates/netlist/src/sdf.rs crates/netlist/src/suite.rs crates/netlist/src/transform.rs crates/netlist/src/verilog.rs

crates/netlist/src/lib.rs:
crates/netlist/src/analysis.rs:
crates/netlist/src/bench_format.rs:
crates/netlist/src/circuit.rs:
crates/netlist/src/dominators.rs:
crates/netlist/src/gate.rs:
crates/netlist/src/generators/mod.rs:
crates/netlist/src/generators/adders.rs:
crates/netlist/src/generators/false_path.rs:
crates/netlist/src/generators/multiplier.rs:
crates/netlist/src/generators/random_dag.rs:
crates/netlist/src/generators/trees.rs:
crates/netlist/src/sdf.rs:
crates/netlist/src/suite.rs:
crates/netlist/src/transform.rs:
crates/netlist/src/verilog.rs:
