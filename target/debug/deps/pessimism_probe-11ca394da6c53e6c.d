/root/repo/target/debug/deps/pessimism_probe-11ca394da6c53e6c.d: crates/bench/src/bin/pessimism_probe.rs Cargo.toml

/root/repo/target/debug/deps/libpessimism_probe-11ca394da6c53e6c.rmeta: crates/bench/src/bin/pessimism_probe.rs Cargo.toml

crates/bench/src/bin/pessimism_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
