/root/repo/target/debug/deps/oracle_agreement-cf5accb92626e561.d: crates/bench/../../tests/oracle_agreement.rs

/root/repo/target/debug/deps/oracle_agreement-cf5accb92626e561: crates/bench/../../tests/oracle_agreement.rs

crates/bench/../../tests/oracle_agreement.rs:
