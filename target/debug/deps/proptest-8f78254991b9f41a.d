/root/repo/target/debug/deps/proptest-8f78254991b9f41a.d: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-8f78254991b9f41a.rmeta: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/arbitrary.rs:
shims/proptest/src/collection.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
