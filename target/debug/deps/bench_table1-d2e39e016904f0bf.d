/root/repo/target/debug/deps/bench_table1-d2e39e016904f0bf.d: crates/bench/benches/bench_table1.rs Cargo.toml

/root/repo/target/debug/deps/libbench_table1-d2e39e016904f0bf.rmeta: crates/bench/benches/bench_table1.rs Cargo.toml

crates/bench/benches/bench_table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
