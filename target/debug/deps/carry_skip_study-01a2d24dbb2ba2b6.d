/root/repo/target/debug/deps/carry_skip_study-01a2d24dbb2ba2b6.d: crates/bench/src/bin/carry_skip_study.rs

/root/repo/target/debug/deps/carry_skip_study-01a2d24dbb2ba2b6: crates/bench/src/bin/carry_skip_study.rs

crates/bench/src/bin/carry_skip_study.rs:
