/root/repo/target/debug/deps/ltt-a91b150f26802efc.d: crates/cli/src/main.rs crates/cli/src/cli.rs

/root/repo/target/debug/deps/ltt-a91b150f26802efc: crates/cli/src/main.rs crates/cli/src/cli.rs

crates/cli/src/main.rs:
crates/cli/src/cli.rs:
