/root/repo/target/debug/deps/budget_soundness-b0d0d51dedc56e94.d: crates/core/tests/budget_soundness.rs

/root/repo/target/debug/deps/libbudget_soundness-b0d0d51dedc56e94.rmeta: crates/core/tests/budget_soundness.rs

crates/core/tests/budget_soundness.rs:
