/root/repo/target/debug/deps/suite_integration-78cb2c8c32c43b3a.d: crates/bench/../../tests/suite_integration.rs

/root/repo/target/debug/deps/suite_integration-78cb2c8c32c43b3a: crates/bench/../../tests/suite_integration.rs

crates/bench/../../tests/suite_integration.rs:
