/root/repo/target/debug/deps/gadget_probe-7cc73ceba82078e8.d: crates/bench/src/bin/gadget_probe.rs

/root/repo/target/debug/deps/gadget_probe-7cc73ceba82078e8: crates/bench/src/bin/gadget_probe.rs

crates/bench/src/bin/gadget_probe.rs:
