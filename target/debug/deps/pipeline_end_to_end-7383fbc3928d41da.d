/root/repo/target/debug/deps/pipeline_end_to_end-7383fbc3928d41da.d: crates/bench/../../tests/pipeline_end_to_end.rs

/root/repo/target/debug/deps/libpipeline_end_to_end-7383fbc3928d41da.rmeta: crates/bench/../../tests/pipeline_end_to_end.rs

crates/bench/../../tests/pipeline_end_to_end.rs:
