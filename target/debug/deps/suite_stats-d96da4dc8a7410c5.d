/root/repo/target/debug/deps/suite_stats-d96da4dc8a7410c5.d: crates/bench/src/bin/suite_stats.rs

/root/repo/target/debug/deps/libsuite_stats-d96da4dc8a7410c5.rmeta: crates/bench/src/bin/suite_stats.rs

crates/bench/src/bin/suite_stats.rs:
