/root/repo/target/debug/deps/suite_stats-8b7640cbd5bec835.d: crates/bench/src/bin/suite_stats.rs Cargo.toml

/root/repo/target/debug/deps/libsuite_stats-8b7640cbd5bec835.rmeta: crates/bench/src/bin/suite_stats.rs Cargo.toml

crates/bench/src/bin/suite_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
