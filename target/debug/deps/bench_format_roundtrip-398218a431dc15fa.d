/root/repo/target/debug/deps/bench_format_roundtrip-398218a431dc15fa.d: crates/bench/../../tests/bench_format_roundtrip.rs

/root/repo/target/debug/deps/bench_format_roundtrip-398218a431dc15fa: crates/bench/../../tests/bench_format_roundtrip.rs

crates/bench/../../tests/bench_format_roundtrip.rs:
