/root/repo/target/debug/deps/dominator_study-90b71f18409278c5.d: crates/bench/src/bin/dominator_study.rs

/root/repo/target/debug/deps/dominator_study-90b71f18409278c5: crates/bench/src/bin/dominator_study.rs

crates/bench/src/bin/dominator_study.rs:
