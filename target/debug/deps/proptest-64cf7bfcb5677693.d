/root/repo/target/debug/deps/proptest-64cf7bfcb5677693.d: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-64cf7bfcb5677693.rlib: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-64cf7bfcb5677693.rmeta: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/arbitrary.rs:
shims/proptest/src/collection.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
