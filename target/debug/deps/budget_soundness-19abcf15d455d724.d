/root/repo/target/debug/deps/budget_soundness-19abcf15d455d724.d: crates/core/tests/budget_soundness.rs

/root/repo/target/debug/deps/budget_soundness-19abcf15d455d724: crates/core/tests/budget_soundness.rs

crates/core/tests/budget_soundness.rs:
