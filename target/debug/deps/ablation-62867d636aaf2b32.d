/root/repo/target/debug/deps/ablation-62867d636aaf2b32.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-62867d636aaf2b32: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
