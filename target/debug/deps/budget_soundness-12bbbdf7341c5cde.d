/root/repo/target/debug/deps/budget_soundness-12bbbdf7341c5cde.d: crates/core/tests/budget_soundness.rs Cargo.toml

/root/repo/target/debug/deps/libbudget_soundness-12bbbdf7341c5cde.rmeta: crates/core/tests/budget_soundness.rs Cargo.toml

crates/core/tests/budget_soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
