/root/repo/target/debug/deps/table1-9ed158aa0282df7b.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-9ed158aa0282df7b.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
