/root/repo/target/debug/deps/parser_robustness-13f4c66802598e7b.d: crates/netlist/tests/parser_robustness.rs

/root/repo/target/debug/deps/libparser_robustness-13f4c66802598e7b.rmeta: crates/netlist/tests/parser_robustness.rs

crates/netlist/tests/parser_robustness.rs:
