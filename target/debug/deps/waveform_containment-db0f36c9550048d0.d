/root/repo/target/debug/deps/waveform_containment-db0f36c9550048d0.d: crates/bench/../../tests/waveform_containment.rs Cargo.toml

/root/repo/target/debug/deps/libwaveform_containment-db0f36c9550048d0.rmeta: crates/bench/../../tests/waveform_containment.rs Cargo.toml

crates/bench/../../tests/waveform_containment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
