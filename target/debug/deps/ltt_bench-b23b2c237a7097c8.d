/root/repo/target/debug/deps/ltt_bench-b23b2c237a7097c8.d: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/table1.rs

/root/repo/target/debug/deps/libltt_bench-b23b2c237a7097c8.rmeta: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/table1.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
crates/bench/src/table1.rs:
