/root/repo/target/debug/deps/parser_robustness-1dc8f4c81cb93e9b.d: crates/netlist/tests/parser_robustness.rs

/root/repo/target/debug/deps/parser_robustness-1dc8f4c81cb93e9b: crates/netlist/tests/parser_robustness.rs

crates/netlist/tests/parser_robustness.rs:
