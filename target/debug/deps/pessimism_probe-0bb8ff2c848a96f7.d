/root/repo/target/debug/deps/pessimism_probe-0bb8ff2c848a96f7.d: crates/bench/src/bin/pessimism_probe.rs

/root/repo/target/debug/deps/libpessimism_probe-0bb8ff2c848a96f7.rmeta: crates/bench/src/bin/pessimism_probe.rs

crates/bench/src/bin/pessimism_probe.rs:
