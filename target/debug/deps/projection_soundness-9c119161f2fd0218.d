/root/repo/target/debug/deps/projection_soundness-9c119161f2fd0218.d: crates/core/tests/projection_soundness.rs Cargo.toml

/root/repo/target/debug/deps/libprojection_soundness-9c119161f2fd0218.rmeta: crates/core/tests/projection_soundness.rs Cargo.toml

crates/core/tests/projection_soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
