/root/repo/target/debug/deps/ltt-a5bfb9804b140cb3.d: crates/cli/src/main.rs crates/cli/src/cli.rs

/root/repo/target/debug/deps/libltt-a5bfb9804b140cb3.rmeta: crates/cli/src/main.rs crates/cli/src/cli.rs

crates/cli/src/main.rs:
crates/cli/src/cli.rs:
