/root/repo/target/debug/deps/bench_scaling-f920c2efd3c940dc.d: crates/bench/benches/bench_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libbench_scaling-f920c2efd3c940dc.rmeta: crates/bench/benches/bench_scaling.rs Cargo.toml

crates/bench/benches/bench_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
