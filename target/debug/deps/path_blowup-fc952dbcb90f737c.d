/root/repo/target/debug/deps/path_blowup-fc952dbcb90f737c.d: crates/bench/src/bin/path_blowup.rs

/root/repo/target/debug/deps/path_blowup-fc952dbcb90f737c: crates/bench/src/bin/path_blowup.rs

crates/bench/src/bin/path_blowup.rs:
