/root/repo/target/debug/deps/batch_determinism-1dbe6b2a8dbe89d2.d: crates/bench/../../tests/batch_determinism.rs

/root/repo/target/debug/deps/libbatch_determinism-1dbe6b2a8dbe89d2.rmeta: crates/bench/../../tests/batch_determinism.rs

crates/bench/../../tests/batch_determinism.rs:
