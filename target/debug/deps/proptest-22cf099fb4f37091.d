/root/repo/target/debug/deps/proptest-22cf099fb4f37091.d: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-22cf099fb4f37091.rmeta: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/arbitrary.rs:
shims/proptest/src/collection.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
