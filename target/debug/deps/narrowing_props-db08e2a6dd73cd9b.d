/root/repo/target/debug/deps/narrowing_props-db08e2a6dd73cd9b.d: crates/core/tests/narrowing_props.rs Cargo.toml

/root/repo/target/debug/deps/libnarrowing_props-db08e2a6dd73cd9b.rmeta: crates/core/tests/narrowing_props.rs Cargo.toml

crates/core/tests/narrowing_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
