/root/repo/target/debug/deps/failpoints-99b451bac31e8419.d: crates/core/tests/failpoints.rs

/root/repo/target/debug/deps/failpoints-99b451bac31e8419: crates/core/tests/failpoints.rs

crates/core/tests/failpoints.rs:
