/root/repo/target/debug/deps/gadget_probe-55cb255f4460ea8d.d: crates/bench/src/bin/gadget_probe.rs

/root/repo/target/debug/deps/gadget_probe-55cb255f4460ea8d: crates/bench/src/bin/gadget_probe.rs

crates/bench/src/bin/gadget_probe.rs:
