/root/repo/target/debug/deps/ltt_waveform-da2859449fab3907.d: crates/waveform/src/lib.rs crates/waveform/src/aw.rs crates/waveform/src/dense.rs crates/waveform/src/signal.rs crates/waveform/src/time.rs

/root/repo/target/debug/deps/libltt_waveform-da2859449fab3907.rlib: crates/waveform/src/lib.rs crates/waveform/src/aw.rs crates/waveform/src/dense.rs crates/waveform/src/signal.rs crates/waveform/src/time.rs

/root/repo/target/debug/deps/libltt_waveform-da2859449fab3907.rmeta: crates/waveform/src/lib.rs crates/waveform/src/aw.rs crates/waveform/src/dense.rs crates/waveform/src/signal.rs crates/waveform/src/time.rs

crates/waveform/src/lib.rs:
crates/waveform/src/aw.rs:
crates/waveform/src/dense.rs:
crates/waveform/src/signal.rs:
crates/waveform/src/time.rs:
