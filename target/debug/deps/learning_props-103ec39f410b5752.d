/root/repo/target/debug/deps/learning_props-103ec39f410b5752.d: crates/core/tests/learning_props.rs

/root/repo/target/debug/deps/liblearning_props-103ec39f410b5752.rmeta: crates/core/tests/learning_props.rs

crates/core/tests/learning_props.rs:
