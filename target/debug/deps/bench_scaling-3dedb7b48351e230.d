/root/repo/target/debug/deps/bench_scaling-3dedb7b48351e230.d: crates/bench/benches/bench_scaling.rs

/root/repo/target/debug/deps/libbench_scaling-3dedb7b48351e230.rmeta: crates/bench/benches/bench_scaling.rs

crates/bench/benches/bench_scaling.rs:
