/root/repo/target/debug/deps/ltt_sta-58fe7e94ce9e35ed.d: crates/sta/src/lib.rs crates/sta/src/floating.rs crates/sta/src/paths.rs crates/sta/src/simulate.rs crates/sta/src/slack.rs

/root/repo/target/debug/deps/ltt_sta-58fe7e94ce9e35ed: crates/sta/src/lib.rs crates/sta/src/floating.rs crates/sta/src/paths.rs crates/sta/src/simulate.rs crates/sta/src/slack.rs

crates/sta/src/lib.rs:
crates/sta/src/floating.rs:
crates/sta/src/paths.rs:
crates/sta/src/simulate.rs:
crates/sta/src/slack.rs:
