/root/repo/target/debug/deps/proptest-c8cdda45da55aa35.d: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-c8cdda45da55aa35: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/arbitrary.rs:
shims/proptest/src/collection.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
