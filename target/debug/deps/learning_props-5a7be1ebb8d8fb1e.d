/root/repo/target/debug/deps/learning_props-5a7be1ebb8d8fb1e.d: crates/core/tests/learning_props.rs Cargo.toml

/root/repo/target/debug/deps/liblearning_props-5a7be1ebb8d8fb1e.rmeta: crates/core/tests/learning_props.rs Cargo.toml

crates/core/tests/learning_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
