/root/repo/target/debug/deps/fig1_example2-5ac1a676e6e94345.d: crates/bench/src/bin/fig1_example2.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_example2-5ac1a676e6e94345.rmeta: crates/bench/src/bin/fig1_example2.rs Cargo.toml

crates/bench/src/bin/fig1_example2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
