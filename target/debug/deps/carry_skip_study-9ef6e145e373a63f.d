/root/repo/target/debug/deps/carry_skip_study-9ef6e145e373a63f.d: crates/bench/src/bin/carry_skip_study.rs Cargo.toml

/root/repo/target/debug/deps/libcarry_skip_study-9ef6e145e373a63f.rmeta: crates/bench/src/bin/carry_skip_study.rs Cargo.toml

crates/bench/src/bin/carry_skip_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
