/root/repo/target/debug/deps/malformed_fixtures-938aff5c0a90edbe.d: crates/netlist/tests/malformed_fixtures.rs

/root/repo/target/debug/deps/libmalformed_fixtures-938aff5c0a90edbe.rmeta: crates/netlist/tests/malformed_fixtures.rs

crates/netlist/tests/malformed_fixtures.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/netlist
