/root/repo/target/debug/deps/algebra_props-07f6c9921400a507.d: crates/waveform/tests/algebra_props.rs Cargo.toml

/root/repo/target/debug/deps/libalgebra_props-07f6c9921400a507.rmeta: crates/waveform/tests/algebra_props.rs Cargo.toml

crates/waveform/tests/algebra_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
