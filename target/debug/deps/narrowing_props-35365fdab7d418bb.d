/root/repo/target/debug/deps/narrowing_props-35365fdab7d418bb.d: crates/core/tests/narrowing_props.rs

/root/repo/target/debug/deps/narrowing_props-35365fdab7d418bb: crates/core/tests/narrowing_props.rs

crates/core/tests/narrowing_props.rs:
