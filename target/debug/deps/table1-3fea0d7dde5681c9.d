/root/repo/target/debug/deps/table1-3fea0d7dde5681c9.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-3fea0d7dde5681c9: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
