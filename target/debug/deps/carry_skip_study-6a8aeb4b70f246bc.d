/root/repo/target/debug/deps/carry_skip_study-6a8aeb4b70f246bc.d: crates/bench/src/bin/carry_skip_study.rs

/root/repo/target/debug/deps/libcarry_skip_study-6a8aeb4b70f246bc.rmeta: crates/bench/src/bin/carry_skip_study.rs

crates/bench/src/bin/carry_skip_study.rs:
