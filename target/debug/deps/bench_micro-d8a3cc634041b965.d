/root/repo/target/debug/deps/bench_micro-d8a3cc634041b965.d: crates/bench/benches/bench_micro.rs Cargo.toml

/root/repo/target/debug/deps/libbench_micro-d8a3cc634041b965.rmeta: crates/bench/benches/bench_micro.rs Cargo.toml

crates/bench/benches/bench_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
