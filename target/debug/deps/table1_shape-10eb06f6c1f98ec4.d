/root/repo/target/debug/deps/table1_shape-10eb06f6c1f98ec4.d: crates/bench/../../tests/table1_shape.rs

/root/repo/target/debug/deps/table1_shape-10eb06f6c1f98ec4: crates/bench/../../tests/table1_shape.rs

crates/bench/../../tests/table1_shape.rs:
