/root/repo/target/debug/deps/ltt_core-1404d3c195a9d2b6.d: crates/core/src/lib.rs crates/core/src/batch.rs crates/core/src/budget.rs crates/core/src/carriers.rs crates/core/src/check.rs crates/core/src/domain.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/failpoint.rs crates/core/src/fan.rs crates/core/src/learning.rs crates/core/src/prepared.rs crates/core/src/projection.rs crates/core/src/scoap.rs crates/core/src/solver.rs crates/core/src/stems.rs

/root/repo/target/debug/deps/libltt_core-1404d3c195a9d2b6.rmeta: crates/core/src/lib.rs crates/core/src/batch.rs crates/core/src/budget.rs crates/core/src/carriers.rs crates/core/src/check.rs crates/core/src/domain.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/failpoint.rs crates/core/src/fan.rs crates/core/src/learning.rs crates/core/src/prepared.rs crates/core/src/projection.rs crates/core/src/scoap.rs crates/core/src/solver.rs crates/core/src/stems.rs

crates/core/src/lib.rs:
crates/core/src/batch.rs:
crates/core/src/budget.rs:
crates/core/src/carriers.rs:
crates/core/src/check.rs:
crates/core/src/domain.rs:
crates/core/src/error.rs:
crates/core/src/explain.rs:
crates/core/src/failpoint.rs:
crates/core/src/fan.rs:
crates/core/src/learning.rs:
crates/core/src/prepared.rs:
crates/core/src/projection.rs:
crates/core/src/scoap.rs:
crates/core/src/solver.rs:
crates/core/src/stems.rs:
