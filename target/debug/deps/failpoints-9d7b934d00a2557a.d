/root/repo/target/debug/deps/failpoints-9d7b934d00a2557a.d: crates/core/tests/failpoints.rs Cargo.toml

/root/repo/target/debug/deps/libfailpoints-9d7b934d00a2557a.rmeta: crates/core/tests/failpoints.rs Cargo.toml

crates/core/tests/failpoints.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
