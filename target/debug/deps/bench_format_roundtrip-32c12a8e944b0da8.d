/root/repo/target/debug/deps/bench_format_roundtrip-32c12a8e944b0da8.d: crates/bench/../../tests/bench_format_roundtrip.rs

/root/repo/target/debug/deps/libbench_format_roundtrip-32c12a8e944b0da8.rmeta: crates/bench/../../tests/bench_format_roundtrip.rs

crates/bench/../../tests/bench_format_roundtrip.rs:
