/root/repo/target/debug/deps/ltt_core-423691b7e071cd9f.d: crates/core/src/lib.rs crates/core/src/batch.rs crates/core/src/budget.rs crates/core/src/carriers.rs crates/core/src/check.rs crates/core/src/domain.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/failpoint.rs crates/core/src/fan.rs crates/core/src/learning.rs crates/core/src/prepared.rs crates/core/src/projection.rs crates/core/src/scoap.rs crates/core/src/solver.rs crates/core/src/stems.rs

/root/repo/target/debug/deps/libltt_core-423691b7e071cd9f.rmeta: crates/core/src/lib.rs crates/core/src/batch.rs crates/core/src/budget.rs crates/core/src/carriers.rs crates/core/src/check.rs crates/core/src/domain.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/failpoint.rs crates/core/src/fan.rs crates/core/src/learning.rs crates/core/src/prepared.rs crates/core/src/projection.rs crates/core/src/scoap.rs crates/core/src/solver.rs crates/core/src/stems.rs

crates/core/src/lib.rs:
crates/core/src/batch.rs:
crates/core/src/budget.rs:
crates/core/src/carriers.rs:
crates/core/src/check.rs:
crates/core/src/domain.rs:
crates/core/src/error.rs:
crates/core/src/explain.rs:
crates/core/src/failpoint.rs:
crates/core/src/fan.rs:
crates/core/src/learning.rs:
crates/core/src/prepared.rs:
crates/core/src/projection.rs:
crates/core/src/scoap.rs:
crates/core/src/solver.rs:
crates/core/src/stems.rs:
