/root/repo/target/debug/deps/path_blowup-839f5f004a82d9a2.d: crates/bench/src/bin/path_blowup.rs

/root/repo/target/debug/deps/path_blowup-839f5f004a82d9a2: crates/bench/src/bin/path_blowup.rs

crates/bench/src/bin/path_blowup.rs:
