/root/repo/target/debug/deps/waveform_containment-fa1abfa646e9fd92.d: crates/bench/../../tests/waveform_containment.rs

/root/repo/target/debug/deps/libwaveform_containment-fa1abfa646e9fd92.rmeta: crates/bench/../../tests/waveform_containment.rs

crates/bench/../../tests/waveform_containment.rs:
