/root/repo/target/debug/deps/ltt_waveform-b8e808df9375d02f.d: crates/waveform/src/lib.rs crates/waveform/src/aw.rs crates/waveform/src/dense.rs crates/waveform/src/signal.rs crates/waveform/src/time.rs

/root/repo/target/debug/deps/ltt_waveform-b8e808df9375d02f: crates/waveform/src/lib.rs crates/waveform/src/aw.rs crates/waveform/src/dense.rs crates/waveform/src/signal.rs crates/waveform/src/time.rs

crates/waveform/src/lib.rs:
crates/waveform/src/aw.rs:
crates/waveform/src/dense.rs:
crates/waveform/src/signal.rs:
crates/waveform/src/time.rs:
