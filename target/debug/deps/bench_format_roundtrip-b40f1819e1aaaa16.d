/root/repo/target/debug/deps/bench_format_roundtrip-b40f1819e1aaaa16.d: crates/bench/../../tests/bench_format_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libbench_format_roundtrip-b40f1819e1aaaa16.rmeta: crates/bench/../../tests/bench_format_roundtrip.rs Cargo.toml

crates/bench/../../tests/bench_format_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
