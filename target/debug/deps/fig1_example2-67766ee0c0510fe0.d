/root/repo/target/debug/deps/fig1_example2-67766ee0c0510fe0.d: crates/bench/src/bin/fig1_example2.rs

/root/repo/target/debug/deps/libfig1_example2-67766ee0c0510fe0.rmeta: crates/bench/src/bin/fig1_example2.rs

crates/bench/src/bin/fig1_example2.rs:
