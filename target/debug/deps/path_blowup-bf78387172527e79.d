/root/repo/target/debug/deps/path_blowup-bf78387172527e79.d: crates/bench/src/bin/path_blowup.rs

/root/repo/target/debug/deps/libpath_blowup-bf78387172527e79.rmeta: crates/bench/src/bin/path_blowup.rs

crates/bench/src/bin/path_blowup.rs:
