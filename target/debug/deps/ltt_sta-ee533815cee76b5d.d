/root/repo/target/debug/deps/ltt_sta-ee533815cee76b5d.d: crates/sta/src/lib.rs crates/sta/src/floating.rs crates/sta/src/paths.rs crates/sta/src/simulate.rs crates/sta/src/slack.rs

/root/repo/target/debug/deps/libltt_sta-ee533815cee76b5d.rmeta: crates/sta/src/lib.rs crates/sta/src/floating.rs crates/sta/src/paths.rs crates/sta/src/simulate.rs crates/sta/src/slack.rs

crates/sta/src/lib.rs:
crates/sta/src/floating.rs:
crates/sta/src/paths.rs:
crates/sta/src/simulate.rs:
crates/sta/src/slack.rs:
