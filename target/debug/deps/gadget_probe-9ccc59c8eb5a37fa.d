/root/repo/target/debug/deps/gadget_probe-9ccc59c8eb5a37fa.d: crates/bench/src/bin/gadget_probe.rs

/root/repo/target/debug/deps/libgadget_probe-9ccc59c8eb5a37fa.rmeta: crates/bench/src/bin/gadget_probe.rs

crates/bench/src/bin/gadget_probe.rs:
