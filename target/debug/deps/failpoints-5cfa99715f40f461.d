/root/repo/target/debug/deps/failpoints-5cfa99715f40f461.d: crates/core/tests/failpoints.rs

/root/repo/target/debug/deps/failpoints-5cfa99715f40f461: crates/core/tests/failpoints.rs

crates/core/tests/failpoints.rs:
