/root/repo/target/debug/deps/table1-3d9c5ffcfd069e59.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-3d9c5ffcfd069e59: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
