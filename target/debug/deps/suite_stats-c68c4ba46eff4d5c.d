/root/repo/target/debug/deps/suite_stats-c68c4ba46eff4d5c.d: crates/bench/src/bin/suite_stats.rs

/root/repo/target/debug/deps/libsuite_stats-c68c4ba46eff4d5c.rmeta: crates/bench/src/bin/suite_stats.rs

crates/bench/src/bin/suite_stats.rs:
