/root/repo/target/debug/deps/ltt-d08148de61dacea1.d: crates/cli/src/main.rs crates/cli/src/cli.rs

/root/repo/target/debug/deps/ltt-d08148de61dacea1: crates/cli/src/main.rs crates/cli/src/cli.rs

crates/cli/src/main.rs:
crates/cli/src/cli.rs:
