/root/repo/target/debug/deps/ltt_bench-2ef9b3ab92ca1b83.d: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/table1.rs

/root/repo/target/debug/deps/libltt_bench-2ef9b3ab92ca1b83.rmeta: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/table1.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
crates/bench/src/table1.rs:
