/root/repo/target/debug/deps/ltt_sta-52a6839a8b9caa0a.d: crates/sta/src/lib.rs crates/sta/src/floating.rs crates/sta/src/paths.rs crates/sta/src/simulate.rs crates/sta/src/slack.rs

/root/repo/target/debug/deps/libltt_sta-52a6839a8b9caa0a.rlib: crates/sta/src/lib.rs crates/sta/src/floating.rs crates/sta/src/paths.rs crates/sta/src/simulate.rs crates/sta/src/slack.rs

/root/repo/target/debug/deps/libltt_sta-52a6839a8b9caa0a.rmeta: crates/sta/src/lib.rs crates/sta/src/floating.rs crates/sta/src/paths.rs crates/sta/src/simulate.rs crates/sta/src/slack.rs

crates/sta/src/lib.rs:
crates/sta/src/floating.rs:
crates/sta/src/paths.rs:
crates/sta/src/simulate.rs:
crates/sta/src/slack.rs:
