/root/repo/target/debug/deps/ltt_waveform-a6348eea1e7b0c19.d: crates/waveform/src/lib.rs crates/waveform/src/aw.rs crates/waveform/src/dense.rs crates/waveform/src/signal.rs crates/waveform/src/time.rs

/root/repo/target/debug/deps/libltt_waveform-a6348eea1e7b0c19.rmeta: crates/waveform/src/lib.rs crates/waveform/src/aw.rs crates/waveform/src/dense.rs crates/waveform/src/signal.rs crates/waveform/src/time.rs

crates/waveform/src/lib.rs:
crates/waveform/src/aw.rs:
crates/waveform/src/dense.rs:
crates/waveform/src/signal.rs:
crates/waveform/src/time.rs:
