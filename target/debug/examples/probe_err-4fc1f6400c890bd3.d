/root/repo/target/debug/examples/probe_err-4fc1f6400c890bd3.d: crates/netlist/examples/probe_err.rs

/root/repo/target/debug/examples/probe_err-4fc1f6400c890bd3: crates/netlist/examples/probe_err.rs

crates/netlist/examples/probe_err.rs:
