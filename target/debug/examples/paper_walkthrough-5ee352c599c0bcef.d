/root/repo/target/debug/examples/paper_walkthrough-5ee352c599c0bcef.d: crates/bench/../../examples/paper_walkthrough.rs Cargo.toml

/root/repo/target/debug/examples/libpaper_walkthrough-5ee352c599c0bcef.rmeta: crates/bench/../../examples/paper_walkthrough.rs Cargo.toml

crates/bench/../../examples/paper_walkthrough.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
