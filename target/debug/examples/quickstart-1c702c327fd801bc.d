/root/repo/target/debug/examples/quickstart-1c702c327fd801bc.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-1c702c327fd801bc.rmeta: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
