/root/repo/target/debug/examples/bench_file_check-ec020d56a1d3330d.d: crates/bench/../../examples/bench_file_check.rs

/root/repo/target/debug/examples/bench_file_check-ec020d56a1d3330d: crates/bench/../../examples/bench_file_check.rs

crates/bench/../../examples/bench_file_check.rs:
