/root/repo/target/debug/examples/false_path_adder-15bff8717a6144e8.d: crates/bench/../../examples/false_path_adder.rs

/root/repo/target/debug/examples/libfalse_path_adder-15bff8717a6144e8.rmeta: crates/bench/../../examples/false_path_adder.rs

crates/bench/../../examples/false_path_adder.rs:
