/root/repo/target/debug/examples/waveform_debug-774364679d686ae6.d: crates/bench/../../examples/waveform_debug.rs

/root/repo/target/debug/examples/waveform_debug-774364679d686ae6: crates/bench/../../examples/waveform_debug.rs

crates/bench/../../examples/waveform_debug.rs:
