/root/repo/target/debug/examples/paper_walkthrough-ed9853f668a616b3.d: crates/bench/../../examples/paper_walkthrough.rs

/root/repo/target/debug/examples/paper_walkthrough-ed9853f668a616b3: crates/bench/../../examples/paper_walkthrough.rs

crates/bench/../../examples/paper_walkthrough.rs:
