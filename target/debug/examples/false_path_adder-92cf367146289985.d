/root/repo/target/debug/examples/false_path_adder-92cf367146289985.d: crates/bench/../../examples/false_path_adder.rs Cargo.toml

/root/repo/target/debug/examples/libfalse_path_adder-92cf367146289985.rmeta: crates/bench/../../examples/false_path_adder.rs Cargo.toml

crates/bench/../../examples/false_path_adder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
