/root/repo/target/debug/examples/mux_sdf-125ee76212735157.d: crates/bench/../../examples/mux_sdf.rs

/root/repo/target/debug/examples/mux_sdf-125ee76212735157: crates/bench/../../examples/mux_sdf.rs

crates/bench/../../examples/mux_sdf.rs:
