/root/repo/target/debug/examples/paper_walkthrough-6b7048d0f89252e9.d: crates/bench/../../examples/paper_walkthrough.rs

/root/repo/target/debug/examples/libpaper_walkthrough-6b7048d0f89252e9.rmeta: crates/bench/../../examples/paper_walkthrough.rs

crates/bench/../../examples/paper_walkthrough.rs:
