/root/repo/target/debug/examples/bench_file_check-822eb2e17373a18b.d: crates/bench/../../examples/bench_file_check.rs Cargo.toml

/root/repo/target/debug/examples/libbench_file_check-822eb2e17373a18b.rmeta: crates/bench/../../examples/bench_file_check.rs Cargo.toml

crates/bench/../../examples/bench_file_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
