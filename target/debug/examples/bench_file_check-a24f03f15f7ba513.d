/root/repo/target/debug/examples/bench_file_check-a24f03f15f7ba513.d: crates/bench/../../examples/bench_file_check.rs

/root/repo/target/debug/examples/libbench_file_check-a24f03f15f7ba513.rmeta: crates/bench/../../examples/bench_file_check.rs

crates/bench/../../examples/bench_file_check.rs:
