/root/repo/target/debug/examples/iscas_suite-8937efee89aded0f.d: crates/bench/../../examples/iscas_suite.rs

/root/repo/target/debug/examples/libiscas_suite-8937efee89aded0f.rmeta: crates/bench/../../examples/iscas_suite.rs

crates/bench/../../examples/iscas_suite.rs:
