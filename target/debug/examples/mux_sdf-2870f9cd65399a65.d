/root/repo/target/debug/examples/mux_sdf-2870f9cd65399a65.d: crates/bench/../../examples/mux_sdf.rs

/root/repo/target/debug/examples/libmux_sdf-2870f9cd65399a65.rmeta: crates/bench/../../examples/mux_sdf.rs

crates/bench/../../examples/mux_sdf.rs:
