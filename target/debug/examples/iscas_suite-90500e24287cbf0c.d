/root/repo/target/debug/examples/iscas_suite-90500e24287cbf0c.d: crates/bench/../../examples/iscas_suite.rs Cargo.toml

/root/repo/target/debug/examples/libiscas_suite-90500e24287cbf0c.rmeta: crates/bench/../../examples/iscas_suite.rs Cargo.toml

crates/bench/../../examples/iscas_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
