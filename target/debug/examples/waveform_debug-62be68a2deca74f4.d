/root/repo/target/debug/examples/waveform_debug-62be68a2deca74f4.d: crates/bench/../../examples/waveform_debug.rs Cargo.toml

/root/repo/target/debug/examples/libwaveform_debug-62be68a2deca74f4.rmeta: crates/bench/../../examples/waveform_debug.rs Cargo.toml

crates/bench/../../examples/waveform_debug.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
