/root/repo/target/debug/examples/mux_sdf-c6a620d9fce84fc3.d: crates/bench/../../examples/mux_sdf.rs Cargo.toml

/root/repo/target/debug/examples/libmux_sdf-c6a620d9fce84fc3.rmeta: crates/bench/../../examples/mux_sdf.rs Cargo.toml

crates/bench/../../examples/mux_sdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
