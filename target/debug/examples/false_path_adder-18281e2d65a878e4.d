/root/repo/target/debug/examples/false_path_adder-18281e2d65a878e4.d: crates/bench/../../examples/false_path_adder.rs

/root/repo/target/debug/examples/false_path_adder-18281e2d65a878e4: crates/bench/../../examples/false_path_adder.rs

crates/bench/../../examples/false_path_adder.rs:
