/root/repo/target/debug/examples/iscas_suite-589bc05a2d79bd58.d: crates/bench/../../examples/iscas_suite.rs

/root/repo/target/debug/examples/iscas_suite-589bc05a2d79bd58: crates/bench/../../examples/iscas_suite.rs

crates/bench/../../examples/iscas_suite.rs:
