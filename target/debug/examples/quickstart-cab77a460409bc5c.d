/root/repo/target/debug/examples/quickstart-cab77a460409bc5c.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-cab77a460409bc5c: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
