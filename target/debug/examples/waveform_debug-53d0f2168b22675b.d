/root/repo/target/debug/examples/waveform_debug-53d0f2168b22675b.d: crates/bench/../../examples/waveform_debug.rs

/root/repo/target/debug/examples/libwaveform_debug-53d0f2168b22675b.rmeta: crates/bench/../../examples/waveform_debug.rs

crates/bench/../../examples/waveform_debug.rs:
