/root/repo/target/release/examples/quickstart-049a28f41211f936.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-049a28f41211f936: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
