/root/repo/target/release/examples/bench_file_check-42d1a595661f646c.d: crates/bench/../../examples/bench_file_check.rs

/root/repo/target/release/examples/bench_file_check-42d1a595661f646c: crates/bench/../../examples/bench_file_check.rs

crates/bench/../../examples/bench_file_check.rs:
