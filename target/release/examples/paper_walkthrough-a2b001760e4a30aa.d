/root/repo/target/release/examples/paper_walkthrough-a2b001760e4a30aa.d: crates/bench/../../examples/paper_walkthrough.rs

/root/repo/target/release/examples/paper_walkthrough-a2b001760e4a30aa: crates/bench/../../examples/paper_walkthrough.rs

crates/bench/../../examples/paper_walkthrough.rs:
