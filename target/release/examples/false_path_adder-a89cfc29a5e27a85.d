/root/repo/target/release/examples/false_path_adder-a89cfc29a5e27a85.d: crates/bench/../../examples/false_path_adder.rs

/root/repo/target/release/examples/false_path_adder-a89cfc29a5e27a85: crates/bench/../../examples/false_path_adder.rs

crates/bench/../../examples/false_path_adder.rs:
