/root/repo/target/release/examples/waveform_debug-e5f9b1ae05328812.d: crates/bench/../../examples/waveform_debug.rs

/root/repo/target/release/examples/waveform_debug-e5f9b1ae05328812: crates/bench/../../examples/waveform_debug.rs

crates/bench/../../examples/waveform_debug.rs:
