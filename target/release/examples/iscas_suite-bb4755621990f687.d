/root/repo/target/release/examples/iscas_suite-bb4755621990f687.d: crates/bench/../../examples/iscas_suite.rs

/root/repo/target/release/examples/iscas_suite-bb4755621990f687: crates/bench/../../examples/iscas_suite.rs

crates/bench/../../examples/iscas_suite.rs:
