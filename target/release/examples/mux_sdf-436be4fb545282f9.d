/root/repo/target/release/examples/mux_sdf-436be4fb545282f9.d: crates/bench/../../examples/mux_sdf.rs

/root/repo/target/release/examples/mux_sdf-436be4fb545282f9: crates/bench/../../examples/mux_sdf.rs

crates/bench/../../examples/mux_sdf.rs:
