/root/repo/target/release/deps/carry_skip_study-7858934fe3f5baac.d: crates/bench/src/bin/carry_skip_study.rs

/root/repo/target/release/deps/carry_skip_study-7858934fe3f5baac: crates/bench/src/bin/carry_skip_study.rs

crates/bench/src/bin/carry_skip_study.rs:
