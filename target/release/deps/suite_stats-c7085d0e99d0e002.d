/root/repo/target/release/deps/suite_stats-c7085d0e99d0e002.d: crates/bench/src/bin/suite_stats.rs

/root/repo/target/release/deps/suite_stats-c7085d0e99d0e002: crates/bench/src/bin/suite_stats.rs

crates/bench/src/bin/suite_stats.rs:
