/root/repo/target/release/deps/ltt_bench-82a9134c4130796a.d: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/table1.rs

/root/repo/target/release/deps/ltt_bench-82a9134c4130796a: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/table1.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
crates/bench/src/table1.rs:
