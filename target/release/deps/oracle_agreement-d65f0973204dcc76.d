/root/repo/target/release/deps/oracle_agreement-d65f0973204dcc76.d: crates/bench/../../tests/oracle_agreement.rs

/root/repo/target/release/deps/oracle_agreement-d65f0973204dcc76: crates/bench/../../tests/oracle_agreement.rs

crates/bench/../../tests/oracle_agreement.rs:
