/root/repo/target/release/deps/failpoints-d140e7eeccfd5920.d: crates/core/tests/failpoints.rs

/root/repo/target/release/deps/failpoints-d140e7eeccfd5920: crates/core/tests/failpoints.rs

crates/core/tests/failpoints.rs:
