/root/repo/target/release/deps/ablation-c14de27de80d9dac.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-c14de27de80d9dac: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
