/root/repo/target/release/deps/suite_integration-2d9e91a8d95fbcc6.d: crates/bench/../../tests/suite_integration.rs

/root/repo/target/release/deps/suite_integration-2d9e91a8d95fbcc6: crates/bench/../../tests/suite_integration.rs

crates/bench/../../tests/suite_integration.rs:
