/root/repo/target/release/deps/learning_props-15833a2d603a196e.d: crates/core/tests/learning_props.rs

/root/repo/target/release/deps/learning_props-15833a2d603a196e: crates/core/tests/learning_props.rs

crates/core/tests/learning_props.rs:
