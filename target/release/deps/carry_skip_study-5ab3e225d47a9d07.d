/root/repo/target/release/deps/carry_skip_study-5ab3e225d47a9d07.d: crates/bench/src/bin/carry_skip_study.rs

/root/repo/target/release/deps/carry_skip_study-5ab3e225d47a9d07: crates/bench/src/bin/carry_skip_study.rs

crates/bench/src/bin/carry_skip_study.rs:
