/root/repo/target/release/deps/ltt-ade50a91fd7ec091.d: crates/cli/src/main.rs crates/cli/src/cli.rs

/root/repo/target/release/deps/ltt-ade50a91fd7ec091: crates/cli/src/main.rs crates/cli/src/cli.rs

crates/cli/src/main.rs:
crates/cli/src/cli.rs:
