/root/repo/target/release/deps/path_blowup-5836d38cc2a5fd8f.d: crates/bench/src/bin/path_blowup.rs

/root/repo/target/release/deps/path_blowup-5836d38cc2a5fd8f: crates/bench/src/bin/path_blowup.rs

crates/bench/src/bin/path_blowup.rs:
