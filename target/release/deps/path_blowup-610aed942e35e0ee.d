/root/repo/target/release/deps/path_blowup-610aed942e35e0ee.d: crates/bench/src/bin/path_blowup.rs

/root/repo/target/release/deps/path_blowup-610aed942e35e0ee: crates/bench/src/bin/path_blowup.rs

crates/bench/src/bin/path_blowup.rs:
