/root/repo/target/release/deps/ablation-e0c43a99c4a30e6f.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-e0c43a99c4a30e6f: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
