/root/repo/target/release/deps/fig1_example2-4e7c287fe02782b6.d: crates/bench/src/bin/fig1_example2.rs

/root/repo/target/release/deps/fig1_example2-4e7c287fe02782b6: crates/bench/src/bin/fig1_example2.rs

crates/bench/src/bin/fig1_example2.rs:
