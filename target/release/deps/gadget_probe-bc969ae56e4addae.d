/root/repo/target/release/deps/gadget_probe-bc969ae56e4addae.d: crates/bench/src/bin/gadget_probe.rs

/root/repo/target/release/deps/gadget_probe-bc969ae56e4addae: crates/bench/src/bin/gadget_probe.rs

crates/bench/src/bin/gadget_probe.rs:
