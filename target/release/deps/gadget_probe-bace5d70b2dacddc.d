/root/repo/target/release/deps/gadget_probe-bace5d70b2dacddc.d: crates/bench/src/bin/gadget_probe.rs

/root/repo/target/release/deps/gadget_probe-bace5d70b2dacddc: crates/bench/src/bin/gadget_probe.rs

crates/bench/src/bin/gadget_probe.rs:
