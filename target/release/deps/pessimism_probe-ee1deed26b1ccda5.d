/root/repo/target/release/deps/pessimism_probe-ee1deed26b1ccda5.d: crates/bench/src/bin/pessimism_probe.rs

/root/repo/target/release/deps/pessimism_probe-ee1deed26b1ccda5: crates/bench/src/bin/pessimism_probe.rs

crates/bench/src/bin/pessimism_probe.rs:
