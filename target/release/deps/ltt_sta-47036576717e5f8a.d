/root/repo/target/release/deps/ltt_sta-47036576717e5f8a.d: crates/sta/src/lib.rs crates/sta/src/floating.rs crates/sta/src/paths.rs crates/sta/src/simulate.rs crates/sta/src/slack.rs

/root/repo/target/release/deps/libltt_sta-47036576717e5f8a.rlib: crates/sta/src/lib.rs crates/sta/src/floating.rs crates/sta/src/paths.rs crates/sta/src/simulate.rs crates/sta/src/slack.rs

/root/repo/target/release/deps/libltt_sta-47036576717e5f8a.rmeta: crates/sta/src/lib.rs crates/sta/src/floating.rs crates/sta/src/paths.rs crates/sta/src/simulate.rs crates/sta/src/slack.rs

crates/sta/src/lib.rs:
crates/sta/src/floating.rs:
crates/sta/src/paths.rs:
crates/sta/src/simulate.rs:
crates/sta/src/slack.rs:
