/root/repo/target/release/deps/pipeline_end_to_end-5d8c9dd1d10320f2.d: crates/bench/../../tests/pipeline_end_to_end.rs

/root/repo/target/release/deps/pipeline_end_to_end-5d8c9dd1d10320f2: crates/bench/../../tests/pipeline_end_to_end.rs

crates/bench/../../tests/pipeline_end_to_end.rs:
