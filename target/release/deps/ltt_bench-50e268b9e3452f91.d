/root/repo/target/release/deps/ltt_bench-50e268b9e3452f91.d: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/table1.rs

/root/repo/target/release/deps/libltt_bench-50e268b9e3452f91.rlib: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/table1.rs

/root/repo/target/release/deps/libltt_bench-50e268b9e3452f91.rmeta: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/table1.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
crates/bench/src/table1.rs:
