/root/repo/target/release/deps/trail_props-dd20adfc9a8616ca.d: crates/core/tests/trail_props.rs

/root/repo/target/release/deps/trail_props-dd20adfc9a8616ca: crates/core/tests/trail_props.rs

crates/core/tests/trail_props.rs:
