/root/repo/target/release/deps/bench_format_roundtrip-337a085d99339ab2.d: crates/bench/../../tests/bench_format_roundtrip.rs

/root/repo/target/release/deps/bench_format_roundtrip-337a085d99339ab2: crates/bench/../../tests/bench_format_roundtrip.rs

crates/bench/../../tests/bench_format_roundtrip.rs:
