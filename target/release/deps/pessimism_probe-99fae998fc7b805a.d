/root/repo/target/release/deps/pessimism_probe-99fae998fc7b805a.d: crates/bench/src/bin/pessimism_probe.rs

/root/repo/target/release/deps/pessimism_probe-99fae998fc7b805a: crates/bench/src/bin/pessimism_probe.rs

crates/bench/src/bin/pessimism_probe.rs:
