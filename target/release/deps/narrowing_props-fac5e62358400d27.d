/root/repo/target/release/deps/narrowing_props-fac5e62358400d27.d: crates/core/tests/narrowing_props.rs

/root/repo/target/release/deps/narrowing_props-fac5e62358400d27: crates/core/tests/narrowing_props.rs

crates/core/tests/narrowing_props.rs:
