/root/repo/target/release/deps/dominator_study-fc2283179aa0f763.d: crates/bench/src/bin/dominator_study.rs

/root/repo/target/release/deps/dominator_study-fc2283179aa0f763: crates/bench/src/bin/dominator_study.rs

crates/bench/src/bin/dominator_study.rs:
