/root/repo/target/release/deps/ltt_sta-31a6457830cfcc49.d: crates/sta/src/lib.rs crates/sta/src/floating.rs crates/sta/src/paths.rs crates/sta/src/simulate.rs crates/sta/src/slack.rs

/root/repo/target/release/deps/ltt_sta-31a6457830cfcc49: crates/sta/src/lib.rs crates/sta/src/floating.rs crates/sta/src/paths.rs crates/sta/src/simulate.rs crates/sta/src/slack.rs

crates/sta/src/lib.rs:
crates/sta/src/floating.rs:
crates/sta/src/paths.rs:
crates/sta/src/simulate.rs:
crates/sta/src/slack.rs:
