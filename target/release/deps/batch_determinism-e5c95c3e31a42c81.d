/root/repo/target/release/deps/batch_determinism-e5c95c3e31a42c81.d: crates/bench/../../tests/batch_determinism.rs

/root/repo/target/release/deps/batch_determinism-e5c95c3e31a42c81: crates/bench/../../tests/batch_determinism.rs

crates/bench/../../tests/batch_determinism.rs:
