/root/repo/target/release/deps/malformed_fixtures-d6f81386c793ef3e.d: crates/netlist/tests/malformed_fixtures.rs

/root/repo/target/release/deps/malformed_fixtures-d6f81386c793ef3e: crates/netlist/tests/malformed_fixtures.rs

crates/netlist/tests/malformed_fixtures.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/netlist
