/root/repo/target/release/deps/suite_stats-8ceeceec1e6e1f8d.d: crates/bench/src/bin/suite_stats.rs

/root/repo/target/release/deps/suite_stats-8ceeceec1e6e1f8d: crates/bench/src/bin/suite_stats.rs

crates/bench/src/bin/suite_stats.rs:
