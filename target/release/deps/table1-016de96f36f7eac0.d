/root/repo/target/release/deps/table1-016de96f36f7eac0.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-016de96f36f7eac0: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
