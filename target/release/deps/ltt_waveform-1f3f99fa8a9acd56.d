/root/repo/target/release/deps/ltt_waveform-1f3f99fa8a9acd56.d: crates/waveform/src/lib.rs crates/waveform/src/aw.rs crates/waveform/src/dense.rs crates/waveform/src/signal.rs crates/waveform/src/time.rs

/root/repo/target/release/deps/libltt_waveform-1f3f99fa8a9acd56.rlib: crates/waveform/src/lib.rs crates/waveform/src/aw.rs crates/waveform/src/dense.rs crates/waveform/src/signal.rs crates/waveform/src/time.rs

/root/repo/target/release/deps/libltt_waveform-1f3f99fa8a9acd56.rmeta: crates/waveform/src/lib.rs crates/waveform/src/aw.rs crates/waveform/src/dense.rs crates/waveform/src/signal.rs crates/waveform/src/time.rs

crates/waveform/src/lib.rs:
crates/waveform/src/aw.rs:
crates/waveform/src/dense.rs:
crates/waveform/src/signal.rs:
crates/waveform/src/time.rs:
