/root/repo/target/release/deps/parallel_oracle-ca777f283a371b23.d: crates/bench/../../tests/parallel_oracle.rs

/root/repo/target/release/deps/parallel_oracle-ca777f283a371b23: crates/bench/../../tests/parallel_oracle.rs

crates/bench/../../tests/parallel_oracle.rs:
