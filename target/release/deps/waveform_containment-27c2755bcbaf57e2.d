/root/repo/target/release/deps/waveform_containment-27c2755bcbaf57e2.d: crates/bench/../../tests/waveform_containment.rs

/root/repo/target/release/deps/waveform_containment-27c2755bcbaf57e2: crates/bench/../../tests/waveform_containment.rs

crates/bench/../../tests/waveform_containment.rs:
