/root/repo/target/release/deps/algebra_props-eb28eea1635ffb0f.d: crates/waveform/tests/algebra_props.rs

/root/repo/target/release/deps/algebra_props-eb28eea1635ffb0f: crates/waveform/tests/algebra_props.rs

crates/waveform/tests/algebra_props.rs:
