/root/repo/target/release/deps/ltt_waveform-0eb944afa88c9e7d.d: crates/waveform/src/lib.rs crates/waveform/src/aw.rs crates/waveform/src/dense.rs crates/waveform/src/signal.rs crates/waveform/src/time.rs

/root/repo/target/release/deps/ltt_waveform-0eb944afa88c9e7d: crates/waveform/src/lib.rs crates/waveform/src/aw.rs crates/waveform/src/dense.rs crates/waveform/src/signal.rs crates/waveform/src/time.rs

crates/waveform/src/lib.rs:
crates/waveform/src/aw.rs:
crates/waveform/src/dense.rs:
crates/waveform/src/signal.rs:
crates/waveform/src/time.rs:
