/root/repo/target/release/deps/table1-f051a5686ec94b6c.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-f051a5686ec94b6c: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
