/root/repo/target/release/deps/budget_soundness-61c954d8aba68357.d: crates/core/tests/budget_soundness.rs

/root/repo/target/release/deps/budget_soundness-61c954d8aba68357: crates/core/tests/budget_soundness.rs

crates/core/tests/budget_soundness.rs:
