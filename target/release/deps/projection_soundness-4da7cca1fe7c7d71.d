/root/repo/target/release/deps/projection_soundness-4da7cca1fe7c7d71.d: crates/core/tests/projection_soundness.rs

/root/repo/target/release/deps/projection_soundness-4da7cca1fe7c7d71: crates/core/tests/projection_soundness.rs

crates/core/tests/projection_soundness.rs:
