/root/repo/target/release/deps/fig1_example2-3885d8f47662a171.d: crates/bench/src/bin/fig1_example2.rs

/root/repo/target/release/deps/fig1_example2-3885d8f47662a171: crates/bench/src/bin/fig1_example2.rs

crates/bench/src/bin/fig1_example2.rs:
