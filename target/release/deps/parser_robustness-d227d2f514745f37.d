/root/repo/target/release/deps/parser_robustness-d227d2f514745f37.d: crates/netlist/tests/parser_robustness.rs

/root/repo/target/release/deps/parser_robustness-d227d2f514745f37: crates/netlist/tests/parser_robustness.rs

crates/netlist/tests/parser_robustness.rs:
