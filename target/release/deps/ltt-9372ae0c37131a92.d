/root/repo/target/release/deps/ltt-9372ae0c37131a92.d: crates/cli/src/main.rs crates/cli/src/cli.rs

/root/repo/target/release/deps/ltt-9372ae0c37131a92: crates/cli/src/main.rs crates/cli/src/cli.rs

crates/cli/src/main.rs:
crates/cli/src/cli.rs:
