/root/repo/target/release/deps/table1_shape-2ad15380a91aa6ca.d: crates/bench/../../tests/table1_shape.rs

/root/repo/target/release/deps/table1_shape-2ad15380a91aa6ca: crates/bench/../../tests/table1_shape.rs

crates/bench/../../tests/table1_shape.rs:
