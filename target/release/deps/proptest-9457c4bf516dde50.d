/root/repo/target/release/deps/proptest-9457c4bf516dde50.d: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/proptest-9457c4bf516dde50: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/arbitrary.rs:
shims/proptest/src/collection.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
