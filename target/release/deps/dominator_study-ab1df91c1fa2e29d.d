/root/repo/target/release/deps/dominator_study-ab1df91c1fa2e29d.d: crates/bench/src/bin/dominator_study.rs

/root/repo/target/release/deps/dominator_study-ab1df91c1fa2e29d: crates/bench/src/bin/dominator_study.rs

crates/bench/src/bin/dominator_study.rs:
