//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Anything expressible as a size range for generated collections.
pub trait IntoSizeRange {
    /// The inclusive `(min, max)` length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min_len, max_len) = size.bounds();
    VecStrategy {
        element,
        min_len,
        max_len,
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng().gen_range(self.min_len..=self.max_len);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
