//! The case runner: deterministic per-case seeding, failure reporting.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 128 }
    }
}

/// Why a test case failed.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed-assertion error with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// The result type `proptest!` bodies produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic per-(test, case) generator: same inputs every run.
    pub fn deterministic(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case)),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// Runs `cases` samples of one property; panics (failing the `#[test]`) on
/// the first case whose body returns an error, reporting the generated
/// inputs and the case's reproduction seed.
pub fn run_cases<F>(config: &Config, test_name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> (TestCaseResult, String),
{
    for case in 0..config.cases {
        let mut rng = TestRng::deterministic(test_name, case);
        let (result, input) = f(&mut rng);
        if let Err(e) = result {
            panic!(
                "proptest: property `{test_name}` failed at case {case}/{}\n\
                 inputs: {input}\n{e}",
                config.cases
            );
        }
    }
}
