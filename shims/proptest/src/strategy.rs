//! Value-generation strategies (sampling only — no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest, a strategy here is just a samplable, clonable
/// object; `Clone` is a supertrait so `impl Strategy` returns compose the
/// way the real API's value trees do.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident)+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A B);
impl_tuple_strategy!(A B C);
impl_tuple_strategy!(A B C D);
impl_tuple_strategy!(A B C D E);

/// String-literal strategies, as in real proptest, where a `&str` is a
/// regex generating matching strings. Only the pattern shape the workspace
/// uses is supported: `.{min,max}` — "any `min..=max` characters".
///
/// The character distribution mixes ASCII printables, whitespace/controls,
/// and a few multi-byte code points, which is what parser-robustness fuzz
/// tests want out of `.`.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_dot_repeat(self).unwrap_or_else(|| {
            panic!(
                "string strategy {self:?} is not supported by the offline \
                 proptest shim (only `.{{min,max}}` patterns are)"
            )
        });
        let len = rng.rng().gen_range(min..=max);
        (0..len).map(|_| sample_fuzz_char(rng)).collect()
    }
}

/// Parses `.{min,max}` into its bounds.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (min, max) = rest.split_once(',')?;
    Some((min.trim().parse().ok()?, max.trim().parse().ok()?))
}

fn sample_fuzz_char(rng: &mut TestRng) -> char {
    match rng.rng().gen_range(0u32..100) {
        // Mostly printable ASCII (parsers see realistic tokens)…
        0..=79 => char::from(rng.rng().gen_range(0x20u8..0x7F)),
        // …some structural whitespace…
        80..=89 => *['\n', '\t', '\r', ' ']
            .get(rng.rng().gen_range(0usize..4))
            .expect("in range"),
        // …and a sprinkle of non-ASCII / controls.
        _ => *['\0', 'é', 'λ', '中', '\u{7f}', '\u{1}']
            .get(rng.rng().gen_range(0usize..6))
            .expect("in range"),
    }
}

/// A boxed sampler: one erased arm of a [`Union`].
pub type Sampler<V> = Rc<dyn Fn(&mut TestRng) -> V>;

/// A weighted union of strategies over a common value type — the engine
/// behind [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    arms: Vec<(u32, Sampler<V>)>,
    total: u64,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<V> Union<V> {
    /// Builds a union from `(weight, sampler)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Sampler<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

/// Erases a strategy into a [`Union`] arm (used by `prop_oneof!`).
pub fn arm<S>(weight: u32, strategy: S) -> (u32, Sampler<S::Value>)
where
    S: Strategy + 'static,
{
    (weight, Rc::new(move |rng| strategy.sample(rng)))
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.rng().gen_range(0..self.total);
        for (w, f) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return f(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}
