//! `any::<T>()` strategies for types with a canonical distribution.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniform `bool` strategy.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        use rand::Rng;
        rng.rng().gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = core::ops::RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
