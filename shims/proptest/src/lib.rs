//! Offline stand-in for the crates.io `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API used by this workspace's
//! property tests: the [`Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`strategy::Just`], weighted [`prop_oneof!`],
//! [`collection::vec`], [`arbitrary::any`], the [`proptest!`] macro with
//! `#![proptest_config(...)]`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its inputs (via `Debug` of
//!   the failure message) but is not minimized;
//! * **deterministic seeding** — case `i` of test `t` is seeded from
//!   `hash(t, i)`, so failures reproduce exactly across runs and platforms;
//! * strategies sample directly instead of building value trees.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced re-exports (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..100, flag in any::<bool>()) {
///         prop_assert!(x < 100 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                    let __case_input = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                        $(&$arg),+
                    );
                    let __result: $crate::test_runner::TestCaseResult =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    (__result, __case_input)
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Builds a [`strategy::Union`] over several strategies producing the same
/// value type, optionally weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::arm($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Asserts a condition inside a `proptest!` body; on failure the current
/// case returns an error (instead of panicking immediately) so the runner
/// can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*))
            );
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Asserts two values are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
