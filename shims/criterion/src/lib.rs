//! Offline stand-in for the crates.io `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple mean-of-samples wall-clock
//! measurement instead of criterion's statistical machinery. Results print
//! as `group/name  time: [mean of N samples]` lines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _parent: self,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// A named benchmark identifier (`BenchmarkId::from_parameter(n)`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id rendered from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Measures one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&self.name, &id.id);
        self
    }

    /// Measures one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    /// Ends the group (printing happens per-benchmark already).
    pub fn finish(self) {}
}

/// Hands the measured closure to the timing loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `sample_size` measured calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}  (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{group}/{id}  time: [{min:?} {mean:?} {max:?}]  ({} samples)",
            self.samples.len()
        );
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
