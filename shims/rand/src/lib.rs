//! Offline stand-in for the crates.io `rand` crate (0.8 API subset).
//!
//! This workspace builds in environments with no registry access, so the
//! pieces of `rand` it actually uses are reimplemented here behind the same
//! paths: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — *not* the
//! ChaCha12 core of the real `StdRng`, so streams differ from upstream
//! `rand`, but every consumer in this workspace only relies on seeded
//! determinism, which this crate provides: the same seed always yields the
//! same stream, on every platform.

#![forbid(unsafe_code)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset: only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types [`Rng::gen_range`] can draw uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range-sampling support for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        // A half-open integer range always has a largest member, but `T`
        // only exposes an inclusive primitive; find `end - 1` by sampling
        // on [start, end) via the i128 widening in `sample_inclusive`
        // after excluding `end` arithmetically: delegate with hi = end and
        // reject the (single) overflow value.
        loop {
            let v = T::sample_inclusive(rng, self.start, self.end);
            if v < self.end {
                return v;
            }
        }
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range` (half-open or inclusive integer ranges).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        // 53 high bits -> uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state,
            // as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// In-place slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Uniformly permutes the slice.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-40i64..0);
            assert!((-40..0).contains(&v));
            let w = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..64).all(|_| !rng.gen_bool(0.0)));
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
        // p = 0.5 produces both outcomes over a reasonable sample.
        let hits = (0..256).filter(|_| rng.gen_bool(0.5)).count();
        assert!(hits > 64 && hits < 192, "hits = {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 32-element shuffle virtually never fixes all");
    }
}
