//! Path-oriented timing analysis baseline.
//!
//! The paper's introduction contrasts waveform narrowing with *path
//! oriented timing verifiers*, which "suffer from poor performance as they
//! may have to enumerate a very large number of paths". This module
//! implements that baseline faithfully: longest-first path enumeration
//! (best-first search with the topological arrival as an admissible bound)
//! plus a per-path static-sensitization test, so the benchmark harness can
//! quantify the path blow-up that the narrowing method avoids.

use ltt_netlist::{Circuit, GateId, NetId};
use std::collections::BinaryHeap;

/// A structural path from a primary input to the target output, listed as
/// the sequence of nets it traverses (input first).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CircuitPath {
    /// Nets on the path, primary input first, target output last.
    pub nets: Vec<NetId>,
    /// The path length (sum of traversed gate `d_max`).
    pub length: i64,
}

#[derive(PartialEq, Eq)]
struct Partial {
    potential: i64,
    suffix_len: i64,
    /// Suffix of the path, target-first (reversed at yield time).
    suffix: Vec<NetId>,
}

impl Ord for Partial {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.potential.cmp(&other.potential)
    }
}

impl PartialOrd for Partial {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Enumerates paths ending at `output` in non-increasing length order.
///
/// Uses best-first search: a partial (suffix) path is ranked by
/// `arrival(head) + suffix length`, which is the longest it can possibly
/// become, so complete paths pop in exact longest-first order.
///
/// # Examples
///
/// ```
/// use ltt_netlist::generators::figure1;
/// use ltt_sta::PathEnumerator;
///
/// let c = figure1(10);
/// let mut paths = PathEnumerator::new(&c, c.outputs()[0]);
/// let longest = paths.next().expect("some path exists");
/// assert_eq!(longest.length, 70);
/// let second = paths.next().expect("more paths");
/// assert!(second.length <= longest.length);
/// ```
pub struct PathEnumerator<'a> {
    circuit: &'a Circuit,
    arrival: Vec<i64>,
    heap: BinaryHeap<Partial>,
    yielded: usize,
}

impl<'a> PathEnumerator<'a> {
    /// Starts an enumeration of the paths ending at `output`.
    pub fn new(circuit: &'a Circuit, output: NetId) -> Self {
        let arrival = circuit.arrival_times();
        let mut heap = BinaryHeap::new();
        heap.push(Partial {
            potential: arrival[output.index()],
            suffix_len: 0,
            suffix: vec![output],
        });
        PathEnumerator {
            circuit,
            arrival,
            heap,
            yielded: 0,
        }
    }

    /// Number of complete paths yielded so far.
    pub fn yielded(&self) -> usize {
        self.yielded
    }
}

impl Iterator for PathEnumerator<'_> {
    type Item = CircuitPath;

    fn next(&mut self) -> Option<CircuitPath> {
        while let Some(partial) = self.heap.pop() {
            let head = *partial.suffix.last().expect("suffix non-empty");
            match self.circuit.net(head).driver() {
                None => {
                    // Reached a primary input: the suffix is a full path.
                    self.yielded += 1;
                    let mut nets = partial.suffix;
                    nets.reverse();
                    return Some(CircuitPath {
                        nets,
                        length: partial.suffix_len,
                    });
                }
                Some(gid) => {
                    let gate = self.circuit.gate(gid);
                    let step = i64::from(gate.dmax());
                    for &inp in gate.inputs() {
                        let mut suffix = partial.suffix.clone();
                        suffix.push(inp);
                        self.heap.push(Partial {
                            potential: self.arrival[inp.index()] + partial.suffix_len + step,
                            suffix_len: partial.suffix_len + step,
                            suffix,
                        });
                    }
                }
            }
        }
        None
    }
}

/// The gates traversed by a path, in input→output order.
pub fn path_gates(circuit: &Circuit, path: &CircuitPath) -> Vec<GateId> {
    path.nets[1..]
        .iter()
        .map(|n| circuit.net(*n).driver().expect("interior nets are driven"))
        .collect()
}

/// Whether a vector *statically sensitizes* the path: every side input of
/// every gate on the path carries a non-controlling final value (gates
/// without a controlling value, XOR-family and unary, are always
/// transparent).
pub fn vector_sensitizes(circuit: &Circuit, path: &CircuitPath, vector: &[bool]) -> bool {
    let values = circuit.evaluate_all(vector);
    for (on_path_in, gid) in path.nets.iter().zip(path_gates(circuit, path)) {
        let gate = circuit.gate(gid);
        if let Some(ctrl) = gate.kind().controlling_value() {
            for &inp in gate.inputs() {
                if inp != *on_path_in && values[inp.index()] == ctrl {
                    return false;
                }
            }
        }
    }
    true
}

/// Result of the path-enumeration analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathAnalysis {
    /// Length of the longest statically sensitizable path, if one was found
    /// within the enumeration budget.
    pub delay_estimate: Option<i64>,
    /// A sensitizing vector for that path.
    pub witness: Option<Vec<bool>>,
    /// Number of paths enumerated before succeeding or giving up — the
    /// "path blow-up" cost metric.
    pub paths_examined: usize,
    /// Whether the enumeration budget was exhausted.
    pub budget_exhausted: bool,
}

/// Longest-first path analysis: enumerate paths to `output` and return the
/// length of the first statically sensitizable one, trying at most
/// `max_paths` paths and (for sensitization) enumerating cone-input
/// assignments up to `max_cone_inputs` wide.
///
/// Note: static sensitization is neither sound nor complete for
/// floating-mode delay — it can both over- and under-estimate (the classic
/// criticism the false-path literature levels at naive path analysis); the
/// benchmark harness measures this divergence against the exact oracle.
pub fn path_analysis(
    circuit: &Circuit,
    output: NetId,
    max_paths: usize,
    max_cone_inputs: usize,
) -> PathAnalysis {
    let cone = circuit.fanin_cone(output);
    let cone_inputs: Vec<usize> = circuit
        .inputs()
        .iter()
        .enumerate()
        .filter(|(_, n)| cone[n.index()])
        .map(|(i, _)| i)
        .collect();
    let mut examined = 0usize;
    if cone_inputs.len() <= max_cone_inputs && cone_inputs.len() < 63 {
        for path in PathEnumerator::new(circuit, output).take(max_paths) {
            examined += 1;
            let mut vector = vec![false; circuit.inputs().len()];
            for assignment in 0u64..(1u64 << cone_inputs.len()) {
                for (bit, &slot) in cone_inputs.iter().enumerate() {
                    vector[slot] = (assignment >> bit) & 1 == 1;
                }
                if vector_sensitizes(circuit, &path, &vector) {
                    return PathAnalysis {
                        delay_estimate: Some(path.length),
                        witness: Some(vector),
                        paths_examined: examined,
                        budget_exhausted: false,
                    };
                }
            }
        }
    }
    PathAnalysis {
        delay_estimate: None,
        witness: None,
        paths_examined: examined,
        budget_exhausted: true,
    }
}

/// Counts the input→`output` paths of length at least `delta`, by dynamic
/// programming over per-net length histograms (exact, saturating at
/// `u128::MAX`; no enumeration, so it scales to exponentially many paths).
///
/// This is the "how many paths would a path-oriented verifier have to
/// refute" metric of the blow-up experiment.
///
/// # Examples
///
/// ```
/// use ltt_netlist::generators::figure1;
/// use ltt_sta::count_paths_at_least;
///
/// let c = figure1(10);
/// // Two paths of length 70 (one per input of the first gate), both false.
/// assert_eq!(count_paths_at_least(&c, c.outputs()[0], 61), 2);
/// ```
pub fn count_paths_at_least(circuit: &Circuit, output: NetId, delta: i64) -> u128 {
    use std::collections::HashMap;
    // counts[net] = map: path length -> number of input→net paths.
    let mut counts: Vec<HashMap<i64, u128>> = vec![HashMap::new(); circuit.num_nets()];
    for &i in circuit.inputs() {
        counts[i.index()].insert(0, 1);
    }
    for &gid in circuit.topo_gates() {
        let gate = circuit.gate(gid);
        let d = i64::from(gate.dmax());
        let mut acc: HashMap<i64, u128> = HashMap::new();
        for &inp in gate.inputs() {
            for (&len, &n) in &counts[inp.index()] {
                let slot = acc.entry(len + d).or_insert(0);
                *slot = slot.saturating_add(n);
            }
        }
        counts[gate.output().index()] = acc;
    }
    counts[output.index()]
        .iter()
        .filter(|(&len, _)| len >= delta)
        .fold(0u128, |a, (_, &n)| a.saturating_add(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltt_netlist::generators::{cascade, figure1};
    use ltt_netlist::GateKind;

    #[test]
    fn paths_come_out_longest_first() {
        let c = figure1(10);
        let lengths: Vec<i64> = PathEnumerator::new(&c, c.outputs()[0])
            .map(|p| p.length)
            .collect();
        assert!(!lengths.is_empty());
        for w in lengths.windows(2) {
            assert!(w[0] >= w[1], "{lengths:?}");
        }
        assert_eq!(lengths[0], 70);
    }

    #[test]
    fn figure1_path_count() {
        let c = figure1(10);
        let n = PathEnumerator::new(&c, c.outputs()[0]).count();
        // Count input→s paths by hand: to s via n7 and via n5.
        // via n5: n4-cone paths × {e6}: n4 has paths e5 + n3(e4 + n2(e3 + n1(e1,e2)))
        // n1: 2 (e1, e2); n2: 3 (n1’s 2 + e3); n3: 4; n4: 5; n5: 6; n7 arm:
        // n6: 5 + e3 = 6; n7: 7; total s = 6 + 7 = 13.
        assert_eq!(n, 13);
    }

    #[test]
    fn cascade_longest_path_sensitizable_immediately() {
        let c = cascade(GateKind::And, 4, 10);
        let r = path_analysis(&c, c.outputs()[0], 100, 20);
        assert_eq!(r.delay_estimate, Some(40));
        assert_eq!(r.paths_examined, 1);
        assert!(!r.budget_exhausted);
    }

    #[test]
    fn figure1_longest_path_not_statically_sensitizable() {
        let c = figure1(10);
        let r = path_analysis(&c, c.outputs()[0], 100, 20);
        // The 70-path is false; the first sensitizable path is shorter.
        assert!(r.paths_examined > 1);
        let est = r.delay_estimate.unwrap();
        assert!(est < 70, "estimate {est}");
    }

    #[test]
    fn budget_exhaustion_reported() {
        let c = figure1(10);
        let r = path_analysis(&c, c.outputs()[0], 0, 20);
        assert!(r.budget_exhausted);
        assert_eq!(r.delay_estimate, None);
    }

    #[test]
    fn sensitization_checks_side_inputs() {
        let c = cascade(GateKind::And, 2, 10);
        // Path e0 → n1 → n2; side inputs e1, e2 must be 1.
        let path = PathEnumerator::new(&c, c.outputs()[0]).next().unwrap();
        assert!(vector_sensitizes(&c, &path, &[true, true, true]));
        assert!(!vector_sensitizes(&c, &path, &[true, false, true]));
    }
}
