//! Exact floating-mode delay simulation.
//!
//! *Floating mode* (§2 of the paper): a single input vector is applied at
//! time 0 while the initial state of every net is unknown. A net's value is
//! only guaranteed stable once the gate driving it is forced by stable
//! inputs; the classical stabilization rule (Devadas–Keutzer–Malik) is
//!
//! * if some input settles to the gate's controlling value `c`, the output
//!   is stable `d` after the *earliest* such input;
//! * otherwise the output is stable `d` after the *latest* input.
//!
//! The floating-mode delay of a vector is the stabilization time of the
//! output; the floating-mode delay of the circuit is the maximum over all
//! vectors. For cones of bounded input count this module computes it
//! exactly by enumeration — the ground-truth oracle used to validate the
//! waveform-narrowing verifier and to certify the test vectors found by
//! case analysis.

use ltt_netlist::{Circuit, NetId};
use ltt_waveform::Level;

/// Per-net result of a floating-mode simulation: the settled value and the
/// time after which it is guaranteed stable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SettleInfo {
    /// Final (settled) value of the net.
    pub value: bool,
    /// Time at or after which the net is guaranteed stable.
    pub time: i64,
}

/// Simulates one vector in floating mode and returns the settled value and
/// stabilization bound of every net (indexed by [`NetId::index`]).
///
/// Primary inputs settle to their vector value at time 0.
///
/// # Panics
///
/// Panics if `vector.len()` differs from the number of primary inputs.
///
/// # Examples
///
/// ```
/// use ltt_netlist::{CircuitBuilder, DelayInterval, GateKind};
/// use ltt_sta::floating_settle;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::new("and");
/// let x = b.input("x");
/// let y = b.input("y");
/// let z = b.gate("z", GateKind::And, &[x, y], DelayInterval::fixed(10));
/// b.mark_output(z);
/// let c = b.build()?;
/// // A controlling 0 stabilizes the AND immediately after its own settle.
/// let info = floating_settle(&c, &[false, true]);
/// assert_eq!(info[z.index()].time, 10);
/// // All-non-controlling waits for the latest input.
/// let info = floating_settle(&c, &[true, true]);
/// assert_eq!(info[z.index()].time, 10);
/// # Ok(())
/// # }
/// ```
pub fn floating_settle(circuit: &Circuit, vector: &[bool]) -> Vec<SettleInfo> {
    assert_eq!(
        vector.len(),
        circuit.inputs().len(),
        "input vector length mismatch"
    );
    let mut info = vec![
        SettleInfo {
            value: false,
            time: 0
        };
        circuit.num_nets()
    ];
    for (&net, &v) in circuit.inputs().iter().zip(vector) {
        info[net.index()] = SettleInfo { value: v, time: 0 };
    }
    for &gid in circuit.topo_gates() {
        let gate = circuit.gate(gid);
        let d = i64::from(gate.dmax());
        let vals: Vec<bool> = gate
            .inputs()
            .iter()
            .map(|n| info[n.index()].value)
            .collect();
        let value = gate.kind().eval(&vals);
        let time = if gate.kind() == ltt_netlist::GateKind::Mux {
            // The output is forced once the select and the selected data
            // input are stable; if both data inputs settle to the same
            // value, their stability alone also forces it.
            let t = |k: usize| info[gate.inputs()[k].index()].time;
            let selected = if vals[0] { t(2) } else { t(1) };
            let via_select = t(0).max(selected);
            let via_data = if vals[1] == vals[2] {
                t(1).max(t(2))
            } else {
                i64::MAX - d
            };
            via_select.min(via_data) + d
        } else {
            match gate.kind().controlling_value() {
                Some(c) if vals.contains(&c) => {
                    // Earliest controlling input forces the output.
                    gate.inputs()
                        .iter()
                        .zip(&vals)
                        .filter(|&(_, &v)| v == c)
                        .map(|(n, _)| info[n.index()].time)
                        .min()
                        .expect("some controlling input exists")
                        + d
                }
                _ => {
                    gate.inputs()
                        .iter()
                        .map(|n| info[n.index()].time)
                        .max()
                        .expect("gate has inputs")
                        + d
                }
            }
        };
        info[gate.output().index()] = SettleInfo { value, time };
    }
    info
}

/// The floating-mode delay of `vector` at the given output net.
pub fn vector_delay(circuit: &Circuit, vector: &[bool], output: NetId) -> i64 {
    floating_settle(circuit, vector)[output.index()].time
}

/// Whether the vector still allows a transition on `output` at or after
/// `delta` — i.e. whether it *violates* the timing check `(ξ, output, δ)`.
///
/// This is the exact certificate check applied to every test vector the
/// case analysis reports.
pub fn vector_violates(circuit: &Circuit, vector: &[bool], output: NetId, delta: i64) -> bool {
    vector_delay(circuit, vector, output) >= delta
}

/// The result of an exact floating-delay computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FloatingDelay {
    /// The exact floating-mode delay of the output.
    pub delay: i64,
    /// A vector achieving it (over the *full* input list of the circuit;
    /// inputs outside the output's cone are set to `false`).
    pub witness: Vec<bool>,
}

/// Maximum cone-input count accepted by [`exhaustive_floating_delay`].
pub const EXHAUSTIVE_INPUT_LIMIT: usize = 26;

/// Computes the exact floating-mode delay of `output` by enumerating all
/// assignments of the inputs in its fan-in cone (inputs outside the cone
/// cannot affect it and are fixed at 0).
///
/// Returns `None` if the cone has more than [`EXHAUSTIVE_INPUT_LIMIT`]
/// inputs.
///
/// # Examples
///
/// ```
/// use ltt_netlist::generators::figure1;
/// use ltt_sta::exhaustive_floating_delay;
///
/// let c = figure1(10);
/// let s = c.outputs()[0];
/// let exact = exhaustive_floating_delay(&c, s).expect("7 inputs is small");
/// assert_eq!(exact.delay, 60); // the paper's value: top = 70 is false
/// ```
pub fn exhaustive_floating_delay(circuit: &Circuit, output: NetId) -> Option<FloatingDelay> {
    let cone = circuit.fanin_cone(output);
    let cone_inputs: Vec<usize> = circuit
        .inputs()
        .iter()
        .enumerate()
        .filter(|(_, n)| cone[n.index()])
        .map(|(i, _)| i)
        .collect();
    if cone_inputs.len() > EXHAUSTIVE_INPUT_LIMIT {
        return None;
    }
    let mut best = FloatingDelay {
        delay: i64::MIN,
        witness: vec![false; circuit.inputs().len()],
    };
    let mut vector = vec![false; circuit.inputs().len()];
    for assignment in 0u64..(1u64 << cone_inputs.len()) {
        for (bit, &slot) in cone_inputs.iter().enumerate() {
            vector[slot] = (assignment >> bit) & 1 == 1;
        }
        let t = vector_delay(circuit, &vector, output);
        if t > best.delay {
            best.delay = t;
            best.witness = vector.clone();
        }
    }
    Some(best)
}

/// The exact floating-mode delay of the whole circuit (maximum over all
/// outputs), or `None` if any output cone is too wide for enumeration.
pub fn exhaustive_circuit_delay(circuit: &Circuit) -> Option<FloatingDelay> {
    let mut best: Option<FloatingDelay> = None;
    for &o in circuit.outputs() {
        let fd = exhaustive_floating_delay(circuit, o)?;
        if best.as_ref().is_none_or(|b| fd.delay > b.delay) {
            best = Some(fd);
        }
    }
    best
}

/// Monte-Carlo lower bound on the floating-mode delay of `output`:
/// the best delay over `samples` random vectors. Sound as a lower bound
/// only (the true delay may be higher).
pub fn sampled_floating_delay(
    circuit: &Circuit,
    output: NetId,
    samples: usize,
    seed: u64,
) -> FloatingDelay {
    sampled_floating_delay_until(circuit, output, samples, seed, None)
}

/// [`sampled_floating_delay`] with an optional wall-clock deadline: once
/// `deadline` passes, sampling stops early and the best vector found so
/// far is returned. At least one vector is always simulated, so the result
/// is a valid (if weak) lower bound even with an expired deadline. The
/// clock is read every 32 samples; with the same seed and an un-hit
/// deadline the result is identical to the uncapped call.
pub fn sampled_floating_delay_until(
    circuit: &Circuit,
    output: NetId,
    samples: usize,
    seed: u64,
    deadline: Option<std::time::Instant>,
) -> FloatingDelay {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = FloatingDelay {
        delay: i64::MIN,
        witness: vec![false; circuit.inputs().len()],
    };
    let mut vector = vec![false; circuit.inputs().len()];
    for i in 0..samples.max(1) {
        if i > 0 && i % 32 == 0 {
            if let Some(d) = deadline {
                if std::time::Instant::now() >= d {
                    break;
                }
            }
        }
        for v in vector.iter_mut() {
            *v = rng.gen_bool(0.5);
        }
        let t = vector_delay(circuit, &vector, output);
        if t > best.delay {
            best.delay = t;
            best.witness = vector.clone();
        }
    }
    best
}

/// Converts a witness vector into per-input `(name, Level)` pairs for
/// reporting.
pub fn describe_vector(circuit: &Circuit, vector: &[bool]) -> Vec<(String, Level)> {
    circuit
        .inputs()
        .iter()
        .zip(vector)
        .map(|(&n, &v)| (circuit.net(n).name().to_string(), Level::from_bool(v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltt_netlist::generators::{
        carry_skip_adder, cascade, false_path_chain, figure1, forked_false_path_chain, parity_tree,
        ripple_carry_adder, stem_conflict_circuit,
    };
    use ltt_netlist::GateKind;

    #[test]
    fn figure1_floating_delay_is_60() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let exact = exhaustive_floating_delay(&c, s).unwrap();
        assert_eq!(exact.delay, 60);
        assert_eq!(c.topological_delay(), 70);
        // The witness really achieves 60.
        assert_eq!(vector_delay(&c, &exact.witness, s), 60);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; covered by `cargo test --release`"
    )]
    fn false_path_chain_delay_formula() {
        for (p, q) in [(3, 2), (4, 2), (5, 3), (6, 4), (4, 1)] {
            let c = false_path_chain(p, q, 10);
            let s = c.outputs()[0];
            let exact = exhaustive_floating_delay(&c, s).unwrap();
            assert_eq!(
                exact.delay,
                10 * (p as i64 + 2),
                "false_path_chain({p}, {q})"
            );
            assert_eq!(c.topological_delay(), 10 * (p as i64 + q as i64 + 1));
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; covered by `cargo test --release`"
    )]
    fn forked_chain_delay_formula() {
        for (p, q) in [(4usize, 3usize), (5, 3), (6, 4)] {
            let c = forked_false_path_chain(p, q, 10);
            let s = c.outputs()[0];
            let exact = exhaustive_floating_delay(&c, s).unwrap();
            assert_eq!(exact.delay, 10 * (p as i64 + 2), "forked({p}, {q})");
            assert_eq!(c.topological_delay(), 10 * (p as i64 + q as i64 + 1));
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; covered by `cargo test --release`"
    )]
    fn stem_conflict_delay_formula() {
        for depth in [6usize, 7, 8, 9] {
            let c = stem_conflict_circuit(depth, 10);
            let s = c.outputs()[0];
            let exact = exhaustive_floating_delay(&c, s).unwrap();
            assert_eq!(exact.delay, 10 * (depth as i64 - 1), "depth {depth}");
            assert_eq!(c.topological_delay(), 10 * depth as i64);
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; covered by `cargo test --release`"
    )]
    fn mux_chain_longest_path_is_false() {
        use ltt_netlist::generators::shared_select_mux_chain;
        // With two stages every MUX still waits for its selected input, so
        // the conflict creates no slack yet; from three stages on, the
        // chain's alternating select requirements cap the true delay at
        // two MUX levels.
        let c = shared_select_mux_chain(2, 10);
        let exact = exhaustive_floating_delay(&c, c.outputs()[0]).unwrap();
        assert_eq!(exact.delay, 20);
        for stages in [3usize, 4, 6] {
            let c = shared_select_mux_chain(stages, 10);
            let s = c.outputs()[0];
            let exact = exhaustive_floating_delay(&c, s).unwrap();
            assert_eq!(c.topological_delay(), 10 * stages as i64);
            assert_eq!(
                exact.delay, 20,
                "stages {stages}: the chain is capped at two MUX levels"
            );
        }
        // A single stage has no conflict: exact = top.
        let c = shared_select_mux_chain(1, 10);
        let exact = exhaustive_floating_delay(&c, c.outputs()[0]).unwrap();
        assert_eq!(exact.delay, 10);
    }

    #[test]
    fn cascade_delay_equals_topological() {
        let c = cascade(GateKind::And, 6, 10);
        let s = c.outputs()[0];
        let exact = exhaustive_floating_delay(&c, s).unwrap();
        assert_eq!(exact.delay, c.topological_delay());
    }

    #[test]
    fn parity_tree_delay_equals_topological() {
        let c = parity_tree(8, 10);
        let s = c.outputs()[0];
        let exact = exhaustive_floating_delay(&c, s).unwrap();
        assert_eq!(exact.delay, c.topological_delay());
    }

    #[test]
    fn ripple_carry_longest_path_is_true() {
        let c = ripple_carry_adder(4, 10);
        let exact = exhaustive_circuit_delay(&c).unwrap();
        assert_eq!(exact.delay, c.topological_delay());
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; covered by `cargo test --release`"
    )]
    fn carry_skip_longest_path_is_false() {
        let c = carry_skip_adder(8, 4, 10);
        let exact = exhaustive_circuit_delay(&c).unwrap();
        assert!(
            exact.delay < c.topological_delay(),
            "exact {} !< top {}",
            exact.delay,
            c.topological_delay()
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; covered by `cargo test --release`"
    )]
    fn small_standin_matches_spec_delays() {
        use ltt_netlist::suite::{standin, SpineKind, StandinSpec};
        for (levels, exact, kind) in [
            (8usize, 6usize, SpineKind::Chain),
            (9, 9, SpineKind::Chain),
            (10, 7, SpineKind::Forked),
            (9, 8, SpineKind::StemMux),
        ] {
            let spec = StandinSpec {
                name: "mini",
                levels,
                exact_levels: exact,
                kind,
                gates: 30,
                inputs: 6,
                outputs: 3,
                seed: 99,
            };
            let c = standin(&spec, 10);
            assert_eq!(c.topological_delay(), 10 * levels as i64);
            let fd = exhaustive_circuit_delay(&c);
            if let Some(fd) = fd {
                assert_eq!(
                    fd.delay,
                    10 * exact as i64,
                    "standin levels={levels} exact={exact}"
                );
            }
        }
    }

    #[test]
    fn sampled_delay_is_a_lower_bound() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let sampled = sampled_floating_delay(&c, s, 200, 42);
        assert!(sampled.delay <= 60);
        assert!(sampled.delay >= 10); // something transitions
    }

    #[test]
    fn vector_violates_matches_delay() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let exact = exhaustive_floating_delay(&c, s).unwrap();
        assert!(vector_violates(&c, &exact.witness, s, 60));
        assert!(!vector_violates(&c, &exact.witness, s, 61));
    }

    #[test]
    fn describe_vector_names_inputs() {
        let c = figure1(10);
        let desc = describe_vector(&c, &[true, false, true, false, true, false, true]);
        assert_eq!(desc.len(), 7);
        assert_eq!(desc[0].0, "e1");
        assert_eq!(desc[0].1, Level::One);
        assert_eq!(desc[1].1, Level::Zero);
    }

    #[test]
    fn not_gate_propagates_settle_time() {
        use ltt_netlist::{CircuitBuilder, DelayInterval};
        let mut b = CircuitBuilder::new("n");
        let a = b.input("a");
        let x = b.gate("x", GateKind::Not, &[a], DelayInterval::fixed(7));
        let y = b.gate("y", GateKind::Not, &[x], DelayInterval::fixed(5));
        b.mark_output(y);
        let c = b.build().unwrap();
        let info = floating_settle(&c, &[true]);
        assert_eq!(
            info[x.index()],
            SettleInfo {
                value: false,
                time: 7
            }
        );
        assert_eq!(
            info[y.index()],
            SettleInfo {
                value: true,
                time: 12
            }
        );
    }

    #[test]
    fn xor_waits_for_latest_input() {
        use ltt_netlist::{CircuitBuilder, DelayInterval};
        let mut b = CircuitBuilder::new("x");
        let a = b.input("a");
        let slow = b.gate("slow", GateKind::Not, &[a], DelayInterval::fixed(100));
        let e = b.input("e");
        let y = b.gate("y", GateKind::Xor, &[slow, e], DelayInterval::fixed(10));
        b.mark_output(y);
        let c = b.build().unwrap();
        for v in [[false, false], [true, true], [true, false], [false, true]] {
            let info = floating_settle(&c, &v);
            assert_eq!(info[y.index()].time, 110);
        }
    }
}
