//! Baseline static timing analyses and exact floating-mode oracles.
//!
//! Three baselines accompany the waveform-narrowing verifier:
//!
//! * **Topological STA** — the conservative bound the paper's introduction
//!   calls "too conservative": every structural path counts
//!   ([`topological_check`]);
//! * **Path enumeration** — longest-first path search with per-path static
//!   sensitization ([`PathEnumerator`], [`path_analysis`]), the baseline
//!   whose path blow-up motivates the constraint-based method;
//! * **Exact floating-mode simulation** — the per-vector stabilization rule
//!   and exhaustive/sampled circuit delay ([`floating_settle`],
//!   [`exhaustive_floating_delay`], [`sampled_floating_delay`]), the
//!   ground truth used throughout the test suite and to certify test
//!   vectors.
//!
//! # Example
//!
//! ```
//! use ltt_netlist::generators::figure1;
//! use ltt_sta::{exhaustive_floating_delay, topological_check};
//!
//! let c = figure1(10);
//! let s = c.outputs()[0];
//! // Topological analysis says a 70-delay is possible…
//! assert!(topological_check(&c, s, 61));
//! // …but the exact floating-mode delay is only 60.
//! let exact = exhaustive_floating_delay(&c, s).expect("small cone");
//! assert_eq!(exact.delay, 60);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod floating;
mod paths;
mod simulate;
mod slack;

pub use floating::{
    describe_vector, exhaustive_circuit_delay, exhaustive_floating_delay, floating_settle,
    sampled_floating_delay, sampled_floating_delay_until, vector_delay, vector_violates,
    FloatingDelay, SettleInfo, EXHAUSTIVE_INPUT_LIMIT,
};
pub use paths::{
    count_paths_at_least, path_analysis, path_gates, vector_sensitizes, CircuitPath, PathAnalysis,
    PathEnumerator,
};
pub use simulate::{
    exhaustive_two_vector_delay, simulate, transition_counts, two_vector_delay, write_vcd,
    WaveformTrace,
};
pub use slack::SlackReport;

use ltt_netlist::{Circuit, NetId};

/// The conservative topological check: "could `output` transition at or
/// after `delta` if every path were sensitizable?" — true iff the
/// topological arrival of `output` is at least `delta`.
///
/// # Examples
///
/// ```
/// use ltt_netlist::generators::figure1;
/// use ltt_sta::topological_check;
///
/// let c = figure1(10);
/// let s = c.outputs()[0];
/// assert!(topological_check(&c, s, 70));
/// assert!(!topological_check(&c, s, 71));
/// ```
pub fn topological_check(circuit: &Circuit, output: NetId, delta: i64) -> bool {
    circuit.arrival_times()[output.index()] >= delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltt_netlist::generators::cascade;
    use ltt_netlist::GateKind;

    #[test]
    fn topological_check_uses_per_output_arrival() {
        let c = cascade(GateKind::Or, 3, 10);
        let s = c.outputs()[0];
        assert!(topological_check(&c, s, 30));
        assert!(!topological_check(&c, s, 31));
        // An input "arrives" at 0: only δ ≤ 0 is possible.
        let input = c.inputs()[0];
        assert!(topological_check(&c, input, 0));
        assert!(!topological_check(&c, input, 1));
    }
}
