//! Required-time and slack analysis — the reporting layer a timing
//! verifier presents to designers (which nets are critical for a given
//! deadline, and by how much).
//!
//! Purely topological (every path counts): the companion of
//! [`topological_check`](crate::topological_check). The waveform-narrowing
//! verifier then refines exactly the nets this report flags as critical.

use ltt_netlist::{Circuit, NetId};

/// Per-net arrival/required/slack for one deadline.
#[derive(Clone, Debug)]
pub struct SlackReport {
    /// Topological arrival time per net (longest input→net path).
    pub arrival: Vec<i64>,
    /// Latest allowed settle time per net (`None` if the net reaches no
    /// primary output).
    pub required: Vec<Option<i64>>,
    /// `required − arrival` per net (`None` where `required` is).
    pub slack: Vec<Option<i64>>,
}

impl SlackReport {
    /// Computes the report for a common `deadline` at every primary output.
    ///
    /// # Examples
    ///
    /// ```
    /// use ltt_netlist::generators::cascade;
    /// use ltt_netlist::GateKind;
    /// use ltt_sta::SlackReport;
    ///
    /// let c = cascade(GateKind::And, 3, 10);
    /// let report = SlackReport::compute(&c, 40);
    /// let out = c.outputs()[0];
    /// assert_eq!(report.slack[out.index()], Some(10));
    /// assert!(!report.is_violated());
    /// ```
    pub fn compute(circuit: &Circuit, deadline: i64) -> SlackReport {
        let arrival = circuit.arrival_times();
        let mut required: Vec<Option<i64>> = vec![None; circuit.num_nets()];
        for &o in circuit.outputs() {
            required[o.index()] = Some(deadline);
        }
        for &gid in circuit.topo_gates().iter().rev() {
            let gate = circuit.gate(gid);
            if let Some(r) = required[gate.output().index()] {
                let through = r - i64::from(gate.dmax());
                for &x in gate.inputs() {
                    let slot = &mut required[x.index()];
                    *slot = Some(slot.map_or(through, |cur| cur.min(through)));
                }
            }
        }
        let slack = required
            .iter()
            .zip(&arrival)
            .map(|(r, &a)| r.map(|r| r - a))
            .collect();
        SlackReport {
            arrival,
            required,
            slack,
        }
    }

    /// Whether any net has negative slack (the deadline is topologically
    /// unreachable — possibly pessimistically, which is exactly where the
    /// false-path verifier earns its keep).
    pub fn is_violated(&self) -> bool {
        self.slack.iter().flatten().any(|&s| s < 0)
    }

    /// Worst slack over all covered nets (`None` if nothing reaches an
    /// output).
    pub fn worst_slack(&self) -> Option<i64> {
        self.slack.iter().flatten().copied().min()
    }

    /// Nets at the worst slack — the topological critical path(s).
    pub fn critical_nets(&self) -> Vec<NetId> {
        match self.worst_slack() {
            None => Vec::new(),
            Some(w) => self
                .slack
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == Some(w))
                .map(|(i, _)| NetId::from_index(i))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltt_netlist::generators::{cascade, figure1};
    use ltt_netlist::GateKind;

    #[test]
    fn cascade_slack_decreases_down_the_spine() {
        let c = cascade(GateKind::And, 3, 10);
        let r = SlackReport::compute(&c, 30);
        let e0 = c.net_by_name("e0").unwrap();
        let e3 = c.net_by_name("e3").unwrap();
        // The spine is exactly critical at deadline = top.
        assert_eq!(r.slack[e0.index()], Some(0));
        // Late side inputs have plenty of slack.
        assert_eq!(r.slack[e3.index()], Some(20));
        assert_eq!(r.worst_slack(), Some(0));
        assert!(!r.is_violated());
    }

    #[test]
    fn tight_deadline_goes_negative() {
        let c = cascade(GateKind::And, 3, 10);
        let r = SlackReport::compute(&c, 25);
        assert!(r.is_violated());
        assert_eq!(r.worst_slack(), Some(-5));
    }

    #[test]
    fn figure1_critical_path_is_the_false_path() {
        // The topological report flags the (actually false) 70-path as
        // critical at deadline 60 — the pessimism the verifier removes.
        let c = figure1(10);
        let r = SlackReport::compute(&c, 60);
        assert!(r.is_violated());
        let critical = r.critical_nets();
        let names: Vec<&str> = critical.iter().map(|&n| c.net(n).name()).collect();
        for expected in ["n1", "n2", "n3", "n4", "n6", "n7", "s"] {
            assert!(names.contains(&expected), "{expected} missing: {names:?}");
        }
        // n5 (the short branch) is not on the critical path.
        assert!(!names.contains(&"n5"));
    }

    #[test]
    fn dead_logic_has_no_required_time() {
        use ltt_netlist::{CircuitBuilder, DelayInterval};
        let mut b = CircuitBuilder::new("d");
        let a = b.input("a");
        let used = b.gate("used", GateKind::Not, &[a], DelayInterval::fixed(10));
        let dead = b.gate("dead", GateKind::Not, &[a], DelayInterval::fixed(10));
        b.mark_output(used);
        let c = b.build().unwrap();
        let r = SlackReport::compute(&c, 10);
        assert_eq!(r.required[dead.index()], None);
        assert_eq!(r.slack[dead.index()], None);
        assert_eq!(r.slack[used.index()], Some(0));
    }
}
