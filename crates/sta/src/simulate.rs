//! Exact event-driven waveform simulation with transport delays.
//!
//! The constraint system's concrete semantics is the timed Boolean
//! function `s(t) = g(a₁(t−d), …, a_k(t−d))` (§3.2). This module evaluates
//! that semantics exactly: given a full binary waveform per primary input
//! (an initial value plus a sorted event list), it computes the full
//! waveform of every net. Uses:
//!
//! * an independent *whole-waveform* oracle — every simulated tuple is a
//!   solution of the constraint system, so it must lie inside the fixpoint
//!   domains (tested in `tests/waveform_containment.rs`);
//! * two-vector (transition-mode) delay measurement;
//! * witness replay for reported vectors.

use ltt_netlist::{Circuit, NetId};

/// A concrete binary waveform: an initial value and a sorted list of
/// `(time, value-after)` events (no-op events are normalized away).
///
/// # Examples
///
/// ```
/// use ltt_sta::WaveformTrace;
///
/// let w = WaveformTrace::new(false, vec![(0, true), (5, false)]);
/// assert!(!w.value_at(-1));
/// assert!(w.value_at(3));
/// assert!(!w.value_at(100));
/// assert_eq!(w.last_event(), Some(5));
/// assert!(!w.settles_to());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaveformTrace {
    initial: bool,
    events: Vec<(i64, bool)>,
}

impl WaveformTrace {
    /// Builds a trace from an initial value and events; events are sorted
    /// by time and redundant entries (same value as before) are dropped.
    /// For several events at one time the last wins.
    pub fn new(initial: bool, mut events: Vec<(i64, bool)>) -> WaveformTrace {
        events.sort_by_key(|&(t, _)| t);
        let mut norm: Vec<(i64, bool)> = Vec::with_capacity(events.len());
        for (t, v) in events {
            if let Some(last) = norm.last_mut() {
                if last.0 == t {
                    last.1 = v;
                    continue;
                }
            }
            norm.push((t, v));
        }
        // Drop no-ops.
        let mut out = Vec::with_capacity(norm.len());
        let mut cur = initial;
        for (t, v) in norm {
            if v != cur {
                out.push((t, v));
                cur = v;
            }
        }
        WaveformTrace {
            initial,
            events: out,
        }
    }

    /// A constant waveform.
    pub fn constant(value: bool) -> WaveformTrace {
        WaveformTrace {
            initial: value,
            events: Vec::new(),
        }
    }

    /// A floating-mode input trace: pre-time-0 noise events followed by the
    /// vector value from time 0 on.
    pub fn floating(initial: bool, noise: Vec<(i64, bool)>, settled: bool) -> WaveformTrace {
        let mut events: Vec<(i64, bool)> = noise.into_iter().filter(|&(t, _)| t < 0).collect();
        events.push((0, settled));
        WaveformTrace::new(initial, events)
    }

    /// The value at time `t`.
    pub fn value_at(&self, t: i64) -> bool {
        match self.events.iter().rev().find(|&&(et, _)| et <= t) {
            Some(&(_, v)) => v,
            None => self.initial,
        }
    }

    /// The time of the last event, or `None` for a constant waveform.
    pub fn last_event(&self) -> Option<i64> {
        self.events.last().map(|&(t, _)| t)
    }

    /// The settling (final) value.
    pub fn settles_to(&self) -> bool {
        self.events.last().map(|&(_, v)| v).unwrap_or(self.initial)
    }

    /// The event list (sorted, normalized).
    pub fn events(&self) -> &[(i64, bool)] {
        &self.events
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.events.len()
    }
}

/// Simulates the circuit under the given primary-input waveforms (one per
/// input, in declaration order) and returns every net's exact waveform,
/// indexed by [`NetId::index`].
///
/// Gates apply their Boolean function pointwise with a pure transport
/// delay of `d_max` — exactly the timed Boolean function semantics the
/// constraint system abstracts.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the number of primary inputs.
///
/// # Examples
///
/// ```
/// use ltt_netlist::{CircuitBuilder, DelayInterval, GateKind};
/// use ltt_sta::{simulate, WaveformTrace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::new("inv");
/// let a = b.input("a");
/// let y = b.gate("y", GateKind::Not, &[a], DelayInterval::fixed(10));
/// b.mark_output(y);
/// let c = b.build()?;
/// let traces = simulate(&c, &[WaveformTrace::new(false, vec![(0, true)])]);
/// assert_eq!(traces[y.index()].events(), &[(10, false)]);
/// # Ok(())
/// # }
/// ```
pub fn simulate(circuit: &Circuit, inputs: &[WaveformTrace]) -> Vec<WaveformTrace> {
    assert_eq!(
        inputs.len(),
        circuit.inputs().len(),
        "one waveform per primary input"
    );
    let mut traces: Vec<WaveformTrace> = vec![WaveformTrace::constant(false); circuit.num_nets()];
    for (&net, trace) in circuit.inputs().iter().zip(inputs) {
        traces[net.index()] = trace.clone();
    }
    let mut vals = Vec::new();
    for &gid in circuit.topo_gates() {
        let gate = circuit.gate(gid);
        let d = i64::from(gate.dmax());
        // Candidate evaluation times: every input event time.
        let mut times: Vec<i64> = gate
            .inputs()
            .iter()
            .flat_map(|n| traces[n.index()].events().iter().map(|&(t, _)| t))
            .collect();
        times.sort_unstable();
        times.dedup();
        // Initial output value from the inputs' initial values.
        vals.clear();
        vals.extend(
            gate.inputs()
                .iter()
                .map(|n| traces[n.index()].value_at(i64::MIN)),
        );
        let initial = gate.kind().eval(&vals);
        let mut events = Vec::with_capacity(times.len());
        for &t in &times {
            vals.clear();
            vals.extend(gate.inputs().iter().map(|n| traces[n.index()].value_at(t)));
            events.push((t + d, gate.kind().eval(&vals)));
        }
        traces[gate.output().index()] = WaveformTrace::new(initial, events);
    }
    traces
}

/// Measures the two-vector (transition-mode) delay at `output`: inputs
/// hold `v1` since forever and switch to `v2` at time 0; the result is the
/// time of the output's last event (0 if it never changes).
///
/// # Panics
///
/// Panics if the vector lengths differ from the number of inputs.
pub fn two_vector_delay(circuit: &Circuit, v1: &[bool], v2: &[bool], output: NetId) -> i64 {
    assert_eq!(v1.len(), circuit.inputs().len());
    assert_eq!(v2.len(), circuit.inputs().len());
    let inputs: Vec<WaveformTrace> = v1
        .iter()
        .zip(v2)
        .map(|(&a, &b)| WaveformTrace::new(a, vec![(0, b)]))
        .collect();
    let traces = simulate(circuit, &inputs);
    traces[output.index()].last_event().unwrap_or(0).max(0)
}

/// The exact two-vector delay of `output`: the maximum of
/// [`two_vector_delay`] over all vector pairs (exhaustive; cone-limited
/// like the floating oracle). Returns `None` if the cone is too wide.
pub fn exhaustive_two_vector_delay(circuit: &Circuit, output: NetId) -> Option<i64> {
    let cone = circuit.fanin_cone(output);
    let cone_inputs: Vec<usize> = circuit
        .inputs()
        .iter()
        .enumerate()
        .filter(|(_, n)| cone[n.index()])
        .map(|(i, _)| i)
        .collect();
    if cone_inputs.len() > 13 {
        return None; // 4^13 pairs is the practical budget
    }
    let n = circuit.inputs().len();
    let mut best = 0i64;
    let mut v1 = vec![false; n];
    let mut v2 = vec![false; n];
    for a in 0u64..(1 << cone_inputs.len()) {
        for b in 0u64..(1 << cone_inputs.len()) {
            for (bit, &slot) in cone_inputs.iter().enumerate() {
                v1[slot] = (a >> bit) & 1 == 1;
                v2[slot] = (b >> bit) & 1 == 1;
            }
            best = best.max(two_vector_delay(circuit, &v1, &v2, output));
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltt_netlist::generators::{cascade, figure1};
    use ltt_netlist::{CircuitBuilder, DelayInterval, GateKind};

    #[test]
    fn trace_normalization() {
        // Duplicate times: last wins; no-ops dropped.
        let w = WaveformTrace::new(false, vec![(5, true), (5, false), (7, false), (9, true)]);
        assert_eq!(w.events(), &[(9, true)]);
        let w = WaveformTrace::new(true, vec![(3, false), (1, true)]);
        assert_eq!(w.events(), &[(3, false)]);
        assert_eq!(w.num_transitions(), 1);
    }

    #[test]
    fn and_gate_glitch_is_simulated() {
        // a: 1→0 at 5; b: 0→1 at 3. AND shows a pulse 3..5 (delayed by d).
        let mut bld = CircuitBuilder::new("g");
        let a = bld.input("a");
        let b = bld.input("b");
        let y = bld.gate("y", GateKind::And, &[a, b], DelayInterval::fixed(10));
        bld.mark_output(y);
        let c = bld.build().unwrap();
        let traces = simulate(
            &c,
            &[
                WaveformTrace::new(true, vec![(5, false)]),
                WaveformTrace::new(false, vec![(3, true)]),
            ],
        );
        assert_eq!(traces[y.index()].events(), &[(13, true), (15, false)]);
    }

    #[test]
    fn chain_accumulates_transport_delay() {
        let c = cascade(GateKind::And, 3, 10);
        let mut inputs = vec![WaveformTrace::constant(true); c.inputs().len()];
        inputs[0] = WaveformTrace::new(false, vec![(0, true)]);
        let traces = simulate(&c, &inputs);
        let s = c.outputs()[0];
        assert_eq!(traces[s.index()].events(), &[(30, true)]);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; covered by `cargo test --release`"
    )]
    fn figure1_witness_replay() {
        // The certified δ=60 witness produces an event at exactly t = 60
        // under *some* unknown initial state; searching the 2⁷ single-value
        // initial states finds one achieving exactly the floating bound.
        let c = figure1(10);
        let s = c.outputs()[0];
        // e1=e2=1, e3=e4=0, e5=e6=e7=1 (the vector the solver found).
        let vector = [true, true, false, false, true, true, true];
        let mut best = 0i64;
        for init in 0..128u32 {
            let v1: Vec<bool> = (0..7).map(|i| (init >> i) & 1 == 1).collect();
            best = best.max(two_vector_delay(&c, &v1, &vector, s));
        }
        assert_eq!(best, 60);
    }

    #[test]
    fn two_vector_delay_on_cascade() {
        let c = cascade(GateKind::And, 4, 10);
        // All inputs toggling 0→1: output rises after the full chain.
        let v1 = vec![false; c.inputs().len()];
        let v2 = vec![true; c.inputs().len()];
        assert_eq!(two_vector_delay(&c, &v1, &v2, c.outputs()[0]), 40);
        // No change: no events.
        assert_eq!(two_vector_delay(&c, &v2, &v2, c.outputs()[0]), 0);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; covered by `cargo test --release`"
    )]
    fn exhaustive_two_vector_within_floating() {
        // The two-vector delay never exceeds the floating-mode delay
        // (floating mode quantifies over unknown initial states).
        let c = figure1(10);
        let s = c.outputs()[0];
        let tv = exhaustive_two_vector_delay(&c, s).unwrap();
        let fl = crate::exhaustive_floating_delay(&c, s).unwrap().delay;
        assert!(tv <= fl, "two-vector {tv} vs floating {fl}");
        assert_eq!(tv, 60); // for figure1 they coincide
    }
}

/// Renders simulated traces as a VCD (Value Change Dump) document viewable
/// in any waveform viewer. One scalar signal per net, named after the net;
/// the timescale is unitless (`1ns` per circuit time unit). Events before
/// time 0 are emitted at negative-shifted time 0 with the initial value,
/// i.e. the dump starts at the earliest event (or 0).
///
/// # Examples
///
/// ```
/// use ltt_netlist::{CircuitBuilder, DelayInterval, GateKind};
/// use ltt_sta::{simulate, write_vcd, WaveformTrace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::new("inv");
/// let a = b.input("a");
/// let y = b.gate("y", GateKind::Not, &[a], DelayInterval::fixed(10));
/// b.mark_output(y);
/// let c = b.build()?;
/// let traces = simulate(&c, &[WaveformTrace::new(false, vec![(0, true)])]);
/// let vcd = write_vcd(&c, &traces);
/// assert!(vcd.contains("$var wire 1"));
/// assert!(vcd.contains("#10"));
/// # Ok(())
/// # }
/// ```
pub fn write_vcd(circuit: &Circuit, traces: &[WaveformTrace]) -> String {
    assert_eq!(traces.len(), circuit.num_nets(), "one trace per net");
    let mut out = String::new();
    out.push_str("$date ltt-sta $end\n$timescale 1ns $end\n");
    out.push_str(&format!("$scope module {} $end\n", circuit.name()));
    // VCD identifier codes: printable ASCII 33..=126, multi-char as needed.
    let code = |i: usize| -> String {
        let mut i = i;
        let mut s = String::new();
        loop {
            s.push((33 + (i % 94)) as u8 as char);
            i /= 94;
            if i == 0 {
                break;
            }
        }
        s
    };
    for net in circuit.net_ids() {
        out.push_str(&format!(
            "$var wire 1 {} {} $end\n",
            code(net.index()),
            circuit.net(net).name()
        ));
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");
    // Shift so the dump is non-negative.
    let earliest = traces
        .iter()
        .filter_map(|t| t.events().first().map(|&(time, _)| time))
        .min()
        .unwrap_or(0)
        .min(0);
    out.push_str("$dumpvars\n");
    for net in circuit.net_ids() {
        let initial = traces[net.index()].value_at(i64::MIN);
        out.push_str(&format!("{}{}\n", u8::from(initial), code(net.index())));
    }
    out.push_str("$end\n");
    // Merge all events by time.
    let mut events: Vec<(i64, usize, bool)> = Vec::new();
    for net in circuit.net_ids() {
        for &(t, v) in traces[net.index()].events() {
            events.push((t, net.index(), v));
        }
    }
    events.sort_unstable_by_key(|&(t, i, _)| (t, i));
    let mut last_time = None;
    for (t, i, v) in events {
        if last_time != Some(t) {
            out.push_str(&format!("#{}\n", t - earliest));
            last_time = Some(t);
        }
        out.push_str(&format!("{}{}\n", u8::from(v), code(i)));
    }
    out
}

/// Per-net transition counts of a simulation — a cheap switching-activity
/// (glitch) metric.
pub fn transition_counts(traces: &[WaveformTrace]) -> Vec<usize> {
    traces.iter().map(WaveformTrace::num_transitions).collect()
}

#[cfg(test)]
mod vcd_tests {
    use super::*;
    use ltt_netlist::generators::figure1;

    #[test]
    fn vcd_contains_all_nets_and_events() {
        let c = figure1(10);
        let inputs: Vec<WaveformTrace> = (0..7)
            .map(|i| WaveformTrace::new(i % 2 == 0, vec![(0, i % 3 == 0)]))
            .collect();
        let traces = simulate(&c, &inputs);
        let vcd = write_vcd(&c, &traces);
        for net in c.net_ids() {
            assert!(
                vcd.contains(&format!(" {} $end", c.net(net).name())),
                "net {} missing",
                c.net(net).name()
            );
        }
        assert!(vcd.contains("$dumpvars"));
        assert!(vcd.starts_with("$date"));
    }

    #[test]
    fn vcd_times_are_nonnegative_even_with_pre_zero_noise() {
        let c = figure1(10);
        let inputs: Vec<WaveformTrace> = (0..7)
            .map(|_| WaveformTrace::floating(false, vec![(-15, true)], true))
            .collect();
        let traces = simulate(&c, &inputs);
        let vcd = write_vcd(&c, &traces);
        for line in vcd.lines() {
            if let Some(t) = line.strip_prefix('#') {
                assert!(t.parse::<i64>().unwrap() >= 0, "negative VCD time: {line}");
            }
        }
    }

    #[test]
    fn transition_counts_track_events() {
        let c = figure1(10);
        let mut inputs = vec![WaveformTrace::constant(true); 7];
        inputs[0] = WaveformTrace::new(false, vec![(0, true), (5, false), (9, true)]);
        let traces = simulate(&c, &inputs);
        let counts = transition_counts(&traces);
        let e1 = c.inputs()[0];
        assert_eq!(counts[e1.index()], 3);
        // Something downstream glitches more than once.
        assert!(counts.iter().sum::<usize>() > 3);
    }
}
