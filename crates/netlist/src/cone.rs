//! Per-output transitive-fanin cones as dense renumbered sub-circuits.
//!
//! A last-transition-time check on output `s` can only depend on `s`'s
//! transitive fanin: the cone is *fanin-closed* (every input of a gate
//! whose output lies in the cone lies in the cone itself), so everything
//! outside it is dead weight for that check. [`ConeView`] extracts the
//! cone as a standalone [`Circuit`] with dense, renumbered ids plus the
//! old↔new id maps, sized so per-check state (signal stores, queues,
//! scratch) shrinks from circuit-sized to cone-sized.
//!
//! **Order preservation is the load-bearing invariant.** Nets, gates,
//! primary inputs, topological gate order, gate input lists, and every
//! net's reader list keep their *relative* order from the parent circuit.
//! The event-driven narrower's schedule — and therefore its statistics —
//! is a pure function of those orders, so a check run inside the renumbered
//! cone replays, step for step, the schedule of a whole-circuit run whose
//! propagation is masked to the cone (see DESIGN.md §14). This is why the
//! view is built by direct filtered renumbering rather than through
//! [`CircuitBuilder`](crate::CircuitBuilder), which would re-derive reader
//! lists in rebuild order.

use crate::circuit::{Circuit, Gate, GateId, Net, NetId};
use std::collections::HashMap;
use std::sync::Arc;

/// Sentinel for "not in the cone" in the old→new maps.
const OUT: u32 = u32::MAX;

/// A dense renumbered view of one output's transitive-fanin cone.
#[derive(Debug, Clone)]
pub struct ConeView {
    sub: Arc<Circuit>,
    /// `net_to_sub[old.index()]` = new index, or `OUT`.
    net_to_sub: Vec<u32>,
    /// `net_from_sub[new.index()]` = old id.
    net_from_sub: Vec<NetId>,
    /// `gate_to_sub[old.index()]` = new index, or `OUT`.
    gate_to_sub: Vec<u32>,
    /// `gate_from_sub[new.index()]` = old id.
    gate_from_sub: Vec<GateId>,
    /// The checked output, in old ids.
    output: NetId,
}

impl ConeView {
    /// Extracts the fanin cone of `output` from `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if `output` is not a net of `circuit`.
    pub fn extract(circuit: &Circuit, output: NetId) -> ConeView {
        let in_cone = circuit.fanin_cone(output);
        // Old→new net map: cone nets keep their relative (dense id) order.
        let mut net_to_sub = vec![OUT; circuit.num_nets()];
        let mut net_from_sub = Vec::new();
        for old in circuit.net_ids() {
            if in_cone[old.index()] {
                net_to_sub[old.index()] = u32::try_from(net_from_sub.len()).expect("cone size");
                net_from_sub.push(old);
            }
        }
        // A gate is in the cone iff its output net is; fanin-closure then
        // guarantees all its inputs are too. Gate ids also keep relative
        // order.
        let mut gate_to_sub = vec![OUT; circuit.num_gates()];
        let mut gate_from_sub = Vec::new();
        for old in circuit.gate_ids() {
            if in_cone[circuit.gate(old).output().index()] {
                gate_to_sub[old.index()] = u32::try_from(gate_from_sub.len()).expect("cone size");
                gate_from_sub.push(old);
            }
        }
        let map_net = |n: NetId| NetId::from_index(net_to_sub[n.index()] as usize);
        let map_gate = |g: GateId| GateId::from_index(gate_to_sub[g.index()] as usize);

        let mut by_name = HashMap::with_capacity(net_from_sub.len());
        let nets: Vec<Net> = net_from_sub
            .iter()
            .enumerate()
            .map(|(new_idx, &old)| {
                let net = circuit.net(old);
                by_name.insert(net.name().to_string(), NetId::from_index(new_idx));
                // Readers: filter to cone gates, preserving order.
                let readers: Vec<GateId> = net
                    .readers()
                    .iter()
                    .filter(|r| gate_to_sub[r.index()] != OUT)
                    .map(|&r| map_gate(r))
                    .collect();
                Net::from_parts(net.name().to_string(), net.driver().map(map_gate), readers)
            })
            .collect();
        let gates: Vec<Gate> = gate_from_sub
            .iter()
            .map(|&old| {
                let gate = circuit.gate(old);
                Gate::from_parts(
                    gate.kind(),
                    gate.inputs().iter().map(|&n| map_net(n)).collect(),
                    map_net(gate.output()),
                    gate.delay(),
                )
            })
            .collect();
        let inputs: Vec<NetId> = circuit
            .inputs()
            .iter()
            .filter(|i| in_cone[i.index()])
            .map(|&i| map_net(i))
            .collect();
        let topo_gates: Vec<GateId> = circuit
            .topo_gates()
            .iter()
            .filter(|g| gate_to_sub[g.index()] != OUT)
            .map(|&g| map_gate(g))
            .collect();
        let sub = Circuit::from_parts(
            format!("{}@{}", circuit.name(), circuit.net(output).name()),
            nets,
            gates,
            inputs,
            vec![map_net(output)],
            topo_gates,
            by_name,
        );
        ConeView {
            sub: Arc::new(sub),
            net_to_sub,
            net_from_sub,
            gate_to_sub,
            gate_from_sub,
            output,
        }
    }

    /// The cone as a standalone circuit (single output, dense ids).
    pub fn circuit(&self) -> &Arc<Circuit> {
        &self.sub
    }

    /// The checked output, in parent-circuit ids.
    pub fn output(&self) -> NetId {
        self.output
    }

    /// The checked output, in sub-circuit ids.
    pub fn sub_output(&self) -> NetId {
        self.sub.outputs()[0]
    }

    /// Maps a parent-circuit net into the cone, if it lies inside.
    #[inline]
    pub fn net_to_sub(&self, old: NetId) -> Option<NetId> {
        match self.net_to_sub[old.index()] {
            OUT => None,
            new => Some(NetId::from_index(new as usize)),
        }
    }

    /// Maps a cone net back to its parent-circuit id.
    #[inline]
    pub fn net_from_sub(&self, new: NetId) -> NetId {
        self.net_from_sub[new.index()]
    }

    /// Maps a parent-circuit gate into the cone, if it lies inside.
    #[inline]
    pub fn gate_to_sub(&self, old: GateId) -> Option<GateId> {
        match self.gate_to_sub[old.index()] {
            OUT => None,
            new => Some(GateId::from_index(new as usize)),
        }
    }

    /// Maps a cone gate back to its parent-circuit id.
    #[inline]
    pub fn gate_from_sub(&self, new: GateId) -> GateId {
        self.gate_from_sub[new.index()]
    }

    /// The cone nets, in parent ids, in parent (= cone) order.
    pub fn nets(&self) -> &[NetId] {
        &self.net_from_sub
    }

    /// The cone gates, in parent ids, in parent (= cone) order.
    pub fn gates(&self) -> &[GateId] {
        &self.gate_from_sub
    }

    /// Whether a parent net lies in the cone.
    #[inline]
    pub fn contains_net(&self, old: NetId) -> bool {
        self.net_to_sub[old.index()] != OUT
    }

    /// Whether a parent gate lies in the cone.
    #[inline]
    pub fn contains_gate(&self, old: GateId) -> bool {
        self.gate_to_sub[old.index()] != OUT
    }

    /// Whether the cone covers the entire parent circuit (slicing then
    /// buys nothing; callers may fall back to the whole-circuit path).
    pub fn is_complete(&self) -> bool {
        self.net_from_sub.len() == self.net_to_sub.len()
            && self.gate_from_sub.len() == self.gate_to_sub.len()
    }

    /// Whether any of `dirty` (parent ids, sorted or not) lies in the cone
    /// — the ECO invalidation test.
    pub fn intersects(&self, dirty: &[NetId]) -> bool {
        dirty.iter().any(|&n| self.contains_net(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{carry_skip_adder, figure1, random_circuit, RandomCircuitConfig};
    use crate::{Circuit, CircuitBuilder, DelayInterval, GateKind};

    fn random_dag(num_gates: usize, num_outputs: usize, seed: u64) -> Circuit {
        random_circuit(&RandomCircuitConfig {
            num_gates,
            num_outputs,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn cone_of_single_output_circuit_is_complete() {
        let c = figure1(10);
        let view = ConeView::extract(&c, c.outputs()[0]);
        assert!(view.is_complete());
        assert_eq!(view.circuit().num_nets(), c.num_nets());
        assert_eq!(view.circuit().num_gates(), c.num_gates());
    }

    #[test]
    fn cone_preserves_names_function_and_orders() {
        let adder = carry_skip_adder(8, 4, 10);
        let s0 = adder.net_by_name("s0").unwrap();
        let view = ConeView::extract(&adder, s0);
        let sub = view.circuit();
        assert!(!view.is_complete());
        assert_eq!(sub.outputs().len(), 1);
        assert_eq!(sub.net(view.sub_output()).name(), "s0");
        // Round-trip maps.
        for new in sub.net_ids() {
            let old = view.net_from_sub(new);
            assert_eq!(view.net_to_sub(old), Some(new));
            assert_eq!(sub.net(new).name(), adder.net(old).name());
        }
        for new in sub.gate_ids() {
            let old = view.gate_from_sub(new);
            assert_eq!(view.gate_to_sub(old), Some(new));
            assert_eq!(sub.gate(new).kind(), adder.gate(old).kind());
            assert_eq!(sub.gate(new).delay(), adder.gate(old).delay());
        }
        // Reader lists are the parent's, filtered with order preserved.
        for new in sub.net_ids() {
            let old = view.net_from_sub(new);
            let expect: Vec<GateId> = adder
                .net(old)
                .readers()
                .iter()
                .filter_map(|&r| view.gate_to_sub(r))
                .collect();
            assert_eq!(sub.net(new).readers(), expect.as_slice());
        }
        // The cone computes the same function of its inputs: evaluate the
        // parent on a vector and compare at s0.
        let vector: Vec<bool> = (0..adder.inputs().len()).map(|i| i % 3 == 0).collect();
        let full_vals = adder.evaluate_all(&vector);
        let sub_vector: Vec<bool> = sub
            .inputs()
            .iter()
            .map(|&i| {
                let old = view.net_from_sub(i);
                full_vals[old.index()]
            })
            .collect();
        assert_eq!(sub.evaluate(&sub_vector), vec![full_vals[s0.index()]]);
    }

    #[test]
    fn cone_matches_extract_cone_semantics() {
        let c = random_dag(60, 4, 0xC0FFEE);
        for &s in c.outputs() {
            let view = ConeView::extract(&c, s);
            let legacy = c.extract_cone(s);
            assert_eq!(view.circuit().num_nets(), legacy.num_nets(), "net count");
            assert_eq!(view.circuit().num_gates(), legacy.num_gates());
            assert_eq!(view.circuit().inputs().len(), legacy.inputs().len());
        }
    }

    #[test]
    fn cone_topo_order_is_valid_and_relative_order_preserved() {
        let c = random_dag(80, 4, 7);
        let s = c.outputs()[0];
        let view = ConeView::extract(&c, s);
        let sub = view.circuit();
        // topo_gates is a filtered copy of the parent's: mapping back gives
        // a subsequence of the parent's topo order.
        let back: Vec<GateId> = sub
            .topo_gates()
            .iter()
            .map(|&g| view.gate_from_sub(g))
            .collect();
        let parent: Vec<GateId> = c.topo_gates().to_vec();
        let mut it = parent.iter();
        for g in &back {
            assert!(it.any(|p| p == g), "sub topo order must be a subsequence");
        }
        // And it is topologically valid in the sub-circuit.
        let mut seen = vec![false; sub.num_nets()];
        for &i in sub.inputs() {
            seen[i.index()] = true;
        }
        for &g in sub.topo_gates() {
            for &i in sub.gate(g).inputs() {
                assert!(seen[i.index()], "driver before reader");
            }
            seen[sub.gate(g).output().index()] = true;
        }
    }

    #[test]
    fn intersects_flags_only_cone_nets() {
        let mut b = CircuitBuilder::new("two");
        let a = b.input("a");
        let x = b.input("x");
        let p = b.gate("p", GateKind::Not, &[a], DelayInterval::fixed(10));
        let q = b.gate("q", GateKind::Not, &[x], DelayInterval::fixed(10));
        b.mark_output(p);
        b.mark_output(q);
        let c = b.build().unwrap();
        let view = ConeView::extract(&c, p);
        assert!(view.contains_net(a));
        assert!(!view.contains_net(x));
        assert!(view.intersects(&[a]));
        assert!(!view.intersects(&[x, q]));
        assert!(view.intersects(&[x, p]));
    }
}
