//! Technology transformation passes.
//!
//! The paper evaluates "NOR-gate implementations of the ISCAS'85
//! benchmarks" — the published netlists re-mapped onto 2-input-or-wider NOR
//! gates (which is why its Table 1 topological delays exceed the raw
//! netlists': e.g. c17 is 3 NAND levels raw but 5 NOR levels mapped,
//! giving the paper's `top = 50` at delay 10). [`nor_mapping`] reproduces
//! that mapping with a dual-rail (both-polarity) construction that folds
//! inverters: each original net lazily gets a positive and a negative NOR
//! rail, and consumers pick whichever polarity they need, so no
//! back-to-back inverter pairs are generated.

use crate::{Circuit, CircuitBuilder, DelayInterval, GateKind, NetId};
use std::collections::HashMap;

/// Re-maps a circuit onto NOR gates (plus pass-throughs for DELAY
/// elements), assigning `delay` to every created gate.
///
/// The mapping is dual-rail with lazy rail creation:
///
/// * `AND(x…)  = NOR(x̄…)`, `NAND` adds one inverting NOR;
/// * `NOR(x…)` stays one gate, `OR` adds one inverting NOR;
/// * `NOT`/`BUFFER` cost zero gates (polarity bookkeeping only);
/// * `XOR/XNOR(a, b) = NOR(a ∧ b̄, ā ∧ b)` (3 NOR levels, +1 for the other
///   polarity); wider XORs are decomposed into binary chains;
/// * `DELAY` elements are preserved as delay elements on the positive rail.
///
/// The mapped circuit computes the same primary-output functions (verified
/// exhaustively in the tests) and keeps the original output names on the
/// positive rails.
///
/// # Examples
///
/// ```
/// use ltt_netlist::suite::c17;
/// use ltt_netlist::transform::nor_mapping;
///
/// let raw = c17(10);
/// let nor = nor_mapping(&raw, 10);
/// assert_eq!(raw.topological_delay(), 30);
/// assert_eq!(nor.topological_delay(), 50); // the paper's Table 1 value
/// ```
pub fn nor_mapping(circuit: &Circuit, delay: u32) -> Circuit {
    let d = DelayInterval::fixed(delay);
    let mut b = CircuitBuilder::new(format!("{}_nor", circuit.name()));
    // Rails: mapped net carrying the original net's value / complement.
    let mut pos: HashMap<NetId, NetId> = HashMap::new();
    let mut neg: HashMap<NetId, NetId> = HashMap::new();

    for &i in circuit.inputs() {
        let mapped = b.input(circuit.net(i).name());
        pos.insert(i, mapped);
    }

    let mut fresh = 0usize;

    // Produces the negative rail of an original net whose positive rail
    // already exists (or vice versa) with one inverting NOR.
    fn rail(
        b: &mut CircuitBuilder,
        fresh: &mut usize,
        have: NetId,
        d: DelayInterval,
        hint: &str,
    ) -> NetId {
        *fresh += 1;
        b.gate(format!("{hint}_inv{fresh}"), GateKind::Nor, &[have], d)
    }

    for &gid in circuit.topo_gates() {
        let gate = circuit.gate(gid);
        let out = gate.output();
        let out_name = circuit.net(out).name().to_string();
        // Helper: fetch a rail of an already-processed original net,
        // creating it from the other polarity if missing.
        macro_rules! get {
            ($map:ident, $other:ident, $net:expr) => {{
                let n: NetId = $net;
                if let Some(&m) = $map.get(&n) {
                    m
                } else {
                    let have = *$other.get(&n).expect("driver processed before reader");
                    let name = circuit.net(n).name().to_string();
                    let made = rail(&mut b, &mut fresh, have, d, &name);
                    $map.insert(n, made);
                    made
                }
            }};
        }

        match gate.kind() {
            GateKind::And | GateKind::Nand => {
                let negs: Vec<NetId> = gate.inputs().iter().map(|&n| get!(neg, pos, n)).collect();
                // AND(x…) = NOR(x̄…): this IS the positive rail of AND and
                // the negative rail of NAND.
                if gate.kind() == GateKind::And {
                    let p = b.gate(&out_name, GateKind::Nor, &negs, d);
                    pos.insert(out, p);
                } else {
                    let n = b.gate(format!("{out_name}_n"), GateKind::Nor, &negs, d);
                    neg.insert(out, n);
                }
            }
            GateKind::Or | GateKind::Nor => {
                let poss: Vec<NetId> = gate.inputs().iter().map(|&n| get!(pos, neg, n)).collect();
                // NOR(x…) is the positive rail of NOR / negative rail of OR.
                if gate.kind() == GateKind::Nor {
                    let p = b.gate(&out_name, GateKind::Nor, &poss, d);
                    pos.insert(out, p);
                } else {
                    let n = b.gate(format!("{out_name}_n"), GateKind::Nor, &poss, d);
                    neg.insert(out, n);
                }
            }
            GateKind::Not => {
                // Zero cost: swap rails.
                if let Some(&p) = pos.get(&gate.inputs()[0]) {
                    neg.insert(out, p);
                }
                if let Some(&n) = neg.get(&gate.inputs()[0]) {
                    pos.insert(out, n);
                }
                // Ensure at least one rail exists.
                if !pos.contains_key(&out) && !neg.contains_key(&out) {
                    let p = get!(pos, neg, gate.inputs()[0]);
                    neg.insert(out, p);
                }
            }
            GateKind::Buffer => {
                if let Some(&p) = pos.get(&gate.inputs()[0]) {
                    pos.insert(out, p);
                }
                if let Some(&n) = neg.get(&gate.inputs()[0]) {
                    neg.insert(out, n);
                }
                if !pos.contains_key(&out) && !neg.contains_key(&out) {
                    let p = get!(pos, neg, gate.inputs()[0]);
                    pos.insert(out, p);
                }
            }
            GateKind::Delay => {
                // Delay elements carry timing; keep them on the positive
                // rail with the original delay.
                let p = get!(pos, neg, gate.inputs()[0]);
                let m = b.gate(&out_name, GateKind::Delay, &[p], gate.delay());
                pos.insert(out, m);
            }
            GateKind::Mux => {
                // mux = (s̄ ∧ a) ∨ (s ∧ b); with NORs:
                //   t1 = NOR(s, ā) = s̄ ∧ a,  t2 = NOR(s̄, b̄) = s ∧ b,
                //   neg = NOR(t1, t2),  pos = NOR(neg).
                let s_pos = get!(pos, neg, gate.inputs()[0]);
                let s_neg = get!(neg, pos, gate.inputs()[0]);
                let a_neg = get!(neg, pos, gate.inputs()[1]);
                let b_neg = get!(neg, pos, gate.inputs()[2]);
                fresh += 1;
                let t1 = b.gate(
                    format!("{out_name}_m1_{fresh}"),
                    GateKind::Nor,
                    &[s_pos, a_neg],
                    d,
                );
                fresh += 1;
                let t2 = b.gate(
                    format!("{out_name}_m2_{fresh}"),
                    GateKind::Nor,
                    &[s_neg, b_neg],
                    d,
                );
                let n = b.gate(format!("{out_name}_n"), GateKind::Nor, &[t1, t2], d);
                neg.insert(out, n);
            }
            GateKind::Xor | GateKind::Xnor => {
                // Binary chain over the inputs.
                let want_xnor = gate.kind() == GateKind::Xnor;
                let mut acc: Option<NetId> = None; // positive rail of running XOR
                let mut acc_orig: Option<NetId> = None;
                for (k, &inp) in gate.inputs().iter().enumerate() {
                    match acc {
                        None => {
                            acc = Some(get!(pos, neg, inp));
                            acc_orig = Some(inp);
                            // Also materialize the complement lazily below.
                        }
                        Some(a_pos) => {
                            // XNOR(a, x) = NOR(a ∧ x̄, ā ∧ x).
                            let a_neg = match acc_orig {
                                Some(orig) => get!(neg, pos, orig),
                                None => {
                                    fresh += 1;
                                    b.gate(
                                        format!("{out_name}_acc_inv{fresh}"),
                                        GateKind::Nor,
                                        &[a_pos],
                                        d,
                                    )
                                }
                            };
                            let x_pos = get!(pos, neg, inp);
                            let x_neg = get!(neg, pos, inp);
                            fresh += 1;
                            let t1 = b.gate(
                                format!("{out_name}_x{k}a{fresh}"),
                                GateKind::Nor,
                                &[a_neg, x_neg],
                                d,
                            ); // a ∧ x via NOR? NOR(ā, x̄) = a ∧ x
                            fresh += 1;
                            let t2 = b.gate(
                                format!("{out_name}_x{k}b{fresh}"),
                                GateKind::Nor,
                                &[a_pos, x_pos],
                                d,
                            ); // ā ∧ x̄
                            fresh += 1;
                            // XOR(a,x) = ¬(a∧x ∨ ā∧x̄) = NOR(t1, t2).
                            let x = b.gate(
                                format!("{out_name}_x{k}{fresh}"),
                                GateKind::Nor,
                                &[t1, t2],
                                d,
                            );
                            acc = Some(x);
                            acc_orig = None;
                        }
                    }
                }
                let result = acc.expect("xor has inputs");
                if want_xnor {
                    let n = b.gate(format!("{out_name}_n"), GateKind::Nor, &[result], d);
                    // `result` is XOR = positive of XNOR's complement.
                    neg.insert(out, result);
                    pos.insert(out, n);
                } else {
                    pos.insert(out, result);
                }
            }
        }
    }

    // Outputs must exist on the positive rail, named after the original.
    for &o in circuit.outputs() {
        let mapped = if let Some(&p) = pos.get(&o) {
            p
        } else {
            let have = *neg.get(&o).expect("output driver processed");
            let name = circuit.net(o).name().to_string();
            let p = b.gate(format!("{name}_pos"), GateKind::Nor, &[have], d);
            pos.insert(o, p);
            p
        };
        b.mark_output(mapped);
    }

    b.build()
        .expect("NOR mapping preserves structural validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{figure1, parity_tree, ripple_carry_adder};
    use crate::suite::c17;

    fn assert_same_function(a: &Circuit, b: &Circuit) {
        assert_eq!(a.inputs().len(), b.inputs().len());
        assert_eq!(a.outputs().len(), b.outputs().len());
        let n = a.inputs().len();
        assert!(n <= 20, "exhaustive check needs few inputs");
        for v in 0..(1u64 << n) {
            let vec: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(a.evaluate(&vec), b.evaluate(&vec), "vector {v:b}");
        }
    }

    #[test]
    fn c17_nor_matches_paper_depth() {
        let raw = c17(10);
        let nor = nor_mapping(&raw, 10);
        assert_eq!(nor.topological_delay(), 50);
        assert_same_function(&raw, &nor);
        // Every gate is a NOR (c17 has no DELAY elements).
        assert!(nor.gate_ids().all(|g| nor.gate(g).kind() == GateKind::Nor));
    }

    #[test]
    fn figure1_nor_preserves_function() {
        let raw = figure1(10);
        let nor = nor_mapping(&raw, 10);
        assert_same_function(&raw, &nor);
    }

    #[test]
    fn xor_tree_nor_preserves_function() {
        let raw = parity_tree(5, 10);
        let nor = nor_mapping(&raw, 10);
        assert_same_function(&raw, &nor);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; covered by `cargo test --release`"
    )]
    fn adder_nor_preserves_function() {
        let raw = ripple_carry_adder(3, 10);
        let nor = nor_mapping(&raw, 10);
        assert_same_function(&raw, &nor);
    }

    #[test]
    fn mixed_gates_preserve_function() {
        use crate::{CircuitBuilder, DelayInterval};
        let d = DelayInterval::fixed(10);
        let mut bld = CircuitBuilder::new("mixed");
        let a = bld.input("a");
        let b2 = bld.input("b");
        let c = bld.input("c");
        let x1 = bld.gate("x1", GateKind::Xnor, &[a, b2], d);
        let x2 = bld.gate("x2", GateKind::Nand, &[x1, c], d);
        let x3 = bld.gate("x3", GateKind::Not, &[x2], d);
        let x4 = bld.gate("x4", GateKind::Or, &[x3, a], d);
        let x5 = bld.gate("x5", GateKind::Buffer, &[x4], d);
        let x6 = bld.gate("x6", GateKind::Xor, &[x5, b2, c], d);
        bld.mark_output(x6);
        bld.mark_output(x2);
        let raw = bld.build().unwrap();
        let nor = nor_mapping(&raw, 10);
        assert_same_function(&raw, &nor);
    }

    #[test]
    fn delay_elements_survive() {
        use crate::{CircuitBuilder, DelayInterval};
        let mut bld = CircuitBuilder::new("del");
        let a = bld.input("a");
        let dly = bld.gate("dly", GateKind::Delay, &[a], DelayInterval::fixed(100));
        let y = bld.gate("y", GateKind::Not, &[dly], DelayInterval::fixed(10));
        bld.mark_output(y);
        let raw = bld.build().unwrap();
        let nor = nor_mapping(&raw, 10);
        assert!(nor
            .gate_ids()
            .any(|g| nor.gate(g).kind() == GateKind::Delay && nor.gate(g).dmax() == 100));
        assert_same_function(&raw, &nor);
    }
}
