//! Array multiplier generator (the c6288 stand-in substrate).
//!
//! ISCAS'85 c6288 is a 16×16 array multiplier; its carry-save array has
//! enormous reconvergent fanout and is the traditional stress test for
//! false-path analysis (the paper abandons exact case analysis on it after
//! an excessive number of backtracks and reports only an upper bound).
//! This generator produces the classical AND-array + ripple-carry-array
//! structure from the same gate library.

use crate::{Circuit, CircuitBuilder, DelayInterval, GateKind, NetId};

/// Generates an `n × n` array multiplier with per-gate delay `delay`.
///
/// Inputs `a0…a{n−1}`, `b0…b{n−1}`; outputs `m0…m{2n−1}` (LSB first).
/// Built from an AND partial-product array reduced by rows of half/full
/// adders (2 XOR, 2 AND, 1 OR per full adder), exactly representable in the
/// paper's gate library.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use ltt_netlist::generators::array_multiplier;
///
/// let c = array_multiplier(4, 10);
/// assert_eq!(c.inputs().len(), 8);
/// assert_eq!(c.outputs().len(), 8);
/// ```
pub fn array_multiplier(n: usize, delay: u32) -> Circuit {
    assert!(n >= 2, "multiplier width must be at least 2");
    let d = DelayInterval::fixed(delay);
    let mut b = CircuitBuilder::new(format!("mul{n}x{n}"));
    let a: Vec<NetId> = (0..n).map(|i| b.input(format!("a{i}"))).collect();
    let bb: Vec<NetId> = (0..n).map(|i| b.input(format!("b{i}"))).collect();

    // Partial products pp[i][j] = a_j ∧ b_i, weight i + j.
    let mut pp = vec![vec![NetId::from_index(0); n]; n];
    for i in 0..n {
        for j in 0..n {
            pp[i][j] = b.gate(format!("pp_{i}_{j}"), GateKind::And, &[a[j], bb[i]], d);
        }
    }

    let mut fa = 0usize;
    let mut full_adder = |b: &mut CircuitBuilder, x: NetId, y: NetId, z: NetId| {
        fa += 1;
        let t = b.gate(format!("fa{fa}_t"), GateKind::Xor, &[x, y], d);
        let s = b.gate(format!("fa{fa}_s"), GateKind::Xor, &[t, z], d);
        let c1 = b.gate(format!("fa{fa}_c1"), GateKind::And, &[x, y], d);
        let c2 = b.gate(format!("fa{fa}_c2"), GateKind::And, &[t, z], d);
        let c = b.gate(format!("fa{fa}_c"), GateKind::Or, &[c1, c2], d);
        (s, c)
    };
    let mut ha = 0usize;
    let mut half_adder = |b: &mut CircuitBuilder, x: NetId, y: NetId| {
        ha += 1;
        let s = b.gate(format!("ha{ha}_s"), GateKind::Xor, &[x, y], d);
        let c = b.gate(format!("ha{ha}_c"), GateKind::And, &[x, y], d);
        (s, c)
    };

    // Row-by-row carry-propagate reduction: running sum row accumulates
    // each partial-product row.
    let row0 = pp[0].clone(); // weights 0..n−1 of row 0
    let mut outputs: Vec<NetId> = vec![row0[0]]; // m0
    let mut high: Vec<NetId> = row0[1..].to_vec(); // weights 1..n−1 pending

    for row in pp.iter().skip(1) {
        // Add `row` (weights i..i+n-1, here aligned at offset 0 against
        // `high`) to the pending `high` bits.
        let mut next = Vec::with_capacity(n + 1);
        let mut carry: Option<NetId> = None;
        for (j, &p) in row.iter().enumerate() {
            let base = if j < high.len() { Some(high[j]) } else { None };
            let (s, c) = match (base, carry) {
                (Some(x), Some(cin)) => {
                    let (s, c) = full_adder(&mut b, x, p, cin);
                    (s, Some(c))
                }
                (Some(x), None) => {
                    let (s, c) = half_adder(&mut b, x, p);
                    (s, Some(c))
                }
                (None, Some(cin)) => {
                    let (s, c) = half_adder(&mut b, p, cin);
                    (s, Some(c))
                }
                (None, None) => (p, None),
            };
            next.push(s);
            carry = c;
        }
        if let Some(c) = carry {
            next.push(c);
        }
        outputs.push(next[0]); // weight i settled
        high = next[1..].to_vec();
    }
    // Remaining high bits are the top product bits.
    outputs.extend(high);
    // Pad (a half/full adder chain always yields exactly 2n bits; assert).
    assert_eq!(outputs.len(), 2 * n, "product must have 2n bits");
    for (k, &o) in outputs.iter().enumerate() {
        // Buffer each output so outputs have distinct named nets.
        let m = b.gate(format!("m{k}"), GateKind::Buffer, &[o], d);
        b.mark_output(m);
    }
    b.build().expect("array multiplier is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mul_via(c: &Circuit, n: usize, a: u64, b: u64) -> u64 {
        let mut v = Vec::with_capacity(2 * n);
        for i in 0..n {
            v.push((a >> i) & 1 == 1);
        }
        for i in 0..n {
            v.push((b >> i) & 1 == 1);
        }
        c.evaluate(&v)
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &bit)| acc | (u64::from(bit) << i))
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; covered by `cargo test --release`"
    )]
    fn multiplies_exhaustively_4x4() {
        let c = array_multiplier(4, 10);
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(mul_via(&c, 4, a, b), a * b, "{a} * {b}");
            }
        }
    }

    #[test]
    fn multiplies_spot_checks_8x8() {
        let c = array_multiplier(8, 10);
        for (a, b) in [(0u64, 0u64), (255, 255), (17, 13), (128, 2), (99, 201)] {
            assert_eq!(mul_via(&c, 8, a, b), a * b);
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; covered by `cargo test --release`"
    )]
    fn gate_count_scales_quadratically() {
        let c4 = array_multiplier(4, 10);
        let c8 = array_multiplier(8, 10);
        assert!(c8.num_gates() > 3 * c4.num_gates());
        // 16×16 lands in the c6288 ballpark (c6288 has 2406 gates).
        let c16 = array_multiplier(16, 10);
        assert!(
            (1200..4000).contains(&c16.num_gates()),
            "{}",
            c16.num_gates()
        );
    }

    #[test]
    fn array_has_heavy_reconvergence() {
        let c = array_multiplier(6, 10);
        assert!(c.num_fanout_stems() > 20);
    }
}
