//! Adder generators: ripple-carry and carry-skip.
//!
//! The carry-skip adder is the paper's second running example (Figures 2
//! and 3 and §6): its full ripple path is topologically longest but false —
//! rippling a carry across a block requires every propagate signal in the
//! block to be 1, which forces the skip multiplexer to select the (fast)
//! skip path instead. The paper's 16-bit instance has a topological delay
//! of 2000 and a floating-mode delay of 1000.

use crate::{Circuit, CircuitBuilder, DelayInterval, GateKind, NetId};

/// Generates a `width`-bit ripple-carry adder with per-gate delay `delay`.
///
/// Inputs: `a0…a{w−1}`, `b0…b{w−1}`, `cin`; outputs: `s0…s{w−1}`, `cout`.
/// The carry chain `c_{i+1} = g_i ∨ (p_i ∧ c_i)` is the classical
/// structure; its longest path is *true* (fully sensitizable), so the
/// ripple-carry adder serves as a no-false-path control circuit.
///
/// # Panics
///
/// Panics if `width` is 0.
///
/// # Examples
///
/// ```
/// use ltt_netlist::generators::ripple_carry_adder;
///
/// let c = ripple_carry_adder(4, 10);
/// assert_eq!(c.inputs().len(), 9); // 4 + 4 + cin
/// assert_eq!(c.outputs().len(), 5); // 4 sums + cout
/// ```
pub fn ripple_carry_adder(width: usize, delay: u32) -> Circuit {
    assert!(width > 0, "adder width must be positive");
    let d = DelayInterval::fixed(delay);
    let mut b = CircuitBuilder::new(format!("rca{width}"));
    let a: Vec<NetId> = (0..width).map(|i| b.input(format!("a{i}"))).collect();
    let bb: Vec<NetId> = (0..width).map(|i| b.input(format!("b{i}"))).collect();
    let mut carry = b.input("cin");
    for i in 0..width {
        let p = b.gate(format!("p{i}"), GateKind::Xor, &[a[i], bb[i]], d);
        let g = b.gate(format!("g{i}"), GateKind::And, &[a[i], bb[i]], d);
        let s = b.gate(format!("s{i}"), GateKind::Xor, &[p, carry], d);
        b.mark_output(s);
        let t = b.gate(format!("t{i}"), GateKind::And, &[p, carry], d);
        carry = b.gate(format!("c{}", i + 1), GateKind::Or, &[g, t], d);
    }
    let cout = b.gate("cout", GateKind::Buffer, &[carry], d);
    b.mark_output(cout);
    b.build().expect("ripple-carry adder is structurally valid")
}

/// Generates a `width`-bit carry-skip adder with ripple blocks of
/// `block_size` bits and per-gate delay `delay` (paper Figure 2).
///
/// Each block ripples internally; a block-propagate signal
/// `P = p_lo ∧ … ∧ p_hi` drives a 2-level multiplexer
/// `c_out = (P ∧ c_in) ∨ (¬P ∧ ripple_out)` that skips the block whenever
/// every bit propagates. The full inter-block ripple path is therefore
/// topologically present but statically false, and the floating-mode delay
/// is roughly *ripple through the first block + one skip per middle block +
/// ripple through the last block* — about half the topological delay at the
/// paper's 16-bit/4-block operating point.
///
/// # Panics
///
/// Panics if `width` is 0, `block_size` is 0, or `block_size` does not
/// divide `width`.
///
/// # Examples
///
/// ```
/// use ltt_netlist::generators::carry_skip_adder;
///
/// let c = carry_skip_adder(16, 4, 50);
/// assert!(c.topological_delay() > 1500);
/// ```
pub fn carry_skip_adder(width: usize, block_size: usize, delay: u32) -> Circuit {
    assert!(
        width > 0 && block_size > 0,
        "width and block size must be positive"
    );
    assert!(
        width.is_multiple_of(block_size),
        "block size must divide the adder width"
    );
    let d = DelayInterval::fixed(delay);
    let mut b = CircuitBuilder::new(format!("csa{width}x{block_size}"));
    let a: Vec<NetId> = (0..width).map(|i| b.input(format!("a{i}"))).collect();
    let bb: Vec<NetId> = (0..width).map(|i| b.input(format!("b{i}"))).collect();
    let mut block_cin = b.input("cin");

    for blk in 0..width / block_size {
        let lo = blk * block_size;
        let hi = lo + block_size;
        let mut carry = block_cin;
        let mut props = Vec::with_capacity(block_size);
        for i in lo..hi {
            let p = b.gate(format!("p{i}"), GateKind::Xor, &[a[i], bb[i]], d);
            let g = b.gate(format!("g{i}"), GateKind::And, &[a[i], bb[i]], d);
            let s = b.gate(format!("s{i}"), GateKind::Xor, &[p, carry], d);
            b.mark_output(s);
            let t = b.gate(format!("t{i}"), GateKind::And, &[p, carry], d);
            carry = b.gate(format!("c{}", i + 1), GateKind::Or, &[g, t], d);
            props.push(p);
        }
        // Block propagate and the skip multiplexer.
        let big_p = b.gate(format!("P{blk}"), GateKind::And, &props, d);
        let not_p = b.gate(format!("NP{blk}"), GateKind::Not, &[big_p], d);
        let skip = b.gate(format!("skip{blk}"), GateKind::And, &[big_p, block_cin], d);
        let keep = b.gate(format!("keep{blk}"), GateKind::And, &[not_p, carry], d);
        block_cin = b.gate(format!("C{}", blk + 1), GateKind::Or, &[skip, keep], d);
    }
    let cout = b.gate("cout", GateKind::Buffer, &[block_cin], d);
    b.mark_output(cout);
    b.build().expect("carry-skip adder is structurally valid")
}

/// Interprets primary-output values of an adder generated by this module as
/// the numeric sum (LSB-first sums, then `cout`).
pub fn adder_sum(outputs: &[bool]) -> u64 {
    outputs
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &bit)| acc | (u64::from(bit) << i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_via(circuit: &Circuit, width: usize, a: u64, b: u64, cin: bool) -> u64 {
        let mut v = Vec::with_capacity(2 * width + 1);
        for i in 0..width {
            v.push((a >> i) & 1 == 1);
        }
        for i in 0..width {
            v.push((b >> i) & 1 == 1);
        }
        v.push(cin);
        adder_sum(&circuit.evaluate(&v))
    }

    #[test]
    fn ripple_carry_adds_correctly() {
        let c = ripple_carry_adder(4, 10);
        for a in 0..16u64 {
            for b in 0..16u64 {
                for cin in [false, true] {
                    assert_eq!(add_via(&c, 4, a, b, cin), a + b + u64::from(cin));
                }
            }
        }
    }

    #[test]
    fn carry_skip_adds_correctly() {
        let c = carry_skip_adder(8, 4, 10);
        for (a, b, cin) in [
            (0u64, 0u64, false),
            (255, 255, true),
            (170, 85, false),
            (15, 1, false), // carry out of the first block
            (0b00001111, 0b00000001, true),
            (200, 100, true),
            (128, 128, false),
        ] {
            assert_eq!(add_via(&c, 8, a, b, cin), a + b + u64::from(cin));
        }
    }

    #[test]
    fn carry_skip_exhaustive_small() {
        let c = carry_skip_adder(4, 2, 10);
        for a in 0..16u64 {
            for b in 0..16u64 {
                for cin in [false, true] {
                    assert_eq!(add_via(&c, 4, a, b, cin), a + b + u64::from(cin));
                }
            }
        }
    }

    #[test]
    fn paper_operating_point_topological_delay() {
        // 16-bit, 4-bit blocks, delay 50: the ripple path runs
        // xor/and + (and, or) per bit + the mux per block.
        let c = carry_skip_adder(16, 4, 50);
        let top = c.topological_delay();
        // Per block: 8 ripple levels + 2 mux levels = 10; 4 blocks = 40
        // levels + p/s logic ⇒ 2000-ish at delay 50.
        assert!((1900..=2200).contains(&top), "top = {top}");
    }

    #[test]
    fn skip_is_topologically_shorter_than_ripple() {
        let c = carry_skip_adder(8, 4, 10);
        let cin = c.net_by_name("cin").unwrap();
        let c1 = c.net_by_name("C1").unwrap();
        let skip_path = c.top_between(cin, c1).unwrap();
        // The longest cin→C1 path is the in-block ripple (through t0…t3),
        // not the 2-level skip.
        assert!(skip_path >= 10 * (2 * 4));
    }

    #[test]
    #[should_panic]
    fn carry_skip_rejects_non_dividing_block() {
        let _ = carry_skip_adder(10, 4, 10);
    }
}
