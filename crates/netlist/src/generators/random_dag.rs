//! Seeded random circuit generator.
//!
//! Produces deterministic pseudo-random combinational DAGs with a target
//! gate count and depth profile — the "filler" logic of the synthetic
//! ISCAS'85 stand-ins and the workload for the micro benchmarks.

use crate::{Circuit, CircuitBuilder, DelayInterval, GateKind, NetId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`random_circuit`].
#[derive(Clone, Debug)]
pub struct RandomCircuitConfig {
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of gates to generate.
    pub num_gates: usize,
    /// Maximum gate fan-in (≥ 2).
    pub max_fanin: usize,
    /// Per-gate delay.
    pub delay: u32,
    /// Number of primary outputs to mark (drawn from the deepest nets).
    pub num_outputs: usize,
    /// Bias towards recent nets when picking gate inputs (0 = uniform,
    /// larger values produce deeper, chain-like circuits).
    pub depth_bias: u32,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl Default for RandomCircuitConfig {
    fn default() -> Self {
        RandomCircuitConfig {
            num_inputs: 16,
            num_gates: 100,
            max_fanin: 3,
            delay: 10,
            num_outputs: 4,
            depth_bias: 4,
            seed: 0xD1CE,
        }
    }
}

/// Generates a deterministic pseudo-random combinational circuit.
///
/// Gates are drawn from the full library (with XOR/XNOR kept binary and a
/// small share of inverters/buffers); inputs of each gate are picked from
/// the already-created nets with a recency bias controlled by
/// [`RandomCircuitConfig::depth_bias`], which keeps the DAG connected and
/// gives it depth. The resulting circuit is validated like any built
/// circuit.
///
/// # Panics
///
/// Panics if the configuration is degenerate (no inputs, no gates, fan-in
/// below 2, or no outputs requested).
///
/// # Examples
///
/// ```
/// use ltt_netlist::generators::{random_circuit, RandomCircuitConfig};
///
/// let c = random_circuit(&RandomCircuitConfig { num_gates: 50, ..Default::default() });
/// assert_eq!(c.num_gates(), 50);
/// // Deterministic: same config, same circuit.
/// let c2 = random_circuit(&RandomCircuitConfig { num_gates: 50, ..Default::default() });
/// assert_eq!(c.topological_delay(), c2.topological_delay());
/// ```
pub fn random_circuit(config: &RandomCircuitConfig) -> Circuit {
    assert!(config.num_inputs > 0, "need at least one input");
    assert!(config.num_gates > 0, "need at least one gate");
    assert!(config.max_fanin >= 2, "max fan-in must be at least 2");
    assert!(config.num_outputs > 0, "need at least one output");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let d = DelayInterval::fixed(config.delay);
    let mut b = CircuitBuilder::new(format!("rand_{}", config.seed));
    let mut nets: Vec<NetId> = (0..config.num_inputs)
        .map(|i| b.input(format!("x{i}")))
        .collect();

    for g in 0..config.num_gates {
        let kind = match rng.gen_range(0..11) {
            0 => GateKind::And,
            1 => GateKind::Nand,
            2 => GateKind::Or,
            3 => GateKind::Nor,
            4 => GateKind::Xor,
            5 => GateKind::Xnor,
            6 => GateKind::Not,
            7 => GateKind::Nand,
            8 => GateKind::Nor,
            9 => GateKind::Mux,
            _ => GateKind::And,
        };
        let fanin = match kind {
            GateKind::Not => 1,
            GateKind::Xor | GateKind::Xnor => 2,
            GateKind::Mux => 3,
            _ => rng.gen_range(2..=config.max_fanin),
        };
        let mut inputs = Vec::with_capacity(fanin);
        for _ in 0..fanin {
            // Recency-biased pick: repeatedly shrink the candidate window.
            let mut lo = 0usize;
            for _ in 0..config.depth_bias {
                if rng.gen_bool(0.5) {
                    lo = (lo + nets.len()) / 2;
                }
            }
            let pick = nets[rng.gen_range(lo..nets.len())];
            if !inputs.contains(&pick) || kind == GateKind::Not {
                inputs.push(pick);
            } else {
                // Avoid duplicate fan-in; fall back to a uniform pick.
                inputs.push(nets[rng.gen_range(0..nets.len())]);
            }
        }
        inputs.dedup();
        let kind = if kind.arity_ok(inputs.len()) {
            kind
        } else if inputs.len() == 1 {
            GateKind::Buffer
        } else {
            GateKind::Nand
        };
        let out = b.gate(format!("g{g}"), kind, &inputs, d);
        nets.push(out);
    }

    // Mark the deepest nets (latest created, which tend to be deepest) plus
    // any net with no readers as outputs, up to the requested count.
    let count = config.num_outputs.min(config.num_gates);
    let start = nets.len() - count;
    for &n in &nets[start..] {
        b.mark_output(n);
    }
    b.build().expect("random circuit is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = RandomCircuitConfig::default();
        let a = random_circuit(&cfg);
        let b = random_circuit(&cfg);
        assert_eq!(a.num_gates(), b.num_gates());
        assert_eq!(a.topological_delay(), b.topological_delay());
        let v = vec![true; cfg.num_inputs];
        assert_eq!(a.evaluate(&v), b.evaluate(&v));
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_circuit(&RandomCircuitConfig {
            seed: 1,
            ..Default::default()
        });
        let b = random_circuit(&RandomCircuitConfig {
            seed: 2,
            ..Default::default()
        });
        // Extremely likely to differ in structure-derived delay.
        assert!(
            a.topological_delay() != b.topological_delay()
                || a.evaluate(&[true; 16]) != b.evaluate(&[true; 16])
        );
    }

    #[test]
    fn respects_gate_count_and_outputs() {
        let c = random_circuit(&RandomCircuitConfig {
            num_gates: 37,
            num_outputs: 5,
            ..Default::default()
        });
        assert_eq!(c.num_gates(), 37);
        assert_eq!(c.outputs().len(), 5);
    }

    #[test]
    fn depth_bias_produces_deeper_circuits() {
        let shallow = random_circuit(&RandomCircuitConfig {
            depth_bias: 0,
            num_gates: 300,
            seed: 7,
            ..Default::default()
        });
        let deep = random_circuit(&RandomCircuitConfig {
            depth_bias: 8,
            num_gates: 300,
            seed: 7,
            ..Default::default()
        });
        assert!(deep.depth() > shallow.depth());
    }
}
