//! False-path circuits: the paper's Figure 1 (Hrapcenko's construction) and
//! a generalized false-path chain with a tunable topological/floating delay
//! gap.
//!
//! Hrapcenko [12 in the paper] proved that minimal circuits may have true
//! delays below their topological delays. The Figure 1 circuit is the
//! paper's running example (Example 2): topological delay 70, floating-mode
//! delay 60, because the longest path is statically falsified by a shared
//! side input that would have to settle to 1 (non-controlling for an AND on
//! the path prefix) and to 0 (non-controlling for an OR on the path tail)
//! at the same time.

use crate::{Circuit, CircuitBuilder, DelayInterval, GateKind, NetId};

/// The Figure 1 false-path circuit, reconstructed from the Example 2
/// narrowing trace: 8 gates of delay `d` (the paper uses `d = 10`), inputs
/// `e1…e7`, output `s`.
///
/// Structure (input `e3` is shared between `g2` and `g6` — the false-path
/// mechanism):
///
/// ```text
/// g1 = AND(e1, e2) → n1      g5 = AND(n4, e6) → n5
/// g2 = AND(n1, e3) → n2      g6 = OR (n4, e3) → n6
/// g3 = OR (n2, e4) → n3      g7 = AND(n6, e7) → n7
/// g4 = AND(n3, e5) → n4      g8 = OR (n7, n5) → s
/// ```
///
/// With `d = 10`: topological delay 70; the path
/// `{n1, g2, n2, g3, n3, g4, n4, g6, n6, g7, n7, g8, s}` is false and the
/// floating-mode delay is 60.
///
/// # Examples
///
/// ```
/// use ltt_netlist::generators::figure1;
///
/// let c = figure1(10);
/// assert_eq!(c.topological_delay(), 70);
/// assert_eq!(c.num_gates(), 8);
/// ```
pub fn figure1(delay: u32) -> Circuit {
    let d = DelayInterval::fixed(delay);
    let mut b = CircuitBuilder::new("figure1");
    let e: Vec<NetId> = (1..=7).map(|i| b.input(format!("e{i}"))).collect();
    let n1 = b.gate("n1", GateKind::And, &[e[0], e[1]], d);
    let n2 = b.gate("n2", GateKind::And, &[n1, e[2]], d);
    let n3 = b.gate("n3", GateKind::Or, &[n2, e[3]], d);
    let n4 = b.gate("n4", GateKind::And, &[n3, e[4]], d);
    let n5 = b.gate("n5", GateKind::And, &[n4, e[5]], d);
    let n6 = b.gate("n6", GateKind::Or, &[n4, e[2]], d);
    let n7 = b.gate("n7", GateKind::And, &[n6, e[6]], d);
    let s = b.gate("s", GateKind::Or, &[n7, n5], d);
    b.mark_output(s);
    b.build().expect("figure1 circuit is structurally valid")
}

/// A generalized Hrapcenko-style false-path chain.
///
/// The circuit is a prefix chain of `prefix` gates feeding two branches
/// that reconverge at a final OR: a long branch of `long_branch` gates and
/// a short branch of one gate. A primary input `shared` is read by both the
/// *last* prefix gate (an AND, requiring it to settle at 1 to carry a late
/// event into the branches) and the first long-branch gate (an OR,
/// requiring it to settle at 0 for the branch to stay transparent), so
/// **every** path through that gate pair — in particular every path longer
/// than the short route — is false.
///
/// Attaching the conflict at the *last* prefix gate matters: it also blocks
/// the late zero-ripple that would otherwise travel from `shared` down the
/// whole chain into the long branch (a 0 entering the last AND settles it
/// immediately via the controlling-input rule, and a 1 there satisfies the
/// OR's controlling input early).
///
/// With per-gate delay `d`:
///
/// * topological delay `top = (prefix + long_branch + 1) · d`;
/// * floating-mode delay `(prefix + 2) · d` (prefix + short branch + final
///   gate), for any `1 ≤ long_branch ≤ prefix + 1`.
///
/// The gap between the two is therefore `(long_branch − 1) · d`, tunable to
/// match a target exact-vs-topological delay difference. (These delays are
/// pinned against the exhaustive floating-mode oracle in `ltt-sta`'s
/// tests.)
///
/// # Panics
///
/// Panics unless `prefix ≥ 2` and `1 ≤ long_branch ≤ prefix + 1`.
///
/// # Examples
///
/// ```
/// use ltt_netlist::generators::false_path_chain;
///
/// let c = false_path_chain(4, 2, 10);
/// assert_eq!(c.topological_delay(), 70); // floating delay is 60
/// ```
pub fn false_path_chain(prefix: usize, long_branch: usize, delay: u32) -> Circuit {
    assert!(prefix >= 2, "prefix must have at least 2 gates");
    assert!(
        (1..=prefix + 1).contains(&long_branch),
        "long_branch must be in 1..=prefix+1 so the short path stays sensitizable"
    );
    let d = DelayInterval::fixed(delay);
    let mut b = CircuitBuilder::new(format!("false_path_{prefix}_{long_branch}"));

    let x0 = b.input("x0");
    let x1 = b.input("x1");
    let shared = b.input("shared");

    // Prefix chain: n1 = AND(x0, x1); then alternate AND/OR with fresh side
    // inputs; the last prefix gate is an AND reading `shared`.
    let mut n = b.gate("n1", GateKind::And, &[x0, x1], d);
    for i in 2..prefix {
        let side = b.input(format!("p{i}"));
        let kind = if i % 2 == 1 {
            GateKind::Or
        } else {
            GateKind::And
        };
        n = b.gate(format!("n{i}"), kind, &[n, side], d);
    }
    n = b.gate(format!("n{prefix}"), GateKind::And, &[n, shared], d);

    // Short branch: one AND with a fresh side input.
    let sb_side = b.input("sb");
    let short = b.gate("short", GateKind::And, &[n, sb_side], d);

    // Long branch: OR with the shared (conflicting) input, then ANDs.
    // With long_branch = 1 there is no gap to create (top = floating), so
    // the OR takes a fresh, conflict-free side input instead.
    let branch_side = if long_branch >= 2 {
        shared
    } else {
        b.input("q1")
    };
    let mut a = b.gate("a1", GateKind::Or, &[n, branch_side], d);
    for j in 2..=long_branch {
        let side = b.input(format!("q{j}"));
        a = b.gate(format!("a{j}"), GateKind::And, &[a, side], d);
    }

    let s = b.gate("s", GateKind::Or, &[a, short], d);
    b.mark_output(s);
    b.build().expect("false-path chain is structurally valid")
}

/// A *forked* false-path chain: like [`false_path_chain`], but the long
/// branch splits into two parallel, equally long, equally falsified chains
/// that reconverge at an OR before the final gate.
///
/// The reconvergence makes the backward last-transition propagation
/// ambiguous at the merge (either arm could carry the violation), so plain
/// local narrowing stalls — but every long path still runs through the last
/// prefix gate, which is therefore a *timing dominator*; the Corollary 1
/// narrowing there exposes the conflict. This is the gadget that exercises
/// the paper's "global implications on timing dominators" stage (the
/// c1908/c3540 pattern in Table 1).
///
/// With per-gate delay `d`: topological delay `(prefix + long_branch + 1)·d`
/// and floating-mode delay `(prefix + 2)·d` (validated against the
/// exhaustive oracle in `ltt-sta`'s tests), for
/// `3 ≤ long_branch ≤ prefix + 1` (each arm needs at least one masking AND
/// after its falsified OR, hence the lower bound).
///
/// # Panics
///
/// Panics unless `prefix ≥ 2` and `3 ≤ long_branch ≤ prefix + 1`.
///
/// # Examples
///
/// ```
/// use ltt_netlist::generators::forked_false_path_chain;
///
/// let c = forked_false_path_chain(6, 3, 10);
/// assert_eq!(c.topological_delay(), 100); // floating delay is 80
/// ```
pub fn forked_false_path_chain(prefix: usize, long_branch: usize, delay: u32) -> Circuit {
    assert!(prefix >= 2, "prefix must have at least 2 gates");
    assert!(
        (3..=prefix + 1).contains(&long_branch),
        "long_branch must be in 3..=prefix+1"
    );
    let d = DelayInterval::fixed(delay);
    let mut b = CircuitBuilder::new(format!("forked_false_path_{prefix}_{long_branch}"));
    let x0 = b.input("x0");
    let x1 = b.input("x1");
    let shared = b.input("shared");
    let mut n = b.gate("n1", GateKind::And, &[x0, x1], d);
    for i in 2..prefix {
        let side = b.input(format!("p{i}"));
        let kind = if i % 2 == 1 {
            GateKind::Or
        } else {
            GateKind::And
        };
        n = b.gate(format!("n{i}"), kind, &[n, side], d);
    }
    n = b.gate(format!("n{prefix}"), GateKind::And, &[n, shared], d);
    let sb = b.input("sb");
    let short = b.gate("short", GateKind::And, &[n, sb], d);
    let mut arms = Vec::with_capacity(2);
    for arm in ["a", "b"] {
        let mut a = b.gate(format!("{arm}1"), GateKind::Or, &[n, shared], d);
        for j in 2..long_branch {
            let side = b.input(format!("{arm}side{j}"));
            a = b.gate(format!("{arm}{j}"), GateKind::And, &[a, side], d);
        }
        arms.push(a);
    }
    let merge = b.gate("merge", GateKind::Or, &[arms[0], arms[1]], d);
    let s = b.gate("s", GateKind::Or, &[merge, short], d);
    b.mark_output(s);
    b.build().expect("forked chain is structurally valid")
}

/// A stem-conflict circuit: a multiplexer cone whose two data chains are
/// each transparent only under *opposite* settling values of the select
/// stem `y`, OR-ed with an always-true chain that is one level shorter.
///
/// Every path longer than the true chain runs through the mux cone and
/// needs `y` to settle both ways, but no single net dominates those paths
/// (the two mux arms are disjoint), so neither local narrowing nor the
/// dominator implications can prove the check — only splitting on the
/// reconvergent stem `y` (*stem correlation*) does. This is the gadget for
/// the paper's c2670/c6288 pattern in Table 1.
///
/// With per-gate delay `d`: topological delay `depth·d` and floating-mode
/// delay `(depth − 1)·d`, for `depth ≥ 6`.
///
/// # Panics
///
/// Panics if `depth < 6`.
///
/// # Examples
///
/// ```
/// use ltt_netlist::generators::stem_conflict_circuit;
///
/// let c = stem_conflict_circuit(8, 10);
/// assert_eq!(c.topological_delay(), 80); // floating delay is 70
/// ```
pub fn stem_conflict_circuit(depth: usize, delay: u32) -> Circuit {
    assert!(depth >= 6, "stem-conflict circuit needs depth >= 6");
    let d = DelayInterval::fixed(delay);
    let mut b = CircuitBuilder::new(format!("stem_conflict_{depth}"));
    let y = b.input("y");
    let ny = b.gate("ny", GateKind::Not, &[y], d);
    let xa = b.input("xa");
    let xb = b.input("xb");
    // Two mux data chains of depth − 3 gates each. The A chain is
    // transparent iff y settles 0 (OR stages read y); the B chain iff y
    // settles 1 (AND stages read y). The inverter ny is only a *side*
    // input of the mux AND, so it adds no path length.
    let chain = depth - 3;
    let mut a = xa;
    let mut bb = xb;
    for j in 0..chain {
        if j % 2 == 0 {
            a = b.gate(format!("a{j}"), GateKind::Or, &[a, y], d);
            bb = b.gate(format!("b{j}"), GateKind::And, &[bb, y], d);
        } else {
            let fa = b.input(format!("fa{j}"));
            let fb = b.input(format!("fb{j}"));
            a = b.gate(format!("a{j}"), GateKind::And, &[a, fa], d);
            bb = b.gate(format!("b{j}"), GateKind::Or, &[bb, fb], d);
        }
    }
    let m1 = b.gate("m1", GateKind::And, &[a, y], d);
    let m2 = b.gate("m2", GateKind::And, &[bb, ny], d);
    let mux = b.gate("mux", GateKind::Or, &[m1, m2], d);
    // The true chain: depth − 2 gates, fully sensitizable.
    let mut t = b.input("t0");
    for i in 1..=depth - 2 {
        let side = b.input(format!("t{i}"));
        let kind = if i % 2 == 1 {
            GateKind::And
        } else {
            GateKind::Or
        };
        t = b.gate(format!("tc{i}"), kind, &[t, side], d);
    }
    let s = b.gate("s", GateKind::Or, &[mux, t], d);
    b.mark_output(s);
    b.build()
        .expect("stem-conflict circuit is structurally valid")
}

/// `k` serial copies of the Figure-1-style false-path gadget — the
/// path-enumeration blow-up workload (the paper's §1 motivation).
///
/// Each gadget is a 4-gate prefix whose last AND reads a `shared` input,
/// followed by a short (1-gate) and a long (2-gate) branch reconverging at
/// an OR; the long branch's first gate is an OR reading the *same*
/// `shared` input, so every path through it is false, exactly as in
/// [`false_path_chain`]. Chaining `k` gadgets multiplies the number of
/// paths longer than the exact delay exponentially, while the exact delay
/// itself stays linear:
///
/// * topological delay `7·k·d`;
/// * floating-mode delay `6·k·d` (validated against the exhaustive oracle
///   for small `k` in the integration tests).
///
/// A path-oriented verifier must refute each long path individually; the
/// waveform narrower settles the `δ = 6·k·d + 1` check with near-linear
/// work. The instance is also the stock stress workload for wall-clock
/// budget tests (`--deadline-ms` smoke runs).
///
/// # Panics
///
/// Panics if `k` is 0.
///
/// # Examples
///
/// ```
/// use ltt_netlist::generators::serial_false_path_gadgets;
///
/// let c = serial_false_path_gadgets(2, 10);
/// assert_eq!(c.topological_delay(), 140); // floating delay is 120
/// ```
pub fn serial_false_path_gadgets(k: usize, delay: u32) -> Circuit {
    assert!(k > 0, "need at least one gadget");
    let mut b = CircuitBuilder::new(format!("serial{k}"));
    let feed = append_gadget_chain(&mut b, "", k, delay);
    b.mark_output(feed);
    b.build().expect("serial gadget chain is valid")
}

/// Appends one `k`-gadget chain (the [`serial_false_path_gadgets`] body)
/// to `b`, with every net name prefixed by `prefix`, and returns the
/// chain's final net.
fn append_gadget_chain(b: &mut CircuitBuilder, prefix: &str, k: usize, delay: u32) -> NetId {
    let d = DelayInterval::fixed(delay);
    let mut feed = b.input(format!("{prefix}x0"));
    for g in 0..k {
        let x1 = b.input(format!("{prefix}x1_{g}"));
        let shared = b.input(format!("{prefix}sh_{g}"));
        let mut n = b.gate(format!("{prefix}n1_{g}"), GateKind::And, &[feed, x1], d);
        for i in 2..4 {
            let side = b.input(format!("{prefix}p{i}_{g}"));
            let kind = if i % 2 == 1 {
                GateKind::Or
            } else {
                GateKind::And
            };
            n = b.gate(format!("{prefix}n{i}_{g}"), kind, &[n, side], d);
        }
        n = b.gate(format!("{prefix}n4_{g}"), GateKind::And, &[n, shared], d);
        let sb = b.input(format!("{prefix}sb_{g}"));
        let short = b.gate(format!("{prefix}short_{g}"), GateKind::And, &[n, sb], d);
        let a1 = b.gate(format!("{prefix}a1_{g}"), GateKind::Or, &[n, shared], d);
        let q2 = b.input(format!("{prefix}q2_{g}"));
        let a2 = b.gate(format!("{prefix}a2_{g}"), GateKind::And, &[a1, q2], d);
        feed = b.gate(format!("{prefix}s_{g}"), GateKind::Or, &[a2, short], d);
    }
    feed
}

/// `chains` structurally independent copies of the `k`-gadget serial
/// chain, each with its own primary output — the **parallel** blow-up
/// workload. The circuit holds `chains·k` gadgets in total, but any
/// single output's transitive fanin cone is exactly one chain
/// (`1/chains` of the gates): the contrast cone-sliced checking
/// exploits, while a whole-circuit session narrows all the chains for
/// every check.
///
/// Per output: topological delay `7·k·d`, floating-mode delay `6·k·d`
/// (each chain is exactly [`serial_false_path_gadgets`]).
///
/// # Panics
///
/// Panics if `chains` or `k` is 0.
///
/// # Examples
///
/// ```
/// use ltt_netlist::generators::parallel_false_path_gadgets;
///
/// let c = parallel_false_path_gadgets(4, 2, 10);
/// assert_eq!(c.outputs().len(), 4);
/// assert_eq!(c.topological_delay(), 140); // per chain, same as serial
/// ```
pub fn parallel_false_path_gadgets(chains: usize, k: usize, delay: u32) -> Circuit {
    assert!(chains > 0, "need at least one chain");
    assert!(k > 0, "need at least one gadget");
    let mut b = CircuitBuilder::new(format!("parallel{chains}x{k}"));
    for ch in 0..chains {
        let feed = append_gadget_chain(&mut b, &format!("c{ch}_"), k, delay);
        b.mark_output(feed);
    }
    b.build().expect("parallel gadget chains are valid")
}

/// The classic shared-select multiplexer chain — the textbook false-path
/// structure built from the [`GateKind::Mux`] complex gate.
///
/// `stages` MUX gates share one select `s`; the data chain enters the
/// `a` port (needs `s = 0`) on even stages and the `b` port (needs
/// `s = 1`) on odd stages, so the full chain path requires the select to
/// settle both ways and is statically false whenever `stages ≥ 2`. Every
/// stage's bypass port takes a fresh input. The floating-mode delay is
/// capped at *two* MUX levels for `stages ≥ 2` (a settled select lets at
/// most one not-yet-stable stage output propagate one level further) —
/// pinned against the exhaustive oracle in `ltt-sta`'s tests.
///
/// # Panics
///
/// Panics if `stages` is 0.
///
/// # Examples
///
/// ```
/// use ltt_netlist::generators::shared_select_mux_chain;
///
/// let c = shared_select_mux_chain(4, 10);
/// assert_eq!(c.topological_delay(), 40);
/// ```
pub fn shared_select_mux_chain(stages: usize, delay: u32) -> Circuit {
    assert!(stages > 0, "need at least one mux stage");
    let d = DelayInterval::fixed(delay);
    let mut b = CircuitBuilder::new(format!("mux_chain_{stages}"));
    let sel = b.input("sel");
    let mut chain = b.input("x0");
    for i in 0..stages {
        let bypass = b.input(format!("e{i}"));
        chain = if i % 2 == 0 {
            b.gate(format!("m{i}"), GateKind::Mux, &[sel, chain, bypass], d)
        } else {
            b.gate(format!("m{i}"), GateKind::Mux, &[sel, bypass, chain], d)
        };
    }
    b.mark_output(chain);
    b.build().expect("mux chain is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape() {
        let c = figure1(10);
        assert_eq!(c.inputs().len(), 7);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.num_gates(), 8);
        assert_eq!(c.topological_delay(), 70);
        assert_eq!(c.depth(), 7);
    }

    #[test]
    fn figure1_function_spot_checks() {
        let c = figure1(10);
        // All inputs 1: n1..n4 = 1, n5 = 1, s = 1.
        assert_eq!(c.evaluate(&[true; 7]), vec![true]);
        // e3 = 0 blocks n2, but n6 = OR(n4, 0) = n4 and n4 needs n3…
        // e4 = 1 keeps n3 = 1, so with e1..e7 = 1 except e3:
        let mut v = [true; 7];
        v[2] = false;
        assert_eq!(c.evaluate(&v), vec![true]);
        // Everything 0: s = 0.
        assert_eq!(c.evaluate(&[false; 7]), vec![false]);
    }

    #[test]
    fn parallel_gadgets_split_into_disjoint_strict_cones() {
        let per_chain = serial_false_path_gadgets(2, 10).num_gates();
        let c = parallel_false_path_gadgets(3, 2, 10);
        assert_eq!(c.outputs().len(), 3);
        assert_eq!(c.num_gates(), 3 * per_chain);
        assert_eq!(c.topological_delay(), 140);
        for &o in c.outputs() {
            let view = crate::ConeView::extract(&c, o);
            assert!(!view.is_complete(), "each cone is a strict subset");
            assert_eq!(view.gates().len(), per_chain, "each cone is one chain");
        }
    }

    #[test]
    fn chain_has_figure1_dimensions_when_p4_q2() {
        let c = false_path_chain(4, 2, 10);
        assert_eq!(c.num_gates(), 8);
        assert_eq!(c.inputs().len(), 7);
        assert_eq!(c.topological_delay(), 70);
    }

    #[test]
    fn chain_gap_scales_with_long_branch() {
        for q in 1..=5 {
            let c = false_path_chain(6, q, 10);
            assert_eq!(c.topological_delay(), 10 * (6 + q as i64 + 1));
        }
    }

    #[test]
    #[should_panic]
    fn chain_rejects_too_long_branch() {
        let _ = false_path_chain(2, 4, 10);
    }

    #[test]
    fn chain_shared_input_fans_out() {
        let c = false_path_chain(5, 3, 10);
        let shared = c.net_by_name("shared").unwrap();
        assert!(c.net(shared).is_fanout_stem());
        assert!(c.is_reconvergent_stem(shared));
    }
}
