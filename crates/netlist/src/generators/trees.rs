//! Balanced tree and cascade generators: parity (XOR) trees, AND/OR
//! reduction trees, and gate cascades.
//!
//! XOR trees are the computational core of the ISCAS'85 error-correcting
//! circuits (c499/c1355); their longest paths are true, which makes them
//! good control circuits (exact floating delay = topological delay).

use crate::{Circuit, CircuitBuilder, DelayInterval, GateKind, NetId};

/// Builds a balanced binary reduction tree over `leaves` inside `builder`,
/// using `kind` (must be a 2-input-capable kind) and per-gate delay
/// `delay`; returns the root net.
///
/// # Panics
///
/// Panics if `leaves` is empty.
pub fn reduce_tree(
    builder: &mut CircuitBuilder,
    prefix: &str,
    kind: GateKind,
    leaves: &[NetId],
    delay: u32,
) -> NetId {
    assert!(!leaves.is_empty(), "tree needs at least one leaf");
    let d = DelayInterval::fixed(delay);
    let mut layer: Vec<NetId> = leaves.to_vec();
    let mut counter = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                counter += 1;
                next.push(builder.gate(
                    format!("{prefix}_t{counter}"),
                    kind,
                    &[pair[0], pair[1]],
                    d,
                ));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    layer[0]
}

/// Generates an `n`-input parity tree (balanced XOR tree) with per-gate
/// delay `delay`. Every path in a parity tree is sensitizable, so the
/// floating-mode delay equals the topological delay.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use ltt_netlist::generators::parity_tree;
///
/// let c = parity_tree(8, 10);
/// assert_eq!(c.depth(), 3);
/// // Odd number of ones ⇒ parity 1.
/// let mut v = vec![false; 8];
/// v[3] = true;
/// assert_eq!(c.evaluate(&v), vec![true]);
/// ```
pub fn parity_tree(n: usize, delay: u32) -> Circuit {
    assert!(n >= 2, "parity tree needs at least 2 inputs");
    let mut b = CircuitBuilder::new(format!("parity{n}"));
    let leaves: Vec<NetId> = (0..n).map(|i| b.input(format!("x{i}"))).collect();
    let root = reduce_tree(&mut b, "p", GateKind::Xor, &leaves, delay);
    b.mark_output(root);
    b.build().expect("parity tree is structurally valid")
}

/// Generates a chain (cascade) of `len` gates of the given kind, each with
/// a fresh side input: `n_i = kind(n_{i−1}, e_i)`. The chain's longest path
/// is trivially true.
///
/// # Panics
///
/// Panics if `len` is 0 or `kind` cannot take 2 inputs.
///
/// # Examples
///
/// ```
/// use ltt_netlist::generators::cascade;
/// use ltt_netlist::GateKind;
///
/// let c = cascade(GateKind::And, 5, 10);
/// assert_eq!(c.topological_delay(), 50);
/// assert_eq!(c.evaluate(&[true; 6]), vec![true]);
/// ```
pub fn cascade(kind: GateKind, len: usize, delay: u32) -> Circuit {
    assert!(len > 0, "cascade length must be positive");
    assert!(kind.arity_ok(2), "cascade requires a 2-input gate kind");
    let d = DelayInterval::fixed(delay);
    let mut b = CircuitBuilder::new(format!("cascade_{}{len}", kind.name()));
    let mut n = b.input("e0");
    for i in 1..=len {
        let side = b.input(format!("e{i}"));
        n = b.gate(format!("n{i}"), kind, &[n, side], d);
    }
    b.mark_output(n);
    b.build().expect("cascade is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_matches_popcount() {
        let c = parity_tree(6, 10);
        for v in 0..64u32 {
            let bits: Vec<bool> = (0..6).map(|i| (v >> i) & 1 == 1).collect();
            let expected = v.count_ones() % 2 == 1;
            assert_eq!(c.evaluate(&bits), vec![expected]);
        }
    }

    #[test]
    fn parity_depth_is_logarithmic() {
        assert_eq!(parity_tree(2, 10).depth(), 1);
        assert_eq!(parity_tree(4, 10).depth(), 2);
        assert_eq!(parity_tree(5, 10).depth(), 3);
        assert_eq!(parity_tree(32, 10).depth(), 5);
    }

    #[test]
    fn cascade_logic() {
        let c = cascade(GateKind::Or, 3, 10);
        assert_eq!(c.evaluate(&[false; 4]), vec![false]);
        assert_eq!(c.evaluate(&[false, false, true, false]), vec![true]);
    }

    #[test]
    fn reduce_tree_single_leaf_is_identity() {
        let mut b = CircuitBuilder::new("t");
        let x = b.input("x");
        let root = reduce_tree(&mut b, "r", GateKind::And, &[x], 10);
        assert_eq!(root, x);
    }
}
