//! Circuit generators: the paper's example circuits, classic arithmetic
//! structures, and random DAGs.
//!
//! * [`figure1`] / [`false_path_chain`] — the paper's Figure 1 false-path
//!   circuit and its generalization with a tunable delay gap;
//! * [`ripple_carry_adder`] / [`carry_skip_adder`] — Figure 2's carry-skip
//!   adder (false ripple path) and the ripple-carry control;
//! * [`array_multiplier`] — the c6288-style array multiplier;
//! * [`parity_tree`] / [`cascade`] / [`reduce_tree`] — true-path control
//!   structures;
//! * [`random_circuit`] — seeded pseudo-random DAGs.

mod adders;
mod false_path;
mod multiplier;
mod random_dag;
mod trees;

pub use adders::{adder_sum, carry_skip_adder, ripple_carry_adder};
pub use false_path::{
    false_path_chain, figure1, forked_false_path_chain, parallel_false_path_gadgets,
    serial_false_path_gadgets, shared_select_mux_chain, stem_conflict_circuit,
};
pub use multiplier::array_multiplier;
pub use random_dag::{random_circuit, RandomCircuitConfig};
pub use trees::{cascade, parity_tree, reduce_tree};
