//! Gate-level circuit representation: a DAG of gates connected by delayless
//! nets (§2 of the paper), plus a builder with validation.

use crate::topology::Topology;
use crate::{DelayInterval, GateKind};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Identifier of a net (edge) in a [`Circuit`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The dense index of this net (0-based, valid for the owning circuit).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NetId` from a dense index. Only meaningful for indices
    /// obtained from the same circuit.
    pub fn from_index(i: usize) -> NetId {
        NetId(u32::try_from(i).expect("net index fits in u32"))
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a gate (vertex) in a [`Circuit`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// The dense index of this gate (0-based, valid for the owning circuit).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `GateId` from a dense index. Only meaningful for indices
    /// obtained from the same circuit.
    pub fn from_index(i: usize) -> GateId {
        GateId(u32::try_from(i).expect("gate index fits in u32"))
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A net: a named wire with at most one driving gate and any number of
/// reader gates.
#[derive(Clone, Debug)]
pub struct Net {
    name: String,
    driver: Option<GateId>,
    readers: Vec<GateId>,
}

impl Net {
    /// Assembles a net from parts (cone extraction / editing internals).
    pub(crate) fn from_parts(name: String, driver: Option<GateId>, readers: Vec<GateId>) -> Net {
        Net {
            name,
            driver,
            readers,
        }
    }

    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The gate driving this net, or `None` for a primary input.
    pub fn driver(&self) -> Option<GateId> {
        self.driver
    }

    /// The gates reading this net (its fanout).
    pub fn readers(&self) -> &[GateId] {
        &self.readers
    }

    /// Whether the net fans out to more than one reader — a *fanout stem*.
    pub fn is_fanout_stem(&self) -> bool {
        self.readers.len() > 1
    }
}

/// A gate instance: kind, ordered input nets, single output net, delay.
#[derive(Clone, Debug)]
pub struct Gate {
    kind: GateKind,
    inputs: Vec<NetId>,
    output: NetId,
    delay: DelayInterval,
}

impl Gate {
    /// Assembles a gate from parts (cone extraction internals).
    pub(crate) fn from_parts(
        kind: GateKind,
        inputs: Vec<NetId>,
        output: NetId,
        delay: DelayInterval,
    ) -> Gate {
        Gate {
            kind,
            inputs,
            output,
            delay,
        }
    }

    /// The gate's kind.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The gate's input nets, in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The gate's output net.
    pub fn output(&self) -> NetId {
        self.output
    }

    /// The gate's delay interval.
    pub fn delay(&self) -> DelayInterval {
        self.delay
    }

    /// The maximum delay `d_max` — the bound used by the floating-mode
    /// delay calculation.
    pub fn dmax(&self) -> u32 {
        self.delay.max()
    }
}

/// Errors detected when finalizing a [`CircuitBuilder`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildCircuitError {
    /// The gate graph contains a combinational cycle through the named net.
    Cycle(String),
    /// A net is neither a primary input nor driven by any gate.
    UndrivenNet(String),
    /// A net is driven by two gates.
    MultipleDrivers(String),
    /// A declared primary input is also driven by a gate.
    DrivenInput(String),
    /// The circuit declares no primary output.
    NoOutputs,
    /// A gate was given an invalid number of inputs for its kind.
    BadArity {
        /// The offending gate kind.
        kind: GateKind,
        /// The number of inputs supplied.
        arity: usize,
        /// The gate's output net name.
        output: String,
    },
}

impl fmt::Display for BuildCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCircuitError::Cycle(n) => write!(f, "combinational cycle through net `{n}`"),
            BuildCircuitError::UndrivenNet(n) => {
                write!(f, "net `{n}` is neither an input nor driven by a gate")
            }
            BuildCircuitError::MultipleDrivers(n) => write!(f, "net `{n}` has multiple drivers"),
            BuildCircuitError::DrivenInput(n) => {
                write!(f, "primary input `{n}` is also driven by a gate")
            }
            BuildCircuitError::NoOutputs => write!(f, "circuit declares no primary output"),
            BuildCircuitError::BadArity {
                kind,
                arity,
                output,
            } => write!(
                f,
                "gate {kind} driving `{output}` cannot take {arity} inputs"
            ),
        }
    }
}

impl Error for BuildCircuitError {}

/// An immutable, validated combinational circuit.
///
/// Construct one with [`CircuitBuilder`], the ISCAS
/// [`.bench` parser](crate::bench_format::parse_bench), or one of the
/// [generators](crate::generators).
///
/// # Examples
///
/// ```
/// use ltt_netlist::{Circuit, CircuitBuilder, DelayInterval, GateKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::new("half_adder");
/// let a = b.input("a");
/// let c = b.input("b");
/// let sum = b.gate("sum", GateKind::Xor, &[a, c], DelayInterval::fixed(10));
/// let carry = b.gate("carry", GateKind::And, &[a, c], DelayInterval::fixed(10));
/// b.mark_output(sum);
/// b.mark_output(carry);
/// let circuit: Circuit = b.build()?;
/// assert_eq!(circuit.num_gates(), 2);
/// assert_eq!(circuit.evaluate(&[true, true]), vec![false, true]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Circuit {
    name: String,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    topo_gates: Vec<GateId>,
    by_name: HashMap<String, NetId>,
    /// Lazily built flat connectivity tables (see [`Topology`]). Cloning a
    /// circuit shares the cache; anything that edits the circuit after
    /// build ([`Circuit::with_delays`]) must reset it.
    topology: OnceLock<Arc<Topology>>,
}

impl Circuit {
    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// The net with the given id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// The gate with the given id.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// All net ids, in dense order.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len()).map(NetId::from_index)
    }

    /// All gate ids, in dense order.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.gates.len()).map(GateId::from_index)
    }

    /// The primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The primary outputs, in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Whether the net is a primary input.
    pub fn is_input(&self, id: NetId) -> bool {
        self.nets[id.index()].driver.is_none()
    }

    /// Whether the net is a declared primary output.
    pub fn is_output(&self, id: NetId) -> bool {
        self.outputs.contains(&id)
    }

    /// Looks up a net by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.by_name.get(name).copied()
    }

    /// The gates in a topological order (drivers before readers).
    pub fn topo_gates(&self) -> &[GateId] {
        &self.topo_gates
    }

    /// Functional (zero-delay) evaluation: applies `vector` to the primary
    /// inputs (in declaration order) and returns the primary output values
    /// (in declaration order).
    ///
    /// # Panics
    ///
    /// Panics if `vector.len()` differs from the number of inputs.
    pub fn evaluate(&self, vector: &[bool]) -> Vec<bool> {
        let values = self.evaluate_all(vector);
        self.outputs.iter().map(|&o| values[o.index()]).collect()
    }

    /// Functional (zero-delay) evaluation returning the value of every net,
    /// indexed by [`NetId::index`].
    ///
    /// # Panics
    ///
    /// Panics if `vector.len()` differs from the number of inputs.
    pub fn evaluate_all(&self, vector: &[bool]) -> Vec<bool> {
        assert_eq!(
            vector.len(),
            self.inputs.len(),
            "input vector length mismatch"
        );
        let mut values = vec![false; self.nets.len()];
        for (&net, &v) in self.inputs.iter().zip(vector) {
            values[net.index()] = v;
        }
        let mut buf = Vec::new();
        for &gid in &self.topo_gates {
            let gate = &self.gates[gid.index()];
            buf.clear();
            buf.extend(gate.inputs.iter().map(|&n| values[n.index()]));
            values[gate.output.index()] = gate.kind.eval(&buf);
        }
        values
    }

    /// Total number of fanout stems (nets with more than one reader).
    pub fn num_fanout_stems(&self) -> usize {
        self.nets.iter().filter(|n| n.is_fanout_stem()).count()
    }

    /// Returns a copy of the circuit with every gate's delay replaced by
    /// `delays(gate_id, gate)` — the hook used by SDF back-annotation.
    ///
    /// # Examples
    ///
    /// ```
    /// use ltt_netlist::{CircuitBuilder, DelayInterval, GateKind};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = CircuitBuilder::new("c");
    /// let a = b.input("a");
    /// let y = b.gate("y", GateKind::Not, &[a], DelayInterval::fixed(10));
    /// b.mark_output(y);
    /// let c = b.build()?;
    /// let slow = c.with_delays(|_, _| DelayInterval::fixed(25));
    /// assert_eq!(slow.topological_delay(), 25);
    /// # Ok(())
    /// # }
    /// ```
    pub fn with_delays(&self, mut delays: impl FnMut(GateId, &Gate) -> DelayInterval) -> Circuit {
        let mut out = self.clone();
        // The clone shares this circuit's cached topology, whose delay
        // table is about to go stale: drop it so the copy rebuilds.
        out.topology = OnceLock::new();
        for (i, gate) in out.gates.iter_mut().enumerate() {
            gate.delay = delays(GateId::from_index(i), gate);
        }
        // Delay edits never change connectivity: if this circuit already
        // built its topology, re-seed the copy's cache with the shared
        // structural Adjacency plane and a fresh delay plane instead of
        // leaving it to rebuild both from scratch.
        if let Some(topo) = self.topology.get() {
            let rebuilt = Topology::with_adjacency(&out, topo.adjacency().clone());
            let _ = out.topology.set(rebuilt);
        }
        out
    }

    /// The circuit's flattened connectivity tables, built lazily at most
    /// once and shared by every caller (the narrower's hot loop runs on
    /// these instead of per-gate heap objects).
    pub fn topology(&self) -> Arc<Topology> {
        self.topology.get_or_init(|| Topology::build(self)).clone()
    }
}

/// Incremental builder for [`Circuit`] with support for forward references
/// (needed by netlist parsers).
#[derive(Clone, Debug, Default)]
pub struct CircuitBuilder {
    name: String,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    by_name: HashMap<String, NetId>,
    errors: Vec<BuildCircuitError>,
}

impl CircuitBuilder {
    /// Creates an empty builder for a circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declares (or retrieves) a net by name, without driving it. Useful
    /// for forward references while parsing.
    pub fn net(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        let id = NetId::from_index(self.nets.len());
        self.by_name.insert(name.clone(), id);
        self.nets.push(Net {
            name,
            driver: None,
            readers: Vec::new(),
        });
        id
    }

    /// Declares a primary input net.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.net(name);
        if !self.inputs.contains(&id) {
            self.inputs.push(id);
        }
        id
    }

    /// Adds a gate driving a freshly named (or forward-declared) output net
    /// and returns that net.
    pub fn gate(
        &mut self,
        output: impl Into<String>,
        kind: GateKind,
        inputs: &[NetId],
        delay: DelayInterval,
    ) -> NetId {
        let out = self.net(output);
        self.drive(out, kind, inputs, delay);
        out
    }

    /// Drives an existing net with a gate. Records (rather than panics on)
    /// structural errors; they surface from [`CircuitBuilder::build`].
    pub fn drive(&mut self, output: NetId, kind: GateKind, inputs: &[NetId], delay: DelayInterval) {
        if !kind.arity_ok(inputs.len()) {
            self.errors.push(BuildCircuitError::BadArity {
                kind,
                arity: inputs.len(),
                output: self.nets[output.index()].name.clone(),
            });
            return;
        }
        if self.nets[output.index()].driver.is_some() {
            self.errors.push(BuildCircuitError::MultipleDrivers(
                self.nets[output.index()].name.clone(),
            ));
            return;
        }
        let gid = GateId::from_index(self.gates.len());
        self.nets[output.index()].driver = Some(gid);
        for &i in inputs {
            self.nets[i.index()].readers.push(gid);
        }
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
            delay,
        });
    }

    /// Marks a net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        if !self.outputs.contains(&net) {
            self.outputs.push(net);
        }
    }

    /// Validates and finalizes the circuit.
    ///
    /// # Errors
    ///
    /// Returns the first structural error found: recorded gate errors,
    /// driven inputs, undriven internal nets, missing outputs, or a
    /// combinational cycle.
    pub fn build(self) -> Result<Circuit, BuildCircuitError> {
        let CircuitBuilder {
            name,
            nets,
            gates,
            inputs,
            outputs,
            by_name,
            errors,
        } = self;
        if let Some(e) = errors.into_iter().next() {
            return Err(e);
        }
        if outputs.is_empty() {
            return Err(BuildCircuitError::NoOutputs);
        }
        for &i in &inputs {
            if nets[i.index()].driver.is_some() {
                return Err(BuildCircuitError::DrivenInput(nets[i.index()].name.clone()));
            }
        }
        for (idx, net) in nets.iter().enumerate() {
            let id = NetId::from_index(idx);
            if net.driver.is_none() && !inputs.contains(&id) {
                return Err(BuildCircuitError::UndrivenNet(net.name.clone()));
            }
        }
        // Kahn topological sort over gates.
        let mut indegree: Vec<usize> = gates
            .iter()
            .map(|g| {
                g.inputs
                    .iter()
                    .filter(|n| nets[n.index()].driver.is_some())
                    .count()
            })
            .collect();
        let mut ready: Vec<GateId> = indegree
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| GateId::from_index(i))
            .collect();
        let mut topo_gates = Vec::with_capacity(gates.len());
        while let Some(gid) = ready.pop() {
            topo_gates.push(gid);
            let out = gates[gid.index()].output;
            for &reader in &nets[out.index()].readers {
                indegree[reader.index()] -= 1;
                if indegree[reader.index()] == 0 {
                    ready.push(reader);
                }
            }
        }
        if topo_gates.len() != gates.len() {
            // Some gate is on a cycle; name one of its nets.
            let stuck = indegree.iter().position(|&d| d > 0).expect("cycle exists");
            let net = gates[stuck].output;
            return Err(BuildCircuitError::Cycle(nets[net.index()].name.clone()));
        }
        Ok(Circuit {
            name,
            nets,
            gates,
            inputs,
            outputs,
            topo_gates,
            by_name,
            topology: OnceLock::new(),
        })
    }
}

/// One local engineering-change-order (ECO) edit applied by
/// [`Circuit::apply_edit`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CircuitEdit {
    /// Gate resize / SDF re-annotation: replace one gate's delay interval.
    SetDelay {
        /// The gate to re-annotate.
        gate: GateId,
        /// Its new delay interval.
        delay: DelayInterval,
    },
    /// Local rewire: replace one gate's input list (same kind and output).
    Rewire {
        /// The gate to rewire.
        gate: GateId,
        /// Its new ordered input nets.
        inputs: Vec<NetId>,
    },
}

/// The result of [`Circuit::apply_edit`]: the edited circuit plus the
/// invalidation contract the incremental layers key off.
#[derive(Clone, Debug)]
pub struct EditOutcome {
    /// The edited circuit (the original is untouched).
    pub circuit: Circuit,
    /// The *dirty nets*: every net whose driving gate's delay or input
    /// list changed (plus, for a rewire, the nets added to or removed from
    /// that input list). An analysis keyed to a fanin cone stays valid iff
    /// the cone contains none of these nets.
    pub dirty: Vec<NetId>,
    /// Whether any edit changed connectivity (a rewire). Delay-only edit
    /// batches keep every structural analysis — adjacency, cones, learned
    /// implications, SCOAP — alive.
    pub structural: bool,
}

/// Errors from [`Circuit::apply_edit`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditError {
    /// A gate id is out of range.
    NoSuchGate(GateId),
    /// A net id in a rewire is out of range.
    NoSuchNet(NetId),
    /// A rewire changed the gate's input count to something its kind
    /// cannot take.
    BadArity {
        /// The gate kind.
        kind: GateKind,
        /// The attempted input count.
        arity: usize,
    },
    /// A rewire created a combinational cycle through the named net.
    Cycle(String),
    /// A rewire made a primary input drive itself through its own cone…
    /// i.e. tried to read a net that the gate's own output feeds — caught
    /// by the cycle check; this variant flags reading the gate's own
    /// output directly.
    SelfLoop(GateId),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::NoSuchGate(g) => write!(f, "no such gate: {g}"),
            EditError::NoSuchNet(n) => write!(f, "no such net: {n}"),
            EditError::BadArity { kind, arity } => {
                write!(f, "gate kind {kind} cannot take {arity} inputs")
            }
            EditError::Cycle(n) => write!(f, "rewire creates a cycle through net `{n}`"),
            EditError::SelfLoop(g) => write!(f, "gate {g} cannot read its own output"),
        }
    }
}

impl Error for EditError {}

impl Circuit {
    /// Assembles a circuit from pre-validated parts (cone extraction).
    /// The caller guarantees consistency: drivers/readers mirror the gate
    /// list, `topo_gates` is a topological order, names are unique.
    pub(crate) fn from_parts(
        name: String,
        nets: Vec<Net>,
        gates: Vec<Gate>,
        inputs: Vec<NetId>,
        outputs: Vec<NetId>,
        topo_gates: Vec<GateId>,
        by_name: HashMap<String, NetId>,
    ) -> Circuit {
        Circuit {
            name,
            nets,
            gates,
            inputs,
            outputs,
            topo_gates,
            by_name,
            topology: OnceLock::new(),
        }
    }

    /// Applies a batch of local ECO edits, returning the edited circuit
    /// together with the dirty net set and a structural flag — the
    /// invalidation contract incremental re-verification builds on (see
    /// DESIGN.md §14).
    ///
    /// Delay-only batches share the cached CSR adjacency with the original
    /// circuit (only the delay plane is rebuilt); rewires re-run the
    /// topological sort and are rejected if they create a cycle.
    ///
    /// # Errors
    ///
    /// [`EditError`] on out-of-range ids, arity violations, or a rewire
    /// that creates a combinational cycle. On error the original circuit
    /// is unchanged and no partial edit escapes.
    pub fn apply_edit(&self, edits: &[CircuitEdit]) -> Result<EditOutcome, EditError> {
        let mut out = self.clone();
        out.topology = OnceLock::new();
        let mut dirty: Vec<NetId> = Vec::new();
        let mut structural = false;
        for edit in edits {
            match edit {
                CircuitEdit::SetDelay { gate, delay } => {
                    let g = out
                        .gates
                        .get_mut(gate.index())
                        .ok_or(EditError::NoSuchGate(*gate))?;
                    if g.delay != *delay {
                        g.delay = *delay;
                        dirty.push(g.output);
                    }
                }
                CircuitEdit::Rewire { gate, inputs } => {
                    let arity_kind = out
                        .gates
                        .get(gate.index())
                        .ok_or(EditError::NoSuchGate(*gate))?
                        .kind;
                    if !arity_kind.arity_ok(inputs.len()) {
                        return Err(EditError::BadArity {
                            kind: arity_kind,
                            arity: inputs.len(),
                        });
                    }
                    for &n in inputs {
                        if n.index() >= out.nets.len() {
                            return Err(EditError::NoSuchNet(n));
                        }
                    }
                    let output = out.gates[gate.index()].output;
                    if inputs.contains(&output) {
                        return Err(EditError::SelfLoop(*gate));
                    }
                    let old_inputs = out.gates[gate.index()].inputs.clone();
                    if old_inputs == *inputs {
                        continue;
                    }
                    structural = true;
                    // Detach from old input nets' reader lists, attach to
                    // the new ones (appended, like the builder does).
                    for &n in &old_inputs {
                        let readers = &mut out.nets[n.index()].readers;
                        if let Some(pos) = readers.iter().position(|r| r == gate) {
                            readers.remove(pos);
                        }
                    }
                    for &n in inputs {
                        out.nets[n.index()].readers.push(*gate);
                    }
                    out.gates[gate.index()].inputs = inputs.clone();
                    dirty.push(output);
                    for &n in &old_inputs {
                        if !inputs.contains(&n) {
                            dirty.push(n);
                        }
                    }
                    for &n in inputs {
                        if !old_inputs.contains(&n) {
                            dirty.push(n);
                        }
                    }
                }
            }
        }
        dirty.sort_unstable();
        dirty.dedup();
        if structural {
            // Re-run the Kahn sort: a rewire may reorder dependencies or
            // create a cycle.
            let mut indegree: Vec<usize> = out
                .gates
                .iter()
                .map(|g| {
                    g.inputs
                        .iter()
                        .filter(|n| out.nets[n.index()].driver.is_some())
                        .count()
                })
                .collect();
            let mut ready: Vec<GateId> = indegree
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d == 0)
                .map(|(i, _)| GateId::from_index(i))
                .collect();
            let mut topo_gates = Vec::with_capacity(out.gates.len());
            while let Some(gid) = ready.pop() {
                topo_gates.push(gid);
                let o = out.gates[gid.index()].output;
                for &reader in &out.nets[o.index()].readers {
                    indegree[reader.index()] -= 1;
                    if indegree[reader.index()] == 0 {
                        ready.push(reader);
                    }
                }
            }
            if topo_gates.len() != out.gates.len() {
                let stuck = indegree.iter().position(|&d| d > 0).expect("cycle exists");
                let net = out.gates[stuck].output;
                return Err(EditError::Cycle(out.nets[net.index()].name.clone()));
            }
            out.topo_gates = topo_gates;
        } else if let Some(topo) = self.topology.get() {
            // Delay-only batch: keep the shared CSR adjacency, rebuild the
            // delay plane only (same contract as `with_delays`).
            let rebuilt = Topology::with_adjacency(&out, topo.adjacency().clone());
            let _ = out.topology.set(rebuilt);
        }
        Ok(EditOutcome {
            circuit: out,
            dirty,
            structural,
        })
    }

    /// Extracts the fan-in cone of one output as a standalone circuit:
    /// only the gates and nets that can influence `output` survive, and
    /// `output` becomes the sole primary output. Net names are preserved.
    ///
    /// Useful for shrinking a verification problem to the logic a single
    /// check actually depends on.
    ///
    /// # Panics
    ///
    /// Panics if `output` is not a net of this circuit.
    ///
    /// # Examples
    ///
    /// ```
    /// use ltt_netlist::generators::carry_skip_adder;
    ///
    /// let adder = carry_skip_adder(8, 4, 10);
    /// let s0 = adder.net_by_name("s0").unwrap();
    /// let cone = adder.extract_cone(s0);
    /// assert!(cone.num_gates() < adder.num_gates());
    /// assert_eq!(cone.outputs().len(), 1);
    /// // The cone computes the same function of its (fewer) inputs.
    /// ```
    pub fn extract_cone(&self, output: NetId) -> Circuit {
        let cone = self.fanin_cone(output);
        let mut b = CircuitBuilder::new(format!("{}_cone_{}", self.name, self.net(output).name()));
        // Create inputs first (cone inputs keep their declaration order).
        for &i in &self.inputs {
            if cone[i.index()] {
                b.input(self.net(i).name().to_string());
            }
        }
        for &gid in &self.topo_gates {
            let gate = &self.gates[gid.index()];
            if !cone[gate.output.index()] {
                continue;
            }
            let inputs: Vec<NetId> = gate
                .inputs
                .iter()
                .map(|&n| b.net(self.net(n).name().to_string()))
                .collect();
            let out = b.net(self.net(gate.output).name().to_string());
            b.drive(out, gate.kind, &inputs, gate.delay);
        }
        let out = b.net(self.net(output).name().to_string());
        b.mark_output(out);
        b.build().expect("a cone of a valid circuit is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d10() -> DelayInterval {
        DelayInterval::fixed(10)
    }

    #[test]
    fn build_and_query_small_circuit() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let bb = b.input("b");
        let x = b.gate("x", GateKind::Nand, &[a, bb], d10());
        b.mark_output(x);
        let c = b.build().unwrap();
        assert_eq!(c.name(), "c");
        assert_eq!(c.num_nets(), 3);
        assert_eq!(c.num_gates(), 1);
        assert!(c.is_input(a));
        assert!(!c.is_input(x));
        assert!(c.is_output(x));
        assert_eq!(c.net_by_name("x"), Some(x));
        assert_eq!(c.net(x).driver(), Some(GateId::from_index(0)));
        assert_eq!(c.net(a).readers(), &[GateId::from_index(0)]);
        assert_eq!(c.gate(GateId::from_index(0)).kind(), GateKind::Nand);
    }

    #[test]
    fn evaluate_logic() {
        let mut b = CircuitBuilder::new("mux");
        let s = b.input("s");
        let a = b.input("a");
        let c = b.input("c");
        let ns = b.gate("ns", GateKind::Not, &[s], d10());
        let t0 = b.gate("t0", GateKind::And, &[ns, a], d10());
        let t1 = b.gate("t1", GateKind::And, &[s, c], d10());
        let y = b.gate("y", GateKind::Or, &[t0, t1], d10());
        b.mark_output(y);
        let circuit = b.build().unwrap();
        // y = s ? c : a
        assert_eq!(circuit.evaluate(&[false, true, false]), vec![true]);
        assert_eq!(circuit.evaluate(&[true, true, false]), vec![false]);
        assert_eq!(circuit.evaluate(&[true, false, true]), vec![true]);
    }

    #[test]
    fn forward_references_resolve() {
        let mut b = CircuitBuilder::new("fwd");
        let later = b.net("later");
        let a = b.input("a");
        let y = b.gate("y", GateKind::Buffer, &[later], d10());
        b.drive(later, GateKind::Not, &[a], d10());
        b.mark_output(y);
        let c = b.build().unwrap();
        assert_eq!(c.evaluate(&[false]), vec![true]);
        // Topological order must put the NOT before the BUFFER.
        let topo = c.topo_gates();
        let pos_not = topo
            .iter()
            .position(|&g| c.gate(g).kind() == GateKind::Not)
            .unwrap();
        let pos_buf = topo
            .iter()
            .position(|&g| c.gate(g).kind() == GateKind::Buffer)
            .unwrap();
        assert!(pos_not < pos_buf);
    }

    #[test]
    fn cycle_detected() {
        let mut b = CircuitBuilder::new("cyc");
        let a = b.input("a");
        let x = b.net("x");
        let y = b.gate("y", GateKind::And, &[a, x], d10());
        b.drive(x, GateKind::Buffer, &[y], d10());
        b.mark_output(y);
        assert!(matches!(b.build(), Err(BuildCircuitError::Cycle(_))));
    }

    #[test]
    fn undriven_net_detected() {
        let mut b = CircuitBuilder::new("u");
        let a = b.input("a");
        let ghost = b.net("ghost");
        let y = b.gate("y", GateKind::And, &[a, ghost], d10());
        b.mark_output(y);
        assert!(matches!(
            b.build(),
            Err(BuildCircuitError::UndrivenNet(n)) if n == "ghost"
        ));
    }

    #[test]
    fn multiple_drivers_detected() {
        let mut b = CircuitBuilder::new("m");
        let a = b.input("a");
        let x = b.gate("x", GateKind::Not, &[a], d10());
        b.drive(x, GateKind::Buffer, &[a], d10());
        b.mark_output(x);
        assert!(matches!(
            b.build(),
            Err(BuildCircuitError::MultipleDrivers(n)) if n == "x"
        ));
    }

    #[test]
    fn bad_arity_detected() {
        let mut b = CircuitBuilder::new("a");
        let a = b.input("a");
        let x = b.gate("x", GateKind::Xor, &[a], d10());
        b.mark_output(x);
        assert!(matches!(
            b.build(),
            Err(BuildCircuitError::BadArity { arity: 1, .. })
        ));
    }

    #[test]
    fn no_outputs_detected() {
        let mut b = CircuitBuilder::new("n");
        let a = b.input("a");
        let _ = b.gate("x", GateKind::Not, &[a], d10());
        assert!(matches!(b.build(), Err(BuildCircuitError::NoOutputs)));
    }

    #[test]
    fn driven_input_detected() {
        let mut b = CircuitBuilder::new("d");
        let a = b.input("a");
        let x = b.net("x");
        b.input("x"); // also declared as input…
        b.drive(x, GateKind::Not, &[a], d10()); // …and driven
        b.mark_output(x);
        assert!(matches!(
            b.build(),
            Err(BuildCircuitError::DrivenInput(n)) if n == "x"
        ));
    }

    #[test]
    fn fanout_stems_counted() {
        let mut b = CircuitBuilder::new("f");
        let a = b.input("a");
        let x = b.gate("x", GateKind::Not, &[a], d10());
        let y = b.gate("y", GateKind::Not, &[x], d10());
        let z = b.gate("z", GateKind::Buffer, &[x], d10());
        b.mark_output(y);
        b.mark_output(z);
        let c = b.build().unwrap();
        assert_eq!(c.num_fanout_stems(), 1);
        assert!(c.net(x).is_fanout_stem());
        assert!(!c.net(a).is_fanout_stem());
    }

    #[test]
    fn error_display() {
        let e = BuildCircuitError::Cycle("n".into());
        assert!(e.to_string().contains("cycle"));
        let e = BuildCircuitError::NoOutputs;
        assert!(e.to_string().contains("output"));
    }
}
