//! Structural Verilog netlist parser — the gate-primitive subset the
//! ISCAS benchmark distributions use.
//!
//! Supported grammar (per module; the first module in the file is taken):
//!
//! ```text
//! module c17 (N1, N2, N3, N6, N7, N22, N23);
//!   input N1, N2, N3, N6, N7;
//!   output N22, N23;
//!   wire N10, N11, N16, N19;
//!   nand NAND2_1 (N10, N1, N3);   // instance name optional
//!   not  (N19, N11);
//! endmodule
//! ```
//!
//! Primitive kinds: `and or nand nor xor xnor not buf` (plus `mux` as an
//! extension); the first port is the output, the rest are inputs —
//! standard Verilog gate-primitive semantics. `//` and `/* */` comments
//! are skipped. Like the [`.bench` parser](crate::bench_format), the
//! format carries no delays; the caller supplies one for every gate.

use crate::{Circuit, CircuitBuilder, DelayInterval, GateKind};
use std::error::Error;
use std::fmt;

/// Errors from [`parse_verilog`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseVerilogError {
    /// Unexpected token (1-based line, description).
    Syntax {
        /// 1-based source line.
        line: usize,
        /// What was found / expected.
        message: String,
    },
    /// A gate instantiation used an unsupported primitive.
    UnknownPrimitive {
        /// 1-based source line.
        line: usize,
        /// The primitive name.
        name: String,
    },
    /// No `module` was found.
    NoModule,
    /// The netlist failed structural validation.
    Structure(crate::BuildCircuitError),
}

impl fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseVerilogError::Syntax { line, message } => {
                write!(f, "Verilog syntax error on line {line}: {message}")
            }
            ParseVerilogError::UnknownPrimitive { line, name } => {
                write!(f, "unsupported primitive `{name}` on line {line}")
            }
            ParseVerilogError::NoModule => write!(f, "no module declaration found"),
            ParseVerilogError::Structure(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl Error for ParseVerilogError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseVerilogError::Structure(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::BuildCircuitError> for ParseVerilogError {
    fn from(e: crate::BuildCircuitError) -> Self {
        ParseVerilogError::Structure(e)
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Semi,
}

fn tokenize(source: &str) -> Result<Vec<(usize, Tok)>, ParseVerilogError> {
    let mut toks = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            b'(' => {
                toks.push((line, Tok::LParen));
                i += 1;
            }
            b')' => {
                toks.push((line, Tok::RParen));
                i += 1;
            }
            b',' => {
                toks.push((line, Tok::Comma));
                i += 1;
            }
            b';' => {
                toks.push((line, Tok::Semi));
                i += 1;
            }
            c if c.is_ascii_alphanumeric() || c == b'_' || c == b'\\' || c == b'[' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric()
                        || matches!(bytes[i], b'_' | b'\\' | b'[' | b']' | b'.' | b'$'))
                {
                    i += 1;
                }
                toks.push((
                    line,
                    Tok::Ident(String::from_utf8_lossy(&bytes[start..i]).into_owned()),
                ));
            }
            other => {
                return Err(ParseVerilogError::Syntax {
                    line,
                    message: format!("unexpected character `{}`", other as char),
                })
            }
        }
    }
    Ok(toks)
}

fn primitive_kind(name: &str) -> Option<GateKind> {
    Some(match name.to_ascii_lowercase().as_str() {
        "and" => GateKind::And,
        "nand" => GateKind::Nand,
        "or" => GateKind::Or,
        "nor" => GateKind::Nor,
        "xor" => GateKind::Xor,
        "xnor" => GateKind::Xnor,
        "not" => GateKind::Not,
        "buf" => GateKind::Buffer,
        "mux" => GateKind::Mux,
        _ => return None,
    })
}

/// Parses the first module of a structural Verilog source, assigning
/// `delay` to every gate.
///
/// # Errors
///
/// Returns [`ParseVerilogError`] on lexical/syntactic problems, unsupported
/// primitives, a missing module, or structural netlist errors.
///
/// # Examples
///
/// ```
/// use ltt_netlist::verilog::parse_verilog;
/// use ltt_netlist::DelayInterval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "
/// module half_adder (a, b, s, c);
///   input a, b;
///   output s, c;
///   xor X1 (s, a, b);
///   and A1 (c, a, b);
/// endmodule";
/// let circuit = parse_verilog(src, DelayInterval::fixed(10))?;
/// assert_eq!(circuit.name(), "half_adder");
/// assert_eq!(circuit.evaluate(&[true, true]), vec![false, true]);
/// # Ok(())
/// # }
/// ```
pub fn parse_verilog(source: &str, delay: DelayInterval) -> Result<Circuit, ParseVerilogError> {
    let toks = tokenize(source)?;
    let mut pos = 0;
    let err = |line: usize, message: &str| ParseVerilogError::Syntax {
        line,
        message: message.to_string(),
    };

    // Find `module <name>`.
    while pos < toks.len() && toks[pos].1 != Tok::Ident("module".into()) {
        pos += 1;
    }
    if pos >= toks.len() {
        return Err(ParseVerilogError::NoModule);
    }
    pos += 1;
    let (line, name) = match toks.get(pos) {
        Some((l, Tok::Ident(n))) => (*l, n.clone()),
        other => {
            return Err(err(
                other.map_or(0, |t| t.0),
                "expected module name after `module`",
            ))
        }
    };
    pos += 1;
    let mut b = CircuitBuilder::new(name);
    // Skip the port list up to the `;`.
    while pos < toks.len() && toks[pos].1 != Tok::Semi {
        pos += 1;
    }
    if pos >= toks.len() {
        return Err(err(line, "unterminated module header"));
    }
    pos += 1;

    let mut outputs: Vec<String> = Vec::new();
    // Body: declarations and instantiations until `endmodule`.
    while pos < toks.len() {
        let (line, tok) = &toks[pos];
        let line = *line;
        let head = match tok {
            Tok::Ident(h) => h.clone(),
            _ => return Err(err(line, "expected a declaration or instantiation")),
        };
        pos += 1;
        match head.as_str() {
            "endmodule" => break,
            "input" | "output" | "wire" => {
                // Comma-separated identifier list terminated by `;`.
                loop {
                    match toks.get(pos) {
                        Some((_, Tok::Ident(n))) => {
                            match head.as_str() {
                                "input" => {
                                    b.input(n.clone());
                                }
                                "output" => outputs.push(n.clone()),
                                _ => {
                                    b.net(n.clone());
                                }
                            }
                            pos += 1;
                        }
                        other => {
                            return Err(err(
                                other.map_or(line, |t| t.0),
                                "expected a net name in declaration",
                            ))
                        }
                    }
                    match toks.get(pos) {
                        Some((_, Tok::Comma)) => pos += 1,
                        Some((_, Tok::Semi)) => {
                            pos += 1;
                            break;
                        }
                        other => {
                            return Err(err(
                                other.map_or(line, |t| t.0),
                                "expected `,` or `;` in declaration",
                            ))
                        }
                    }
                }
            }
            prim => {
                let kind =
                    primitive_kind(prim).ok_or_else(|| ParseVerilogError::UnknownPrimitive {
                        line,
                        name: prim.to_string(),
                    })?;
                // Optional instance name.
                if let Some((_, Tok::Ident(_))) = toks.get(pos) {
                    pos += 1;
                }
                match toks.get(pos) {
                    Some((_, Tok::LParen)) => pos += 1,
                    other => {
                        return Err(err(
                            other.map_or(line, |t| t.0),
                            "expected `(` in gate instantiation",
                        ))
                    }
                }
                let mut ports: Vec<String> = Vec::new();
                loop {
                    match toks.get(pos) {
                        Some((_, Tok::Ident(n))) => {
                            ports.push(n.clone());
                            pos += 1;
                        }
                        other => {
                            return Err(err(other.map_or(line, |t| t.0), "expected a port name"))
                        }
                    }
                    match toks.get(pos) {
                        Some((_, Tok::Comma)) => pos += 1,
                        Some((_, Tok::RParen)) => {
                            pos += 1;
                            break;
                        }
                        other => {
                            return Err(err(
                                other.map_or(line, |t| t.0),
                                "expected `,` or `)` in port list",
                            ))
                        }
                    }
                }
                match toks.get(pos) {
                    Some((_, Tok::Semi)) => pos += 1,
                    other => {
                        return Err(err(
                            other.map_or(line, |t| t.0),
                            "expected `;` after gate instantiation",
                        ))
                    }
                }
                if ports.len() < 2 {
                    return Err(err(line, "gate instantiation needs output + inputs"));
                }
                let out = b.net(ports[0].clone());
                let inputs: Vec<_> = ports[1..].iter().map(|p| b.net(p.clone())).collect();
                b.drive(out, kind, &inputs, delay);
            }
        }
    }
    for o in outputs {
        let id = b.net(o);
        b.mark_output(id);
    }
    Ok(b.build()?)
}

/// Writes a circuit as a structural Verilog module (gate primitives only;
/// delays are not representable and are dropped, as in the `.bench`
/// writer). Net names are used verbatim, so round-tripping preserves
/// structure and function.
///
/// # Examples
///
/// ```
/// use ltt_netlist::verilog::{parse_verilog, write_verilog};
/// use ltt_netlist::suite::c17;
/// use ltt_netlist::DelayInterval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = c17(10);
/// let text = write_verilog(&c);
/// let round = parse_verilog(&text, DelayInterval::fixed(10))?;
/// assert_eq!(round.num_gates(), c.num_gates());
/// # Ok(())
/// # }
/// ```
pub fn write_verilog(circuit: &Circuit) -> String {
    let mut ports: Vec<&str> = circuit
        .inputs()
        .iter()
        .map(|&n| circuit.net(n).name())
        .collect();
    ports.extend(circuit.outputs().iter().map(|&n| circuit.net(n).name()));
    let mut out = String::new();
    out.push_str(&format!(
        "// generated by ltt-netlist
module {} ({});
",
        sanitize(circuit.name()),
        ports.join(", ")
    ));
    let decl = |keyword: &str, names: Vec<&str>| -> String {
        if names.is_empty() {
            String::new()
        } else {
            format!(
                "  {keyword} {};
",
                names.join(", ")
            )
        }
    };
    out.push_str(&decl(
        "input",
        circuit
            .inputs()
            .iter()
            .map(|&n| circuit.net(n).name())
            .collect(),
    ));
    out.push_str(&decl(
        "output",
        circuit
            .outputs()
            .iter()
            .map(|&n| circuit.net(n).name())
            .collect(),
    ));
    let wires: Vec<&str> = circuit
        .net_ids()
        .filter(|&n| !circuit.is_input(n) && !circuit.is_output(n))
        .map(|n| circuit.net(n).name())
        .collect();
    out.push_str(&decl("wire", wires));
    for (i, &gid) in circuit.topo_gates().iter().enumerate() {
        let g = circuit.gate(gid);
        let prim = match g.kind() {
            GateKind::And => "and",
            GateKind::Nand => "nand",
            GateKind::Or => "or",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Not => "not",
            GateKind::Buffer | GateKind::Delay => "buf",
            GateKind::Mux => "mux",
        };
        let mut args = vec![circuit.net(g.output()).name()];
        args.extend(g.inputs().iter().map(|&n| circuit.net(n).name()));
        out.push_str(&format!(
            "  {prim} U{i} ({});
",
            args.join(", ")
        ));
    }
    out.push_str(
        "endmodule
",
    );
    out
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() || s.chars().next().unwrap().is_ascii_digit() {
        s.insert(0, 'm');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17_VERILOG: &str = "
    // c17, ISCAS'85, Verilog gate-primitive form
    module c17 (N1, N2, N3, N6, N7, N22, N23);
      input N1, N2, N3, N6, N7;
      output N22, N23;
      wire N10, N11, N16, N19;
      nand NAND2_1 (N10, N1, N3);
      nand NAND2_2 (N11, N3, N6);
      nand NAND2_3 (N16, N2, N11);
      nand NAND2_4 (N19, N11, N7);
      nand NAND2_5 (N22, N10, N16);
      nand NAND2_6 (N23, N16, N19);
    endmodule";

    #[test]
    fn parses_c17_verilog() {
        let c = parse_verilog(C17_VERILOG, DelayInterval::fixed(10)).unwrap();
        assert_eq!(c.name(), "c17");
        assert_eq!(c.num_gates(), 6);
        assert_eq!(c.inputs().len(), 5);
        assert_eq!(c.outputs().len(), 2);
        assert_eq!(c.topological_delay(), 30);
        // Functional equivalence with the embedded .bench c17.
        let bench = crate::suite::c17(10);
        for v in 0..32u32 {
            let vec: Vec<bool> = (0..5).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(c.evaluate(&vec), bench.evaluate(&vec), "vector {v:05b}");
        }
    }

    #[test]
    fn anonymous_instances_and_block_comments() {
        let src = "
        /* a
           block comment */
        module t (a, y);
          input a; output y;
          not (y, a);
        endmodule";
        let c = parse_verilog(src, DelayInterval::fixed(5)).unwrap();
        assert_eq!(c.evaluate(&[false]), vec![true]);
    }

    #[test]
    fn mux_primitive_extension() {
        let src = "
        module m (s, a, b, y);
          input s, a, b; output y;
          mux M1 (y, s, a, b);
        endmodule";
        let c = parse_verilog(src, DelayInterval::fixed(10)).unwrap();
        // y = s ? b : a.
        assert_eq!(c.evaluate(&[false, true, false]), vec![true]);
        assert_eq!(c.evaluate(&[true, true, false]), vec![false]);
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let e = parse_verilog(
            "module t (a);\ninput a;\nfrob F (x, a);\nendmodule",
            DelayInterval::fixed(1),
        );
        assert!(matches!(
            e,
            Err(ParseVerilogError::UnknownPrimitive { line: 3, .. })
        ));
        assert!(matches!(
            parse_verilog("wire x;", DelayInterval::fixed(1)),
            Err(ParseVerilogError::NoModule)
        ));
        assert!(matches!(
            parse_verilog("module t (a)", DelayInterval::fixed(1)),
            Err(ParseVerilogError::Syntax { .. })
        ));
    }

    #[test]
    fn structural_errors_propagate() {
        let src = "
        module t (a, y);
          input a; output y;
          not (y, a);
          buf (y, a);
        endmodule";
        assert!(matches!(
            parse_verilog(src, DelayInterval::fixed(1)),
            Err(ParseVerilogError::Structure(_))
        ));
    }

    #[test]
    fn write_parse_roundtrip_preserves_function() {
        use crate::generators::{figure1, shared_select_mux_chain};
        for c in [figure1(10), shared_select_mux_chain(3, 10)] {
            let text = write_verilog(&c);
            let round = parse_verilog(&text, DelayInterval::fixed(10)).unwrap();
            assert_eq!(round.num_gates(), c.num_gates());
            assert_eq!(round.topological_delay(), c.topological_delay());
            let n = c.inputs().len();
            for v in 0..(1u64 << n) {
                let vec: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
                assert_eq!(c.evaluate(&vec), round.evaluate(&vec));
            }
        }
    }

    #[test]
    fn undeclared_wires_are_created_on_use() {
        // ISCAS files sometimes omit wire declarations; implicit nets are
        // standard Verilog behaviour.
        let src = "
        module t (a, y);
          input a; output y;
          not (mid, a);
          not (y, mid);
        endmodule";
        let c = parse_verilog(src, DelayInterval::fixed(1)).unwrap();
        assert_eq!(c.evaluate(&[true]), vec![true]);
    }
}
