//! Gate-level netlist substrate for waveform-narrowing timing analysis.
//!
//! This crate provides everything *structural* that the timing verifier of
//! the DATE 1998 paper builds on:
//!
//! * [`Circuit`] / [`CircuitBuilder`] — a validated DAG of gates
//!   ([`GateKind`]) and delayless nets, with per-gate delay intervals
//!   ([`DelayInterval`]); only `d_max` participates in the floating-mode
//!   delay calculation (§2);
//! * topological timing analysis — `top`, `top_n`, `top_{n1→n2}` longest
//!   paths ([`Circuit::topological_delay`], [`Circuit::arrival_times`],
//!   [`Circuit::longest_to`]);
//! * [`dominators`] — single-source DAG dominator computation, the graph
//!   kernel behind the paper's *static* and *dynamic timing dominators*;
//! * [`bench_format`] — the ISCAS `.bench` netlist format (parser and
//!   writer), so the real ISCAS'85 circuits drop in when available;
//! * [`generators`] — the paper's example circuits (Figure 1 false-path
//!   circuit, Figure 2 carry-skip adder), arithmetic structures, and
//!   seeded random DAGs;
//! * [`suite`] — the evaluation suite: the real `c17` plus synthetic
//!   stand-ins for the other ISCAS'85 circuits with matched size, depth and
//!   false-path structure.
//!
//! # Example
//!
//! ```
//! use ltt_netlist::{CircuitBuilder, DelayInterval, GateKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = CircuitBuilder::new("demo");
//! let a = b.input("a");
//! let c = b.input("b");
//! let y = b.gate("y", GateKind::Nand, &[a, c], DelayInterval::fixed(10));
//! b.mark_output(y);
//! let circuit = b.build()?;
//! assert_eq!(circuit.topological_delay(), 10);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
pub mod bench_format;
mod circuit;
mod cone;
pub mod dominators;
mod gate;
pub mod generators;
pub mod sdf;
pub mod suite;
mod topology;
pub mod transform;
pub mod verilog;

pub use circuit::{
    BuildCircuitError, Circuit, CircuitBuilder, CircuitEdit, EditError, EditOutcome, Gate, GateId,
    Net, NetId,
};
pub use cone::ConeView;
pub use gate::{DelayInterval, GateKind};
pub use topology::{Adjacency, Topology};
