//! Gate kinds and their Boolean/timing properties.
//!
//! The paper's circuit model (§2) admits the gate library
//! AND, NAND, OR, NOR, NOT, BUFFER, DELAY, XOR, XNOR, with per-gate delay
//! intervals `[d_min, d_max]` (only `d_max` participates in the max
//! floating-mode delay calculation).

use std::fmt;

/// The combinational gate library of the paper.
///
/// # Examples
///
/// ```
/// use ltt_netlist::GateKind;
///
/// assert_eq!(GateKind::Nand.eval(&[true, true]), false);
/// assert_eq!(GateKind::Nand.controlling_value(), Some(false));
/// assert!(GateKind::Xor.controlling_value().is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum GateKind {
    /// Logical conjunction (n-ary).
    And,
    /// Negated conjunction (n-ary).
    Nand,
    /// Logical disjunction (n-ary).
    Or,
    /// Negated disjunction (n-ary).
    Nor,
    /// Inverter (unary).
    Not,
    /// Non-inverting buffer (unary).
    Buffer,
    /// Pure delay element (unary, logically a buffer); the paper uses DELAY
    /// elements to carry path delays.
    Delay,
    /// Exclusive or (binary).
    Xor,
    /// Exclusive nor (binary).
    Xnor,
    /// 2:1 multiplexer `MUX(sel, a, b) = sel ? b : a` (ternary) — the
    /// "complex gate" constraint model the paper's conclusion announces.
    Mux,
}

impl GateKind {
    /// All gate kinds (handy for exhaustive tests).
    pub const ALL: [GateKind; 10] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Not,
        GateKind::Buffer,
        GateKind::Delay,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Mux,
    ];

    /// Evaluates the Boolean function on concrete input values.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs is invalid for this kind (see
    /// [`GateKind::arity_ok`]).
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert!(
            self.arity_ok(inputs.len()),
            "{self} gate cannot take {} inputs",
            inputs.len()
        );
        match self {
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Not => !inputs[0],
            GateKind::Buffer | GateKind::Delay => inputs[0],
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Mux => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
        }
    }

    /// The *controlling value*: an input at this value uniquely determines
    /// the output (Definition in §2). `None` for XOR/XNOR and the unary
    /// kinds, which have no controlling value.
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            GateKind::Not
            | GateKind::Buffer
            | GateKind::Delay
            | GateKind::Xor
            | GateKind::Xnor
            | GateKind::Mux => None,
        }
    }

    /// The output value produced when some input is at the controlling
    /// value, or `None` if the kind has no controlling value.
    pub fn controlled_output(self) -> Option<bool> {
        match self {
            GateKind::And => Some(false),
            GateKind::Nand => Some(true),
            GateKind::Or => Some(true),
            GateKind::Nor => Some(false),
            _ => None,
        }
    }

    /// Whether the gate inverts its inputs' parity (output when all inputs
    /// are non-controlling, for the AND/OR families; logical inversion for
    /// the unary kinds and the XOR family's constant term).
    pub fn inverts(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Not | GateKind::Xnor
        )
    }

    /// Whether `n` inputs is a valid arity for this kind: unary kinds take
    /// exactly 1, XOR/XNOR at least 2, MUX exactly 3, AND/OR families at
    /// least 1.
    pub fn arity_ok(self, n: usize) -> bool {
        match self {
            GateKind::Not | GateKind::Buffer | GateKind::Delay => n == 1,
            GateKind::Xor | GateKind::Xnor => n >= 2,
            GateKind::Mux => n == 3,
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => n >= 1,
        }
    }

    /// Whether the Boolean function is symmetric in its inputs (everything
    /// in this library except the multiplexer).
    pub fn is_symmetric(self) -> bool {
        self != GateKind::Mux
    }

    /// Parses a gate-kind name as used by the ISCAS `.bench` format
    /// (case-insensitive; `BUF`/`BUFF` are accepted for [`GateKind::Buffer`]).
    pub fn parse_name(name: &str) -> Option<GateKind> {
        Some(match name.to_ascii_uppercase().as_str() {
            "AND" => GateKind::And,
            "NAND" => GateKind::Nand,
            "OR" => GateKind::Or,
            "NOR" => GateKind::Nor,
            "NOT" | "INV" => GateKind::Not,
            "BUF" | "BUFF" | "BUFFER" => GateKind::Buffer,
            "DELAY" | "DEL" => GateKind::Delay,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            "MUX" => GateKind::Mux,
            _ => return None,
        })
    }

    /// The canonical upper-case name (as written by the `.bench` writer).
    pub fn name(self) -> &'static str {
        match self {
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Not => "NOT",
            GateKind::Buffer => "BUFF",
            GateKind::Delay => "DELAY",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Mux => "MUX",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A per-gate delay interval `[d_min, d_max]` (§2). Only `d_max` is used by
/// the max floating-mode delay calculation, but both bounds are carried for
/// completeness (min-delay / correlation analyses).
///
/// # Examples
///
/// ```
/// use ltt_netlist::DelayInterval;
///
/// let d = DelayInterval::fixed(10);
/// assert_eq!(d.max(), 10);
/// assert_eq!(d.min(), 10);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct DelayInterval {
    min: u32,
    max: u32,
}

impl DelayInterval {
    /// Zero delay.
    pub const ZERO: DelayInterval = DelayInterval { min: 0, max: 0 };

    /// A fixed (point) delay `[d, d]`.
    pub fn fixed(d: u32) -> Self {
        DelayInterval { min: d, max: d }
    }

    /// A delay interval `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: u32, max: u32) -> Self {
        assert!(min <= max, "delay interval must satisfy min <= max");
        DelayInterval { min, max }
    }

    /// Lower delay bound.
    pub fn min(self) -> u32 {
        self.min
    }

    /// Upper delay bound (the one driving max floating-mode delay).
    pub fn max(self) -> u32 {
        self.max
    }
}

impl fmt::Display for DelayInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.min == self.max {
            write!(f, "{}", self.max)
        } else {
            write!(f, "[{}, {}]", self.min, self.max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_truth_tables() {
        assert!(GateKind::And.eval(&[true, true, true]));
        assert!(!GateKind::And.eval(&[true, false, true]));
        assert!(!GateKind::Nand.eval(&[true, true]));
        assert!(GateKind::Nand.eval(&[true, false]));
        assert!(GateKind::Or.eval(&[false, true]));
        assert!(!GateKind::Or.eval(&[false, false]));
        assert!(GateKind::Nor.eval(&[false, false]));
        assert!(!GateKind::Nor.eval(&[false, true]));
        assert!(GateKind::Not.eval(&[false]));
        assert!(GateKind::Buffer.eval(&[true]));
        assert!(GateKind::Delay.eval(&[true]));
        assert!(GateKind::Xor.eval(&[true, false]));
        assert!(!GateKind::Xor.eval(&[true, true]));
        assert!(GateKind::Xnor.eval(&[true, true]));
        assert!(GateKind::Xor.eval(&[true, true, true])); // odd parity
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nand.controlling_value(), Some(false));
        assert_eq!(GateKind::Or.controlling_value(), Some(true));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        assert_eq!(GateKind::Not.controlling_value(), None);
    }

    #[test]
    fn controlling_value_determines_output() {
        for kind in [GateKind::And, GateKind::Nand, GateKind::Or, GateKind::Nor] {
            let c = kind.controlling_value().unwrap();
            let out = kind.controlled_output().unwrap();
            // Whatever the other input, a controlling input forces the output.
            for other in [false, true] {
                assert_eq!(kind.eval(&[c, other]), out);
                assert_eq!(kind.eval(&[other, c]), out);
            }
        }
    }

    #[test]
    fn arity_rules() {
        assert!(GateKind::Not.arity_ok(1));
        assert!(!GateKind::Not.arity_ok(2));
        assert!(GateKind::Xor.arity_ok(2));
        assert!(!GateKind::Xor.arity_ok(1));
        assert!(GateKind::And.arity_ok(1));
        assert!(GateKind::And.arity_ok(9));
    }

    #[test]
    fn mux_semantics() {
        assert!(!GateKind::Mux.eval(&[false, false, true])); // sel=0 picks a
        assert!(GateKind::Mux.eval(&[false, true, false]));
        assert!(!GateKind::Mux.eval(&[true, true, false])); // sel=1 picks b
        assert!(GateKind::Mux.eval(&[true, false, true]));
        assert!(GateKind::Mux.arity_ok(3));
        assert!(!GateKind::Mux.arity_ok(2));
        assert!(!GateKind::Mux.is_symmetric());
        assert_eq!(GateKind::Mux.controlling_value(), None);
    }

    #[test]
    fn name_roundtrip() {
        for kind in GateKind::ALL {
            assert_eq!(GateKind::parse_name(kind.name()), Some(kind));
        }
        assert_eq!(GateKind::parse_name("buf"), Some(GateKind::Buffer));
        assert_eq!(GateKind::parse_name("inv"), Some(GateKind::Not));
        assert_eq!(GateKind::parse_name("mystery"), None);
    }

    #[test]
    fn delay_interval_constructors() {
        assert_eq!(DelayInterval::fixed(7).min(), 7);
        assert_eq!(DelayInterval::new(3, 9).max(), 9);
        assert_eq!(DelayInterval::ZERO.max(), 0);
        assert_eq!(DelayInterval::fixed(5).to_string(), "5");
        assert_eq!(DelayInterval::new(1, 2).to_string(), "[1, 2]");
    }

    #[test]
    #[should_panic]
    fn delay_interval_rejects_inverted() {
        let _ = DelayInterval::new(5, 3);
    }
}
