//! Topological (structural) timing analysis on circuits: longest-path
//! delays `top`, `top_n`, and `top_{n1→n2}` from §2 of the paper.
//!
//! These are purely structural quantities — every path counts, sensitizable
//! or not — and provide both the conservative delay bound and the distance
//! metric used by static carriers and timing dominators.

use crate::{Circuit, NetId};

impl Circuit {
    /// The topological arrival time `top_n` of every net: the length
    /// (sum of gate `d_max`) of the longest path from any primary input,
    /// indexed by [`NetId::index`]. Primary inputs arrive at 0.
    ///
    /// # Examples
    ///
    /// ```
    /// use ltt_netlist::{CircuitBuilder, DelayInterval, GateKind};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = CircuitBuilder::new("chain");
    /// let a = b.input("a");
    /// let x = b.gate("x", GateKind::Not, &[a], DelayInterval::fixed(10));
    /// let y = b.gate("y", GateKind::Not, &[x], DelayInterval::fixed(10));
    /// b.mark_output(y);
    /// let c = b.build()?;
    /// assert_eq!(c.arrival_times()[y.index()], 20);
    /// # Ok(())
    /// # }
    /// ```
    pub fn arrival_times(&self) -> Vec<i64> {
        let mut arrival = vec![0i64; self.num_nets()];
        for &gid in self.topo_gates() {
            let gate = self.gate(gid);
            let worst = gate
                .inputs()
                .iter()
                .map(|n| arrival[n.index()])
                .max()
                .unwrap_or(0);
            arrival[gate.output().index()] = worst + i64::from(gate.dmax());
        }
        arrival
    }

    /// The topological delay `top` of the circuit: the longest arrival time
    /// over the primary outputs.
    pub fn topological_delay(&self) -> i64 {
        let arrival = self.arrival_times();
        self.outputs()
            .iter()
            .map(|o| arrival[o.index()])
            .max()
            .unwrap_or(0)
    }

    /// The longest path length `top_{n→target}` from every net to `target`,
    /// or `None` for nets with no path to `target`. `top_{target→target}`
    /// is 0.
    ///
    /// Together with [`Circuit::arrival_times`] this identifies the *static
    /// carriers* of a timing check `(ξ, s, δ)`: the nets `x` with
    /// `top_x + top_{x→s} ≥ δ` (Definition 4).
    pub fn longest_to(&self, target: NetId) -> Vec<Option<i64>> {
        let mut dist = vec![None; self.num_nets()];
        dist[target.index()] = Some(0i64);
        for &gid in self.topo_gates().iter().rev() {
            let gate = self.gate(gid);
            if let Some(d) = dist[gate.output().index()] {
                let through = d + i64::from(gate.dmax());
                for n in gate.inputs() {
                    let slot = &mut dist[n.index()];
                    if slot.is_none_or(|cur| through > cur) {
                        *slot = Some(through);
                    }
                }
            }
        }
        dist
    }

    /// The topological delay between two nets, `top_{from→to}`, or `None`
    /// if no path connects them.
    pub fn top_between(&self, from: NetId, to: NetId) -> Option<i64> {
        self.longest_to(to)[from.index()]
    }

    /// The logic depth (number of gates) of the deepest input→output path.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_nets()];
        for &gid in self.topo_gates() {
            let gate = self.gate(gid);
            let worst = gate
                .inputs()
                .iter()
                .map(|n| level[n.index()])
                .max()
                .unwrap_or(0);
            level[gate.output().index()] = worst + 1;
        }
        self.outputs()
            .iter()
            .map(|o| level[o.index()])
            .max()
            .unwrap_or(0)
    }

    /// The set of nets in the fan-in cone of `net` (including `net`
    /// itself), as a dense boolean mask indexed by [`NetId::index`].
    pub fn fanin_cone(&self, net: NetId) -> Vec<bool> {
        let mut in_cone = vec![false; self.num_nets()];
        in_cone[net.index()] = true;
        for &gid in self.topo_gates().iter().rev() {
            let gate = self.gate(gid);
            if in_cone[gate.output().index()] {
                for n in gate.inputs() {
                    in_cone[n.index()] = true;
                }
            }
        }
        in_cone
    }

    /// Whether `stem` is a *reconvergent* fanout stem: it has at least two
    /// readers and two distinct paths from it meet again at some gate.
    pub fn is_reconvergent_stem(&self, stem: NetId) -> bool {
        let readers = self.net(stem).readers();
        if readers.len() < 2 {
            return false;
        }
        // Tag each net reachable from `stem` with the set of first-level
        // branches (reader gates) it is reachable through; reconvergence is
        // a net tagged with ≥ 2 branches. Branch sets are capped at 64.
        let mut tags = vec![0u64; self.num_nets()];
        for (b, &gid) in readers.iter().enumerate().take(64) {
            let gate = self.gate(gid);
            tags[gate.output().index()] |= 1u64 << b;
        }
        let mut reconv = false;
        for &gid in self.topo_gates() {
            let gate = self.gate(gid);
            let mut acc = tags[gate.output().index()];
            let mut arms = 0u32;
            for n in gate.inputs() {
                let t = tags[n.index()];
                if t != 0 {
                    arms += 1;
                }
                acc |= t;
            }
            // Reconvergence at this gate: inputs reachable from ≥ 2 distinct
            // branches, or one input carrying ≥ 2 branches merged upstream
            // plus this gate seeing several arms.
            if arms >= 2 && acc.count_ones() >= 2 {
                reconv = true;
            }
            tags[gate.output().index()] |= acc;
        }
        reconv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, DelayInterval, GateKind};

    fn d(x: u32) -> DelayInterval {
        DelayInterval::fixed(x)
    }

    /// a ──not(10)── x ──not(20)── y (output), plus a ──not(5)── z (output)
    fn two_path() -> (Circuit, NetId, NetId, NetId, NetId) {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let x = b.gate("x", GateKind::Not, &[a], d(10));
        let y = b.gate("y", GateKind::Not, &[x], d(20));
        let z = b.gate("z", GateKind::Not, &[a], d(5));
        b.mark_output(y);
        b.mark_output(z);
        (b.build().unwrap(), a, x, y, z)
    }

    #[test]
    fn arrival_times_are_longest_paths() {
        let (c, a, x, y, z) = two_path();
        let arr = c.arrival_times();
        assert_eq!(arr[a.index()], 0);
        assert_eq!(arr[x.index()], 10);
        assert_eq!(arr[y.index()], 30);
        assert_eq!(arr[z.index()], 5);
        assert_eq!(c.topological_delay(), 30);
    }

    #[test]
    fn longest_to_walks_backwards() {
        let (c, a, x, y, z) = two_path();
        let to_y = c.longest_to(y);
        assert_eq!(to_y[y.index()], Some(0));
        assert_eq!(to_y[x.index()], Some(20));
        assert_eq!(to_y[a.index()], Some(30));
        assert_eq!(to_y[z.index()], None);
        assert_eq!(c.top_between(a, y), Some(30));
        assert_eq!(c.top_between(z, y), None);
    }

    #[test]
    fn reconvergent_longest_to_takes_max() {
        // a fans out, reconverges at an AND; one arm longer.
        let mut b = CircuitBuilder::new("r");
        let a = b.input("a");
        let p = b.gate("p", GateKind::Not, &[a], d(10));
        let q = b.gate("q", GateKind::Not, &[p], d(10));
        let y = b.gate("y", GateKind::And, &[a, q], d(10));
        b.mark_output(y);
        let c = b.build().unwrap();
        assert_eq!(c.top_between(a, y), Some(30));
        assert_eq!(c.topological_delay(), 30);
    }

    #[test]
    fn depth_counts_gate_levels() {
        let (c, ..) = two_path();
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn fanin_cone_collects_transitive_inputs() {
        let (c, a, x, y, z) = two_path();
        let cone = c.fanin_cone(y);
        assert!(cone[y.index()] && cone[x.index()] && cone[a.index()]);
        assert!(!cone[z.index()]);
    }

    #[test]
    fn reconvergence_detection() {
        let mut b = CircuitBuilder::new("r");
        let a = b.input("a");
        let p = b.gate("p", GateKind::Not, &[a], d(10));
        let q = b.gate("q", GateKind::Buffer, &[a], d(10));
        let y = b.gate("y", GateKind::And, &[p, q], d(10));
        b.mark_output(y);
        let c = b.build().unwrap();
        assert!(c.is_reconvergent_stem(a));
        assert!(!c.is_reconvergent_stem(p));

        // Fanout without reconvergence.
        let mut b = CircuitBuilder::new("nr");
        let a = b.input("a");
        let p = b.gate("p", GateKind::Not, &[a], d(10));
        let q = b.gate("q", GateKind::Buffer, &[a], d(10));
        b.mark_output(p);
        b.mark_output(q);
        let c = b.build().unwrap();
        assert!(!c.is_reconvergent_stem(a));
    }
}

impl Circuit {
    /// Earliest possible transition time per net, using the gates'
    /// **minimum** delays: the length of the *shortest* input→net path
    /// (sum of `d_min`). The dual of [`Circuit::arrival_times`], used by
    /// hold-style ("can it transition too early?") checks.
    ///
    /// # Examples
    ///
    /// ```
    /// use ltt_netlist::{CircuitBuilder, DelayInterval, GateKind};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = CircuitBuilder::new("e");
    /// let a = b.input("a");
    /// let x = b.input("x");
    /// let fast = b.gate("fast", GateKind::And, &[a, x], DelayInterval::new(2, 10));
    /// let y = b.gate("y", GateKind::Or, &[fast, a], DelayInterval::new(3, 10));
    /// b.mark_output(y);
    /// let c = b.build()?;
    /// assert_eq!(c.earliest_arrival_times()[y.index()], 3); // via the direct a edge
    /// # Ok(())
    /// # }
    /// ```
    pub fn earliest_arrival_times(&self) -> Vec<i64> {
        let mut earliest = vec![0i64; self.num_nets()];
        for &gid in self.topo_gates() {
            let gate = self.gate(gid);
            let best = gate
                .inputs()
                .iter()
                .map(|n| earliest[n.index()])
                .min()
                .unwrap_or(0);
            earliest[gate.output().index()] = best + i64::from(gate.delay().min());
        }
        earliest
    }

    /// The minimum topological delay of the circuit: the earliest time any
    /// primary output could possibly transition (shortest path, `d_min`).
    pub fn min_topological_delay(&self) -> i64 {
        let earliest = self.earliest_arrival_times();
        self.outputs()
            .iter()
            .map(|o| earliest[o.index()])
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod min_delay_tests {
    use crate::{CircuitBuilder, DelayInterval, GateKind};

    #[test]
    fn earliest_uses_min_delays_and_shortest_paths() {
        let mut b = CircuitBuilder::new("m");
        let a = b.input("a");
        let x = b.gate("x", GateKind::Not, &[a], DelayInterval::new(3, 30));
        let y = b.gate("y", GateKind::Not, &[x], DelayInterval::new(4, 40));
        b.mark_output(y);
        let c = b.build().unwrap();
        assert_eq!(c.earliest_arrival_times()[y.index()], 7);
        assert_eq!(c.min_topological_delay(), 7);
        assert_eq!(c.topological_delay(), 70);
    }

    #[test]
    fn reconvergence_takes_the_shorter_arm() {
        let mut b = CircuitBuilder::new("r");
        let a = b.input("a");
        let slow = b.gate("slow", GateKind::Not, &[a], DelayInterval::new(50, 50));
        let y = b.gate("y", GateKind::And, &[a, slow], DelayInterval::new(5, 5));
        b.mark_output(y);
        let c = b.build().unwrap();
        // Through the direct edge: 0 + 5.
        assert_eq!(c.earliest_arrival_times()[y.index()], 5);
    }
}
