//! SDF (Standard Delay Format) back-annotation — the subset needed to
//! re-time a netlist from a delay calculator's output.
//!
//! The paper's conclusion reports "we process SDF backannotation to test
//! our method on industrial circuits"; this module implements the
//! corresponding substrate: an s-expression parser for the `DELAYFILE /
//! CELL / DELAY / ABSOLUTE / IOPATH` skeleton of SDF 3.0, and
//! [`apply_sdf`], which rebuilds a circuit with the annotated per-gate
//! delay intervals.
//!
//! Supported subset (everything else inside a cell is skipped):
//!
//! ```text
//! (DELAYFILE
//!   (SDFVERSION "3.0")
//!   (DESIGN "top")
//!   (TIMESCALE 1ns)
//!   (CELL (CELLTYPE "NAND2") (INSTANCE n7)
//!     (DELAY (ABSOLUTE (IOPATH a y (12:14:16) (12:14:16))))))
//! ```
//!
//! `INSTANCE` names refer to the gate's *output net* (our gates are
//! anonymous); each `IOPATH` triple `(min:typ:max)` (or a single value)
//! contributes `[min, max]` and multiple IOPATHs of a cell are merged by
//! interval union, since the analysis needs one `[d_min, d_max]` per gate
//! (§2: only `d_max` drives the max floating-mode delay).

use crate::{Circuit, DelayInterval};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors from [`parse_sdf`] / [`apply_sdf`].
#[derive(Clone, Debug, PartialEq)]
pub enum ParseSdfError {
    /// Lexical or structural s-expression error at a byte offset.
    Syntax {
        /// Byte offset of the offending token.
        offset: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// The top-level form is not a `DELAYFILE`.
    NotADelayFile,
    /// A cell's `INSTANCE` names a net that does not exist or is not a
    /// gate output.
    UnknownInstance(String),
    /// A delay triple was malformed or negative.
    BadDelayValue(String),
}

impl fmt::Display for ParseSdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseSdfError::Syntax { offset, message } => {
                write!(f, "SDF syntax error at byte {offset}: {message}")
            }
            ParseSdfError::NotADelayFile => write!(f, "top-level form is not (DELAYFILE …)"),
            ParseSdfError::UnknownInstance(n) => {
                write!(f, "INSTANCE `{n}` is not a gate output net")
            }
            ParseSdfError::BadDelayValue(v) => write!(f, "bad delay value `{v}`"),
        }
    }
}

impl Error for ParseSdfError {}

/// One parsed cell annotation: the instance (gate output net) name and the
/// merged delay interval of its IOPATHs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SdfCell {
    /// The `INSTANCE` name (interpreted as the gate's output net name).
    pub instance: String,
    /// The merged `[d_min, d_max]` of the cell's IOPATH entries.
    pub delay: DelayInterval,
}

/// A parsed delay file: design name and per-instance delays.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SdfFile {
    /// The `(DESIGN "…")` name, if present.
    pub design: Option<String>,
    /// The annotated cells, in file order.
    pub cells: Vec<SdfCell>,
}

// ---- S-expression scanner -------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Sexp {
    Atom(String),
    List(Vec<Sexp>),
}

/// Maximum s-expression nesting depth accepted by the scanner (guards the
/// recursive-descent parser against stack exhaustion on hostile inputs).
const MAX_NESTING: usize = 200;

struct Scanner<'a> {
    text: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Scanner {
            text: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseSdfError {
        ParseSdfError::Syntax {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.text.len() {
            match self.text[self.pos] {
                b' ' | b'\t' | b'\r' | b'\n' => self.pos += 1,
                b'/' if self.text.get(self.pos + 1) == Some(&b'/') => {
                    while self.pos < self.text.len() && self.text[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn parse(&mut self) -> Result<Sexp, ParseSdfError> {
        self.parse_at(0)
    }

    fn parse_at(&mut self, depth: usize) -> Result<Sexp, ParseSdfError> {
        if depth > MAX_NESTING {
            return Err(self.error("nesting too deep"));
        }
        self.skip_ws();
        match self.text.get(self.pos) {
            None => Err(self.error("unexpected end of file")),
            Some(b'(') => {
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    match self.text.get(self.pos) {
                        None => return Err(self.error("unclosed parenthesis")),
                        Some(b')') => {
                            self.pos += 1;
                            return Ok(Sexp::List(items));
                        }
                        _ => items.push(self.parse_at(depth + 1)?),
                    }
                }
            }
            Some(b')') => Err(self.error("unexpected `)`")),
            Some(b'"') => {
                let start = self.pos + 1;
                let mut end = start;
                while end < self.text.len() && self.text[end] != b'"' {
                    end += 1;
                }
                if end == self.text.len() {
                    return Err(self.error("unterminated string"));
                }
                self.pos = end + 1;
                Ok(Sexp::Atom(
                    String::from_utf8_lossy(&self.text[start..end]).into_owned(),
                ))
            }
            Some(_) => {
                let start = self.pos;
                while self.pos < self.text.len()
                    && !matches!(
                        self.text[self.pos],
                        b' ' | b'\t' | b'\r' | b'\n' | b'(' | b')'
                    )
                {
                    self.pos += 1;
                }
                Ok(Sexp::Atom(
                    String::from_utf8_lossy(&self.text[start..self.pos]).into_owned(),
                ))
            }
        }
    }
}

impl Sexp {
    fn atom(&self) -> Option<&str> {
        match self {
            Sexp::Atom(s) => Some(s),
            Sexp::List(_) => None,
        }
    }

    fn list(&self) -> Option<&[Sexp]> {
        match self {
            Sexp::List(items) => Some(items),
            Sexp::Atom(_) => None,
        }
    }

    /// Whether this is a list whose head atom equals `keyword`
    /// (case-insensitive).
    fn is_form(&self, keyword: &str) -> bool {
        self.list()
            .and_then(|items| items.first())
            .and_then(Sexp::atom)
            .is_some_and(|head| head.eq_ignore_ascii_case(keyword))
    }
}

// ---- SDF interpretation ----------------------------------------------------

/// Parses a delay triple `min:typ:max` (or a single value) into a
/// [`DelayInterval`]. Values may be decimal; they are rounded to the
/// nearest integer time unit.
fn parse_triple(text: &str) -> Result<DelayInterval, ParseSdfError> {
    let parts: Vec<&str> = text.split(':').collect();
    let parse_one = |p: &str| -> Result<u32, ParseSdfError> {
        let v: f64 = p
            .trim()
            .parse()
            .map_err(|_| ParseSdfError::BadDelayValue(text.to_string()))?;
        if !(0.0..=u32::MAX as f64).contains(&v) {
            return Err(ParseSdfError::BadDelayValue(text.to_string()));
        }
        Ok(v.round() as u32)
    };
    match parts.as_slice() {
        [single] => {
            let v = parse_one(single)?;
            Ok(DelayInterval::fixed(v))
        }
        [min, _typ, max] => {
            let (lo, hi) = (parse_one(min)?, parse_one(max)?);
            if lo > hi {
                return Err(ParseSdfError::BadDelayValue(text.to_string()));
            }
            Ok(DelayInterval::new(lo, hi))
        }
        _ => Err(ParseSdfError::BadDelayValue(text.to_string())),
    }
}

fn merge(a: Option<DelayInterval>, b: DelayInterval) -> DelayInterval {
    match a {
        None => b,
        Some(a) => DelayInterval::new(a.min().min(b.min()), a.max().max(b.max())),
    }
}

/// Parses the supported SDF subset.
///
/// # Errors
///
/// Returns [`ParseSdfError`] on malformed s-expressions, a non-`DELAYFILE`
/// top form, or malformed delay values. Unknown forms inside cells are
/// skipped (SDF is full of tool-specific extensions).
///
/// # Examples
///
/// ```
/// use ltt_netlist::sdf::parse_sdf;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sdf = r#"(DELAYFILE (DESIGN "top")
///   (CELL (CELLTYPE "NAND2") (INSTANCE y)
///     (DELAY (ABSOLUTE (IOPATH a y (3:4:5))))))"#;
/// let parsed = parse_sdf(sdf)?;
/// assert_eq!(parsed.design.as_deref(), Some("top"));
/// assert_eq!(parsed.cells.len(), 1);
/// assert_eq!(parsed.cells[0].delay.max(), 5);
/// # Ok(())
/// # }
/// ```
pub fn parse_sdf(text: &str) -> Result<SdfFile, ParseSdfError> {
    let mut scanner = Scanner::new(text);
    let top = scanner.parse()?;
    if !top.is_form("DELAYFILE") {
        return Err(ParseSdfError::NotADelayFile);
    }
    let mut file = SdfFile::default();
    for form in &top.list().expect("checked")[1..] {
        if form.is_form("DESIGN") {
            if let Some(name) = form.list().and_then(|l| l.get(1)).and_then(Sexp::atom) {
                file.design = Some(name.to_string());
            }
        } else if form.is_form("CELL") {
            let items = form.list().expect("checked");
            let mut instance = None;
            let mut delay: Option<DelayInterval> = None;
            for item in &items[1..] {
                if item.is_form("INSTANCE") {
                    instance = item
                        .list()
                        .and_then(|l| l.get(1))
                        .and_then(Sexp::atom)
                        .map(str::to_string);
                } else if item.is_form("DELAY") {
                    for abs in &item.list().expect("checked")[1..] {
                        if !abs.is_form("ABSOLUTE") && !abs.is_form("INCREMENT") {
                            continue;
                        }
                        for iopath in &abs.list().expect("checked")[1..] {
                            if !iopath.is_form("IOPATH") {
                                continue;
                            }
                            // (IOPATH in out (r) (f) …): delay values are
                            // the atoms/lists after the two port names.
                            let entries = iopath.list().expect("checked");
                            for value in entries.iter().skip(3) {
                                let text = match value {
                                    Sexp::Atom(a) => a.clone(),
                                    Sexp::List(inner) => inner
                                        .iter()
                                        .filter_map(Sexp::atom)
                                        .collect::<Vec<_>>()
                                        .join(":"),
                                };
                                if text.is_empty() {
                                    continue;
                                }
                                delay = Some(merge(delay, parse_triple(&text)?));
                            }
                        }
                    }
                }
            }
            if let (Some(instance), Some(delay)) = (instance, delay) {
                file.cells.push(SdfCell { instance, delay });
            }
        }
        // Other top-level forms (SDFVERSION, TIMESCALE, …) are skipped.
    }
    Ok(file)
}

/// Back-annotates a circuit from SDF text: every cell's `INSTANCE` is
/// looked up as a gate output net and that gate's delay replaced by the
/// cell's merged interval; unannotated gates keep their delays.
///
/// # Errors
///
/// Propagates [`parse_sdf`] errors, plus [`ParseSdfError::UnknownInstance`]
/// if a cell names a net that is not a gate output.
///
/// # Examples
///
/// ```
/// use ltt_netlist::sdf::apply_sdf;
/// use ltt_netlist::{CircuitBuilder, DelayInterval, GateKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::new("c");
/// let a = b.input("a");
/// let y = b.gate("y", GateKind::Not, &[a], DelayInterval::fixed(10));
/// b.mark_output(y);
/// let circuit = b.build()?;
///
/// let sdf = r#"(DELAYFILE (CELL (INSTANCE y)
///   (DELAY (ABSOLUTE (IOPATH a y (20:22:25))))))"#;
/// let annotated = apply_sdf(&circuit, sdf)?;
/// assert_eq!(annotated.topological_delay(), 25);
/// # Ok(())
/// # }
/// ```
pub fn apply_sdf(circuit: &Circuit, text: &str) -> Result<Circuit, ParseSdfError> {
    let file = parse_sdf(text)?;
    let mut by_gate: HashMap<usize, DelayInterval> = HashMap::new();
    for cell in &file.cells {
        let net = circuit
            .net_by_name(&cell.instance)
            .ok_or_else(|| ParseSdfError::UnknownInstance(cell.instance.clone()))?;
        let gate = circuit
            .net(net)
            .driver()
            .ok_or_else(|| ParseSdfError::UnknownInstance(cell.instance.clone()))?;
        by_gate.insert(gate.index(), cell.delay);
    }
    Ok(circuit.with_delays(|gid, gate| by_gate.get(&gid.index()).copied().unwrap_or(gate.delay())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, GateKind};

    fn two_gate_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let x = b.gate("x", GateKind::Not, &[a], DelayInterval::fixed(10));
        let y = b.gate("y", GateKind::Buffer, &[x], DelayInterval::fixed(10));
        b.mark_output(y);
        b.build().unwrap()
    }

    #[test]
    fn parses_full_skeleton() {
        let sdf = r#"
        (DELAYFILE
          (SDFVERSION "3.0")
          (DESIGN "demo")
          (TIMESCALE 1ns)
          // a comment
          (CELL (CELLTYPE "INV") (INSTANCE x)
            (DELAY (ABSOLUTE (IOPATH a x (3:4:5) (2:3:4)))))
          (CELL (CELLTYPE "BUF") (INSTANCE y)
            (DELAY (ABSOLUTE (IOPATH x y (7))))))
        "#;
        let f = parse_sdf(sdf).unwrap();
        assert_eq!(f.design.as_deref(), Some("demo"));
        assert_eq!(f.cells.len(), 2);
        // Rise/fall triples merged by union: [2, 5].
        assert_eq!(f.cells[0].delay, DelayInterval::new(2, 5));
        assert_eq!(f.cells[1].delay, DelayInterval::fixed(7));
    }

    #[test]
    fn apply_reannotates_and_preserves_structure() {
        let c = two_gate_circuit();
        let sdf = r#"(DELAYFILE
          (CELL (INSTANCE x) (DELAY (ABSOLUTE (IOPATH a x (30)))))
        )"#;
        let r = apply_sdf(&c, sdf).unwrap();
        assert_eq!(r.topological_delay(), 40); // 30 + 10 (y unannotated)
        assert_eq!(r.num_gates(), c.num_gates());
        assert_eq!(r.evaluate(&[true]), c.evaluate(&[true]));
    }

    #[test]
    fn unknown_instance_rejected() {
        let c = two_gate_circuit();
        let sdf = r#"(DELAYFILE (CELL (INSTANCE ghost)
            (DELAY (ABSOLUTE (IOPATH a b (1))))))"#;
        assert!(matches!(
            apply_sdf(&c, sdf),
            Err(ParseSdfError::UnknownInstance(n)) if n == "ghost"
        ));
        // A primary input is also not a valid instance.
        let sdf = r#"(DELAYFILE (CELL (INSTANCE a)
            (DELAY (ABSOLUTE (IOPATH a b (1))))))"#;
        assert!(matches!(
            apply_sdf(&c, sdf),
            Err(ParseSdfError::UnknownInstance(_))
        ));
    }

    #[test]
    fn syntax_errors_are_located() {
        assert!(matches!(
            parse_sdf("(DELAYFILE (CELL"),
            Err(ParseSdfError::Syntax { .. })
        ));
        assert!(matches!(
            parse_sdf("(NOTADELAYFILE)"),
            Err(ParseSdfError::NotADelayFile)
        ));
        assert!(matches!(
            parse_sdf(
                r#"(DELAYFILE (CELL (INSTANCE x)
                (DELAY (ABSOLUTE (IOPATH a x (1:2))))))"#
            ),
            Err(ParseSdfError::BadDelayValue(_))
        ));
        assert!(matches!(
            parse_sdf(
                r#"(DELAYFILE (CELL (INSTANCE x)
                (DELAY (ABSOLUTE (IOPATH a x (5:4:3))))))"#
            ),
            Err(ParseSdfError::BadDelayValue(_))
        ));
    }

    #[test]
    fn decimal_values_round() {
        let sdf = r#"(DELAYFILE (CELL (INSTANCE x)
            (DELAY (ABSOLUTE (IOPATH a x (1.4:2.0:2.6))))))"#;
        let f = parse_sdf(sdf).unwrap();
        assert_eq!(f.cells[0].delay, DelayInterval::new(1, 3));
    }

    #[test]
    fn annotated_timing_flows_into_verification() {
        // End-to-end: re-annotate, the timing analysis follows.
        let c = two_gate_circuit();
        assert_eq!(c.topological_delay(), 20);
        let sdf = r#"(DELAYFILE
          (CELL (INSTANCE x) (DELAY (ABSOLUTE (IOPATH a x (100)))))
          (CELL (INSTANCE y) (DELAY (ABSOLUTE (IOPATH x y (50))))))"#;
        let r = apply_sdf(&c, sdf).unwrap();
        assert_eq!(r.topological_delay(), 150);
        assert_eq!(
            r.gate(r.net(r.net_by_name("x").unwrap()).driver().unwrap())
                .dmax(),
            100
        );
    }
}
