//! Flattened, cache-friendly view of a circuit's connectivity.
//!
//! The event-driven narrower visits gates millions of times; going through
//! [`Circuit::gate`](crate::Circuit::gate) per event chases a pointer into
//! a [`Gate`](crate::Gate) whose input list is its own heap allocation.
//! [`Topology`] flattens everything the hot loop needs into dense,
//! id-indexed parallel arrays (CSR layout for the variable-length lists):
//!
//! * per gate: kind, max delay, output net, and an offset range into one
//!   shared input-net array;
//! * per net: an offset range into one shared "touching gates" array —
//!   the net's driver first (if any), then its readers, which is exactly
//!   the order the narrower schedules constraints in.
//!
//! A circuit builds its topology lazily, at most once, and hands out a
//! shared [`Arc`]; see [`Circuit::topology`](crate::Circuit::topology).

use crate::circuit::{Circuit, GateId, NetId};
use crate::gate::GateKind;
use std::sync::Arc;

/// Dense CSR tables describing a circuit's gates and net adjacency.
#[derive(Debug)]
pub struct Topology {
    kind: Vec<GateKind>,
    dmax: Vec<u32>,
    output: Vec<NetId>,
    /// `in_off[g]..in_off[g+1]` indexes `in_nets` for gate `g`.
    in_off: Vec<u32>,
    in_nets: Vec<NetId>,
    /// `touch_off[n]..touch_off[n+1]` indexes `touch` for net `n`.
    touch_off: Vec<u32>,
    touch: Vec<GateId>,
}

impl Topology {
    /// Flattens the circuit. One linear pass; called once per circuit via
    /// the [`Circuit::topology`](crate::Circuit::topology) cache.
    pub(crate) fn build(c: &Circuit) -> Arc<Topology> {
        let ng = c.num_gates();
        let nn = c.num_nets();
        let mut kind = Vec::with_capacity(ng);
        let mut dmax = Vec::with_capacity(ng);
        let mut output = Vec::with_capacity(ng);
        let mut in_off = Vec::with_capacity(ng + 1);
        let mut in_nets = Vec::new();
        in_off.push(0u32);
        for gid in c.gate_ids() {
            let g = c.gate(gid);
            kind.push(g.kind());
            dmax.push(g.dmax());
            output.push(g.output());
            in_nets.extend_from_slice(g.inputs());
            in_off.push(u32::try_from(in_nets.len()).expect("< 4G gate inputs"));
        }
        let mut touch_off = Vec::with_capacity(nn + 1);
        let mut touch = Vec::new();
        touch_off.push(0u32);
        for nid in c.net_ids() {
            let net = c.net(nid);
            if let Some(driver) = net.driver() {
                touch.push(driver);
            }
            touch.extend_from_slice(net.readers());
            touch_off.push(u32::try_from(touch.len()).expect("< 4G net touches"));
        }
        Arc::new(Topology {
            kind,
            dmax,
            output,
            in_off,
            in_nets,
            touch_off,
            touch,
        })
    }

    /// The gate's kind.
    #[inline]
    pub fn gate_kind(&self, g: GateId) -> GateKind {
        self.kind[g.index()]
    }

    /// The gate's maximum delay.
    #[inline]
    pub fn gate_dmax(&self, g: GateId) -> u32 {
        self.dmax[g.index()]
    }

    /// The gate's output net.
    #[inline]
    pub fn gate_output(&self, g: GateId) -> NetId {
        self.output[g.index()]
    }

    /// The gate's input nets, in gate input order.
    #[inline]
    pub fn gate_inputs(&self, g: GateId) -> &[NetId] {
        let gi = g.index();
        &self.in_nets[self.in_off[gi] as usize..self.in_off[gi + 1] as usize]
    }

    /// Every gate touching `net`: its driver first (if any), then its
    /// readers, in reader order — the narrower's scheduling order.
    #[inline]
    pub fn touching(&self, n: NetId) -> &[GateId] {
        let ni = n.index();
        &self.touch[self.touch_off[ni] as usize..self.touch_off[ni + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::gate::DelayInterval;

    #[test]
    fn topology_matches_circuit_views() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let x = b.gate("x", GateKind::And, &[a, c], DelayInterval::fixed(7));
        let y = b.gate("y", GateKind::Not, &[x], DelayInterval::fixed(3));
        b.mark_output(y);
        let circuit = b.build().unwrap();
        let topo = circuit.topology();
        for g in circuit.gate_ids() {
            let gate = circuit.gate(g);
            assert_eq!(topo.gate_kind(g), gate.kind());
            assert_eq!(topo.gate_dmax(g), gate.dmax());
            assert_eq!(topo.gate_output(g), gate.output());
            assert_eq!(topo.gate_inputs(g), gate.inputs());
        }
        for n in circuit.net_ids() {
            let net = circuit.net(n);
            let mut expect: Vec<GateId> = Vec::new();
            expect.extend(net.driver());
            expect.extend_from_slice(net.readers());
            assert_eq!(topo.touching(n), expect.as_slice(), "net {n:?}");
        }
    }

    #[test]
    fn topology_is_cached_and_reset_by_with_delays() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let x = b.gate("x", GateKind::Not, &[a], DelayInterval::fixed(5));
        b.mark_output(x);
        let circuit = b.build().unwrap();
        let t1 = circuit.topology();
        let t2 = circuit.topology();
        assert!(Arc::ptr_eq(&t1, &t2), "topology is computed once");
        let slow = circuit.with_delays(|_, _| DelayInterval::fixed(25));
        let g = slow.net(slow.net_by_name("x").unwrap()).driver().unwrap();
        assert_eq!(slow.topology().gate_dmax(g), 25, "stale cache was reset");
    }
}
