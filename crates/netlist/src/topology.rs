//! Flattened, cache-friendly view of a circuit's connectivity.
//!
//! The event-driven narrower visits gates millions of times; going through
//! [`Circuit::gate`](crate::Circuit::gate) per event chases a pointer into
//! a [`Gate`](crate::Gate) whose input list is its own heap allocation.
//! [`Topology`] flattens everything the hot loop needs into dense,
//! id-indexed parallel arrays (CSR layout for the variable-length lists):
//!
//! * per gate: kind, max delay, output net, and an offset range into one
//!   shared input-net array;
//! * per net: an offset range into one shared "touching gates" array —
//!   the net's driver first (if any), then its readers, which is exactly
//!   the order the narrower schedules constraints in.
//!
//! The tables split into two planes with different invalidation rules:
//! the structural [`Adjacency`] (kinds, outputs, CSR input/touch lists),
//! which only a rewire can change, and the per-gate `dmax` delay plane,
//! which SDF re-annotation ([`Circuit::with_delays`](crate::Circuit::with_delays))
//! rewrites. A delay-only edit therefore keeps the adjacency `Arc` and
//! rebuilds just the delay plane.
//!
//! A circuit builds its topology lazily, at most once, and hands out a
//! shared [`Arc`]; see [`Circuit::topology`](crate::Circuit::topology).

use crate::circuit::{Circuit, GateId, NetId};
use crate::gate::GateKind;
use std::sync::Arc;

/// The structural plane of a [`Topology`]: everything about connectivity
/// that delay edits can never change. Shared (via `Arc`) across delay
/// re-annotations of the same circuit.
#[derive(Debug)]
pub struct Adjacency {
    kind: Vec<GateKind>,
    output: Vec<NetId>,
    /// `in_off[g]..in_off[g+1]` indexes `in_nets` for gate `g`.
    in_off: Vec<u32>,
    in_nets: Vec<NetId>,
    /// `touch_off[n]..touch_off[n+1]` indexes `touch` for net `n`.
    touch_off: Vec<u32>,
    touch: Vec<GateId>,
}

impl Adjacency {
    fn build(c: &Circuit) -> Arc<Adjacency> {
        let ng = c.num_gates();
        let nn = c.num_nets();
        let mut kind = Vec::with_capacity(ng);
        let mut output = Vec::with_capacity(ng);
        let mut in_off = Vec::with_capacity(ng + 1);
        let mut in_nets = Vec::new();
        in_off.push(0u32);
        for gid in c.gate_ids() {
            let g = c.gate(gid);
            kind.push(g.kind());
            output.push(g.output());
            in_nets.extend_from_slice(g.inputs());
            in_off.push(u32::try_from(in_nets.len()).expect("< 4G gate inputs"));
        }
        let mut touch_off = Vec::with_capacity(nn + 1);
        let mut touch = Vec::new();
        touch_off.push(0u32);
        for nid in c.net_ids() {
            let net = c.net(nid);
            if let Some(driver) = net.driver() {
                touch.push(driver);
            }
            touch.extend_from_slice(net.readers());
            touch_off.push(u32::try_from(touch.len()).expect("< 4G net touches"));
        }
        Arc::new(Adjacency {
            kind,
            output,
            in_off,
            in_nets,
            touch_off,
            touch,
        })
    }
}

/// Dense CSR tables describing a circuit's gates and net adjacency: the
/// shared structural [`Adjacency`] plus the per-gate delay plane.
#[derive(Debug)]
pub struct Topology {
    adj: Arc<Adjacency>,
    dmax: Vec<u32>,
}

impl Topology {
    /// Flattens the circuit. One linear pass; called once per circuit via
    /// the [`Circuit::topology`](crate::Circuit::topology) cache.
    pub(crate) fn build(c: &Circuit) -> Arc<Topology> {
        Self::with_adjacency(c, Adjacency::build(c))
    }

    /// Builds a topology around an existing (still structurally valid)
    /// adjacency, deriving only the delay plane — the delay re-annotation
    /// fast path.
    pub(crate) fn with_adjacency(c: &Circuit, adj: Arc<Adjacency>) -> Arc<Topology> {
        let dmax = c.gate_ids().map(|g| c.gate(g).dmax()).collect();
        Arc::new(Topology { adj, dmax })
    }

    /// The shared structural plane. Delay-only circuit copies
    /// ([`Circuit::with_delays`](crate::Circuit::with_delays)) hand out the
    /// same `Arc`.
    pub fn adjacency(&self) -> &Arc<Adjacency> {
        &self.adj
    }

    /// The gate's kind.
    #[inline]
    pub fn gate_kind(&self, g: GateId) -> GateKind {
        self.adj.kind[g.index()]
    }

    /// The gate's maximum delay.
    #[inline]
    pub fn gate_dmax(&self, g: GateId) -> u32 {
        self.dmax[g.index()]
    }

    /// The gate's output net.
    #[inline]
    pub fn gate_output(&self, g: GateId) -> NetId {
        self.adj.output[g.index()]
    }

    /// The gate's input nets, in gate input order.
    #[inline]
    pub fn gate_inputs(&self, g: GateId) -> &[NetId] {
        let gi = g.index();
        &self.adj.in_nets[self.adj.in_off[gi] as usize..self.adj.in_off[gi + 1] as usize]
    }

    /// Every gate touching `net`: its driver first (if any), then its
    /// readers, in reader order — the narrower's scheduling order.
    #[inline]
    pub fn touching(&self, n: NetId) -> &[GateId] {
        let ni = n.index();
        &self.adj.touch[self.adj.touch_off[ni] as usize..self.adj.touch_off[ni + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::gate::DelayInterval;

    #[test]
    fn topology_matches_circuit_views() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let x = b.gate("x", GateKind::And, &[a, c], DelayInterval::fixed(7));
        let y = b.gate("y", GateKind::Not, &[x], DelayInterval::fixed(3));
        b.mark_output(y);
        let circuit = b.build().unwrap();
        let topo = circuit.topology();
        for g in circuit.gate_ids() {
            let gate = circuit.gate(g);
            assert_eq!(topo.gate_kind(g), gate.kind());
            assert_eq!(topo.gate_dmax(g), gate.dmax());
            assert_eq!(topo.gate_output(g), gate.output());
            assert_eq!(topo.gate_inputs(g), gate.inputs());
        }
        for n in circuit.net_ids() {
            let net = circuit.net(n);
            let mut expect: Vec<GateId> = Vec::new();
            expect.extend(net.driver());
            expect.extend_from_slice(net.readers());
            assert_eq!(topo.touching(n), expect.as_slice(), "net {n:?}");
        }
    }

    #[test]
    fn topology_is_cached_and_reset_by_with_delays() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let x = b.gate("x", GateKind::Not, &[a], DelayInterval::fixed(5));
        b.mark_output(x);
        let circuit = b.build().unwrap();
        let t1 = circuit.topology();
        let t2 = circuit.topology();
        assert!(Arc::ptr_eq(&t1, &t2), "topology is computed once");
        let slow = circuit.with_delays(|_, _| DelayInterval::fixed(25));
        let g = slow.net(slow.net_by_name("x").unwrap()).driver().unwrap();
        assert_eq!(slow.topology().gate_dmax(g), 25, "stale cache was reset");
    }

    #[test]
    fn with_delays_keeps_the_adjacency_plane() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let x = b.gate("x", GateKind::And, &[a, c], DelayInterval::fixed(7));
        let y = b.gate("y", GateKind::Not, &[x], DelayInterval::fixed(3));
        b.mark_output(y);
        let circuit = b.build().unwrap();
        let before = circuit.topology();
        let slow = circuit.with_delays(|_, g| DelayInterval::fixed(g.dmax() + 10));
        let after = slow.topology();
        // The CSR adjacency is shared — only the delay plane was rebuilt.
        assert!(
            Arc::ptr_eq(before.adjacency(), after.adjacency()),
            "delay edits must not rebuild the CSR adjacency"
        );
        assert!(!Arc::ptr_eq(&before, &after));
        let g = slow.net(slow.net_by_name("x").unwrap()).driver().unwrap();
        assert_eq!(after.gate_dmax(g), 17);
        assert_eq!(before.gate_dmax(g), 7);
    }

    #[test]
    fn with_delays_on_cold_cache_builds_lazily() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let x = b.gate("x", GateKind::Not, &[a], DelayInterval::fixed(5));
        b.mark_output(x);
        let circuit = b.build().unwrap();
        // No topology() call before the edit: the copy builds from scratch.
        let slow = circuit.with_delays(|_, _| DelayInterval::fixed(9));
        let g = slow.net(slow.net_by_name("x").unwrap()).driver().unwrap();
        assert_eq!(slow.topology().gate_dmax(g), 9);
    }
}
