//! ISCAS `.bench` netlist format: parser and writer.
//!
//! The ISCAS'85 benchmark circuits evaluated in the paper circulate in the
//! `.bench` format:
//!
//! ```text
//! # comment
//! INPUT(G1)
//! OUTPUT(G17)
//! G10 = NAND(G1, G3)
//! ```
//!
//! The format carries no delay information; [`parse_bench`] assigns a
//! caller-supplied delay to every gate (the paper uses a fixed delay of 10
//! on every gate output for its experiments).

use crate::{Circuit, CircuitBuilder, DelayInterval, GateKind};
use std::error::Error;
use std::fmt;

/// Errors produced by [`parse_bench`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseBenchError {
    /// A line could not be parsed; carries the 1-based line number and the
    /// offending text.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// The offending line text.
        text: String,
    },
    /// An unknown gate-kind name; carries the 1-based line number.
    UnknownGate {
        /// 1-based line number.
        line: usize,
        /// The unknown gate name.
        name: String,
    },
    /// The parsed netlist failed structural validation.
    Structure(crate::BuildCircuitError),
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBenchError::Syntax { line, text } => {
                write!(f, "syntax error on line {line}: `{text}`")
            }
            ParseBenchError::UnknownGate { line, name } => {
                write!(f, "unknown gate `{name}` on line {line}")
            }
            ParseBenchError::Structure(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl Error for ParseBenchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseBenchError::Structure(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::BuildCircuitError> for ParseBenchError {
    fn from(e: crate::BuildCircuitError) -> Self {
        ParseBenchError::Structure(e)
    }
}

/// Parses a `.bench` netlist, assigning `delay` to every gate.
///
/// # Errors
///
/// Returns [`ParseBenchError`] on malformed lines, unknown gate names, or a
/// structurally invalid netlist (cycles, double drivers, …).
///
/// # Examples
///
/// ```
/// use ltt_netlist::bench_format::parse_bench;
/// use ltt_netlist::DelayInterval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "\
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(y)
/// y = NAND(a, b)
/// ";
/// let c = parse_bench("tiny", src, DelayInterval::fixed(10))?;
/// assert_eq!(c.num_gates(), 1);
/// assert_eq!(c.evaluate(&[true, true]), vec![false]);
/// # Ok(())
/// # }
/// ```
pub fn parse_bench(
    name: &str,
    source: &str,
    delay: DelayInterval,
) -> Result<Circuit, ParseBenchError> {
    let mut b = CircuitBuilder::new(name);
    let mut outputs = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let syntax = || ParseBenchError::Syntax {
            line: line_no,
            text: raw.trim().to_string(),
        };
        if let Some(rest) = strip_directive(line, "INPUT") {
            b.input(rest);
        } else if let Some(rest) = strip_directive(line, "OUTPUT") {
            outputs.push(rest.to_string());
        } else if let Some(eq) = line.find('=') {
            let target = line[..eq].trim();
            let rhs = line[eq + 1..].trim();
            let open = rhs.find('(').ok_or_else(syntax)?;
            let close = rhs.rfind(')').ok_or_else(syntax)?;
            if close < open || target.is_empty() {
                return Err(syntax());
            }
            let gate_name = rhs[..open].trim();
            let kind =
                GateKind::parse_name(gate_name).ok_or_else(|| ParseBenchError::UnknownGate {
                    line: line_no,
                    name: gate_name.to_string(),
                })?;
            let args: Vec<&str> = rhs[open + 1..close]
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            if args.is_empty() {
                return Err(syntax());
            }
            let inputs: Vec<_> = args.into_iter().map(|a| b.net(a)).collect();
            let out = b.net(target);
            b.drive(out, kind, &inputs, delay);
        } else {
            return Err(syntax());
        }
    }
    for o in outputs {
        let id = b.net(o);
        b.mark_output(id);
    }
    Ok(b.build()?)
}

fn strip_directive<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.strip_suffix(')')?;
    let rest = rest.trim();
    (!rest.is_empty()).then_some(rest)
}

/// Writes a circuit back out in `.bench` format (delays are not
/// representable in the format and are dropped).
///
/// # Examples
///
/// ```
/// use ltt_netlist::bench_format::{parse_bench, write_bench};
/// use ltt_netlist::DelayInterval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
/// let c = parse_bench("t", src, DelayInterval::fixed(1))?;
/// let round = parse_bench("t", &write_bench(&c), DelayInterval::fixed(1))?;
/// assert_eq!(round.num_gates(), c.num_gates());
/// # Ok(())
/// # }
/// ```
pub fn write_bench(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", circuit.name()));
    for &i in circuit.inputs() {
        out.push_str(&format!("INPUT({})\n", circuit.net(i).name()));
    }
    for &o in circuit.outputs() {
        out.push_str(&format!("OUTPUT({})\n", circuit.net(o).name()));
    }
    for &gid in circuit.topo_gates() {
        let g = circuit.gate(gid);
        let args: Vec<&str> = g.inputs().iter().map(|&n| circuit.net(n).name()).collect();
        out.push_str(&format!(
            "{} = {}({})\n",
            circuit.net(g.output()).name(),
            g.kind().name(),
            args.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = "\
# c17 (real ISCAS'85 netlist)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parses_c17() {
        let c = parse_bench("c17", C17, DelayInterval::fixed(10)).unwrap();
        assert_eq!(c.num_gates(), 6);
        assert_eq!(c.inputs().len(), 5);
        assert_eq!(c.outputs().len(), 2);
        assert_eq!(c.topological_delay(), 30);
    }

    #[test]
    fn c17_functional_sanity() {
        let c = parse_bench("c17", C17, DelayInterval::fixed(10)).unwrap();
        // With all inputs 0: 10 = 1, 11 = 1, 16 = 1, 19 = 1, 22 = 0, 23 = 0.
        assert_eq!(c.evaluate(&[false; 5]), vec![false, false]);
        // 1=0,3=0 -> 10=1; 3=0,6=0 -> 11=1; 2=1,11=1 -> 16=0; 22=NAND(1,0)=1.
        assert_eq!(
            c.evaluate(&[false, true, false, false, false]),
            vec![true, true]
        );
    }

    #[test]
    fn roundtrip_write_parse() {
        let c = parse_bench("c17", C17, DelayInterval::fixed(10)).unwrap();
        let text = write_bench(&c);
        let c2 = parse_bench("c17", &text, DelayInterval::fixed(10)).unwrap();
        assert_eq!(c2.num_gates(), c.num_gates());
        assert_eq!(c2.inputs().len(), c.inputs().len());
        for v in 0..32u32 {
            let vec: Vec<bool> = (0..5).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(c.evaluate(&vec), c2.evaluate(&vec));
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "\n# hello\nINPUT(a)  # trailing\nOUTPUT(y)\ny = NOT(a)\n\n";
        let c = parse_bench("t", src, DelayInterval::fixed(1)).unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn syntax_error_reports_line() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT a\n";
        match parse_bench("t", src, DelayInterval::fixed(1)) {
            Err(ParseBenchError::Syntax { line: 3, .. }) => {}
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_gate_reported() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n";
        match parse_bench("t", src, DelayInterval::fixed(1)) {
            Err(ParseBenchError::UnknownGate { line: 3, name }) => assert_eq!(name, "FROB"),
            other => panic!("expected unknown-gate error, got {other:?}"),
        }
    }

    #[test]
    fn structural_error_propagates() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n";
        assert!(matches!(
            parse_bench("t", src, DelayInterval::fixed(1)),
            Err(ParseBenchError::Structure(_))
        ));
    }

    #[test]
    fn forward_references_allowed() {
        let src = "INPUT(a)\nOUTPUT(z)\nz = NOT(y)\ny = NOT(a)\n";
        let c = parse_bench("t", src, DelayInterval::fixed(1)).unwrap();
        assert_eq!(c.evaluate(&[true]), vec![true]);
    }
}
