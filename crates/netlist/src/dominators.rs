//! Dominator computation on single-source DAGs.
//!
//! The paper derives *timing dominators* (Definitions 6 and 9) by building
//! the reversed carrier circuit Ψ′ — a DAG with one source **S** (the
//! checked output) and one sink **T** — and taking the vertices that lie on
//! every S→T path, i.e. the dominators of **T** [Tarjan 1974]. This module
//! implements the iterative Cooper–Harvey–Kennedy scheme, which needs a
//! single pass on a DAG processed in topological order.

/// Immediate-dominator table for a single-source DAG.
///
/// # Examples
///
/// ```
/// use ltt_netlist::dominators::Dominators;
///
/// // 0 → 1 → 3, 0 → 2 → 3, 3 → 4: the diamond merges at 3, so 4's
/// // dominators are 3 and 0.
/// let preds = vec![vec![], vec![0], vec![0], vec![1, 2], vec![3]];
/// let topo = vec![0, 1, 2, 3, 4];
/// let dom = Dominators::compute(&preds, 0, &topo);
/// assert_eq!(dom.idom(4), Some(3));
/// assert_eq!(dom.idom(3), Some(0));
/// assert!(dom.dominates(3, 4));
/// assert!(!dom.dominates(1, 4));
/// assert_eq!(dom.chain(4), vec![4, 3, 0]);
/// ```
#[derive(Clone, Debug)]
pub struct Dominators {
    idom: Vec<Option<usize>>,
    source: usize,
}

impl Dominators {
    /// Computes immediate dominators of every vertex reachable from
    /// `source`.
    ///
    /// * `preds[v]` — the predecessors of vertex `v` (edges point
    ///   source→sink);
    /// * `topo` — a topological order of the reachable vertices starting at
    ///   `source` (unreachable vertices may be omitted).
    ///
    /// # Panics
    ///
    /// Panics if `topo` is empty or does not start with `source`.
    pub fn compute(preds: &[Vec<usize>], source: usize, topo: &[usize]) -> Dominators {
        assert!(
            !topo.is_empty() && topo[0] == source,
            "topo must start at source"
        );
        let n = preds.len();
        let mut order = vec![usize::MAX; n];
        for (i, &v) in topo.iter().enumerate() {
            order[v] = i;
        }
        let mut idom: Vec<Option<usize>> = vec![None; n];
        idom[source] = Some(source);
        // One pass in topological order suffices on a DAG: all predecessors
        // of v are finalized before v.
        for &v in &topo[1..] {
            let mut new_idom: Option<usize> = None;
            for &p in &preds[v] {
                if idom[p].is_none() {
                    continue; // unreachable predecessor
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => Self::intersect(&idom, &order, cur, p),
                });
            }
            idom[v] = new_idom;
        }
        // The source's self-loop is an implementation detail; expose None.
        idom[source] = None;
        Dominators { idom, source }
    }

    fn intersect(idom: &[Option<usize>], order: &[usize], a: usize, b: usize) -> usize {
        let (mut a, mut b) = (a, b);
        while a != b {
            while order[a] > order[b] {
                a = idom[a].expect("walk reaches the source");
            }
            while order[b] > order[a] {
                b = idom[b].expect("walk reaches the source");
            }
        }
        a
    }

    /// The immediate dominator of `v` (`None` for the source and for
    /// unreachable vertices).
    pub fn idom(&self, v: usize) -> Option<usize> {
        if v == self.source {
            None
        } else {
            self.idom[v]
        }
    }

    /// Whether `v` was reachable from the source.
    pub fn is_reachable(&self, v: usize) -> bool {
        v == self.source || self.idom[v].is_some()
    }

    /// Whether `a` dominates `b` (reflexive: every vertex dominates
    /// itself).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if !self.is_reachable(b) {
            return false;
        }
        let mut v = b;
        loop {
            if v == a {
                return true;
            }
            match self.idom(v) {
                Some(next) => v = next,
                None => return v == a,
            }
        }
    }

    /// The dominator chain of `v`, from `v` itself up to the source.
    /// Empty if `v` is unreachable.
    pub fn chain(&self, v: usize) -> Vec<usize> {
        if !self.is_reachable(v) {
            return Vec::new();
        }
        let mut out = vec![v];
        let mut cur = v;
        while let Some(next) = self.idom(cur) {
            out.push(next);
            cur = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_chain() {
        // 0 → 1 → 2 → 3
        let preds = vec![vec![], vec![0], vec![1], vec![2]];
        let dom = Dominators::compute(&preds, 0, &[0, 1, 2, 3]);
        assert_eq!(dom.idom(3), Some(2));
        assert_eq!(dom.chain(3), vec![3, 2, 1, 0]);
        assert!(dom.dominates(1, 3));
        assert!(dom.dominates(3, 3));
    }

    #[test]
    fn diamond_merges_at_join() {
        // 0 → {1, 2} → 3
        let preds = vec![vec![], vec![0], vec![0], vec![1, 2]];
        let dom = Dominators::compute(&preds, 0, &[0, 2, 1, 3]);
        assert_eq!(dom.idom(3), Some(0));
        assert!(!dom.dominates(1, 3));
        assert!(!dom.dominates(2, 3));
        assert!(dom.dominates(0, 3));
    }

    #[test]
    fn nested_diamonds() {
        // 0 → {1,2} → 3 → {4,5} → 6
        let preds = vec![
            vec![],
            vec![0],
            vec![0],
            vec![1, 2],
            vec![3],
            vec![3],
            vec![4, 5],
        ];
        let dom = Dominators::compute(&preds, 0, &[0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(dom.chain(6), vec![6, 3, 0]);
    }

    #[test]
    fn unreachable_vertices_have_no_dominators() {
        // 2 is disconnected.
        let preds = vec![vec![], vec![0], vec![]];
        let dom = Dominators::compute(&preds, 0, &[0, 1]);
        assert!(!dom.is_reachable(2));
        assert_eq!(dom.idom(2), None);
        assert!(dom.chain(2).is_empty());
        assert!(!dom.dominates(0, 2));
    }

    #[test]
    fn skip_edge_reduces_dominators() {
        // 0 → 1 → 2 → 3 plus skip 0 → 3: only 0 dominates 3.
        let preds = vec![vec![], vec![0], vec![1], vec![2, 0]];
        let dom = Dominators::compute(&preds, 0, &[0, 1, 2, 3]);
        assert_eq!(dom.chain(3), vec![3, 0]);
    }

    #[test]
    #[should_panic]
    fn topo_must_start_at_source() {
        let preds = vec![vec![], vec![0]];
        let _ = Dominators::compute(&preds, 0, &[1, 0]);
    }
}
