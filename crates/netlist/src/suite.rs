//! The evaluation suite: the real `c17` plus synthetic stand-ins for the
//! other ISCAS'85 circuits of the paper's Table 1.
//!
//! # Substitution note
//!
//! The paper evaluates NOR-gate implementations of the ISCAS'85 benchmarks
//! with a fixed delay of 10 on every gate output. The real netlists (up to
//! ~3.5k gates) are not shipped here except `c17`, whose six NAND gates are
//! public knowledge; a [`.bench` parser](crate::bench_format) is provided
//! so the originals drop in unchanged when available. Each stand-in is
//! generated deterministically with:
//!
//! * the paper's **topological delay** (same depth in gate levels × delay
//!   10 — the depths of the *NOR implementations*, which is why `c17`
//!   itself is used NOR-mapped);
//! * the paper's **exact floating-mode delay**, via an embedded false-path
//!   *spine* whose [`SpineKind`] is chosen so that the `δ = exact + 1`
//!   check is settled by the same pipeline stage the paper reports:
//!   plain-narrowing chains for c5315/c7552-style rows, dominator-requiring
//!   forked chains for c1908/c3540, a stem-correlation-requiring mux
//!   conflict for c2670, and a fully sensitizable spine for the circuits
//!   whose longest path is true (c432, c499, c880, c1355);
//! * a comparable **gate count**, reached with pseudo-random filler cones
//!   that drive the spine's side inputs (each cone output is XOR-mixed with
//!   a dedicated fresh input so every side value stays controllable and the
//!   spine's sensitization status is preserved), under explicit depth
//!   budgets so no filler path can reach the exact delay;
//! * reconvergent fanout both inside the filler and on the conflict stem.
//!
//! The c6288 stand-in is a real 16×16 array multiplier passed through the
//! same [NOR mapping](crate::transform::nor_mapping) the paper applies —
//! structurally faithful to the original (a 16×16 multiplier) and, like it,
//! hard enough that the case analysis abandons.

use crate::generators::array_multiplier;
use crate::transform::nor_mapping;
use crate::{Circuit, CircuitBuilder, DelayInterval, GateKind, NetId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One suite circuit together with the paper's reference numbers.
#[derive(Clone, Debug)]
pub struct SuiteEntry {
    /// ISCAS'85 circuit name this entry reproduces or stands in for.
    pub name: &'static str,
    /// The circuit (real for `c17`, synthetic stand-in otherwise).
    pub circuit: Circuit,
    /// The paper's topological delay (Table 1 column 2).
    pub paper_top: i64,
    /// The paper's exact floating-mode delay (`None` for c6288, where the
    /// paper only reports the upper bound 1220).
    pub paper_exact: Option<i64>,
    /// The paper's reported number of backtracks for the exact-δ check.
    pub paper_backtracks: Option<u64>,
    /// Whether this entry is a synthetic stand-in (everything but `c17`).
    pub standin: bool,
}

/// The real ISCAS'85 `c17` netlist (6 NAND gates).
const C17_BENCH: &str = "\
# c17 (ISCAS'85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

/// The real `c17` circuit with the given per-gate delay.
///
/// # Examples
///
/// ```
/// use ltt_netlist::suite::c17;
/// let c = c17(10);
/// assert_eq!(c.num_gates(), 6);
/// assert_eq!(c.topological_delay(), 30);
/// ```
pub fn c17(delay: u32) -> Circuit {
    crate::bench_format::parse_bench("c17", C17_BENCH, DelayInterval::fixed(delay))
        .expect("embedded c17 netlist is valid")
}

/// The paper's *NOR-gate implementation* of `c17`: the real netlist passed
/// through [`nor_mapping`]. Its topological delay at gate delay 10 is 50,
/// matching Table 1.
pub fn c17_nor(delay: u32) -> Circuit {
    nor_mapping(&c17(delay), delay)
}

/// The false-path spine structure of a stand-in, selecting which pipeline
/// stage is needed to prove the `δ = exact + 1` check (see the paper's
/// Table 1 columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpineKind {
    /// Single Hrapcenko-style chain: plain narrowing resolves the false
    /// path (Example 2's mechanics; the c5315/c7552 rows). With a gap of
    /// zero this degenerates to a fully sensitizable spine (the
    /// c432/c499/c880/c1355 rows).
    Chain,
    /// Long branch forked into two reconverging falsified arms: local
    /// narrowing stalls at the merge, timing dominators resolve it (the
    /// c1908/c3540 rows). Requires a gap of at least 2 levels.
    Forked,
    /// Mux cone whose arms need opposite settling values of the select
    /// stem: only stem correlation resolves it (the c2670 row). The gap is
    /// fixed at 1 level.
    StemMux,
}

/// Parameters of a synthetic ISCAS'85 stand-in.
#[derive(Clone, Copy, Debug)]
pub struct StandinSpec {
    /// Name of the stand-in.
    pub name: &'static str,
    /// Depth of the spine in gate levels (`paper_top / 10`).
    pub levels: usize,
    /// Exact floating-delay target in gate levels (`paper_exact / 10`).
    /// Equal to `levels` for circuits whose longest path is true.
    pub exact_levels: usize,
    /// Spine structure (which pipeline stage the `exact + 1` check needs).
    pub kind: SpineKind,
    /// Total gate-count target.
    pub gates: usize,
    /// Number of primary inputs to provision in the filler pool.
    pub inputs: usize,
    /// Number of primary outputs to mark (the spine output plus filler
    /// nets; clamped to what the filler provides).
    pub outputs: usize,
    /// RNG seed for the filler logic.
    pub seed: u64,
}

/// Builds a synthetic stand-in circuit from a [`StandinSpec`] with the
/// given per-gate delay.
///
/// Depth bookkeeping guarantees that the topological delay is exactly
/// `levels × delay` (realized by the spine) and that every path longer than
/// `exact_levels × delay` runs through the spine's falsified structure, so
/// the exact floating delay is `exact_levels × delay`, witnessed by the
/// spine's true path. (Validated against the exhaustive oracle on small
/// instances in `ltt-sta`'s tests, and by the verifier itself in the
/// Table 1 harness.)
///
/// # Panics
///
/// Panics on degenerate specs (`exact_levels > levels`, too-shallow
/// spines, or a gap incompatible with the spine kind).
pub fn standin(spec: &StandinSpec, delay: u32) -> Circuit {
    assert!(spec.exact_levels <= spec.levels, "exact cannot exceed top");
    assert!(spec.exact_levels >= 6, "spine needs at least 6 levels");
    let d = DelayInterval::fixed(delay);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = CircuitBuilder::new(spec.name);

    // `level[net] = longest path (in gates) from any input`, tracked
    // manually during construction.
    let mut level: Vec<usize> = Vec::new();
    let track = |level: &mut Vec<usize>, id: NetId, l: usize| {
        if id.index() >= level.len() {
            level.resize(id.index() + 1, 0);
        }
        level[id.index()] = l;
    };
    let pool: Vec<NetId> = (0..spec.inputs.max(4))
        .map(|i| b.input(format!("i{i}")))
        .collect();
    for &p in &pool {
        track(&mut level, p, 0);
    }
    let mut gates_used = 0usize;

    // A small filler cone with depth ≤ `cap`, XOR-mixed with a dedicated
    // fresh input so that the cone output remains fully controllable.
    let mut cone_counter = 0usize;
    let mut build_cone = |b: &mut CircuitBuilder,
                          rng: &mut StdRng,
                          level: &mut Vec<usize>,
                          gates_used: &mut usize,
                          cap: usize,
                          budget_gates: usize|
     -> NetId {
        cone_counter += 1;
        let fresh = b.input(format!("f{cone_counter}"));
        track(level, fresh, 0);
        if cap < 2 || budget_gates == 0 {
            return fresh;
        }
        let mut local: Vec<NetId> = (0..3).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
        let inner_gates = budget_gates.min(1 + rng.gen_range(0..4));
        let mut out = local[0];
        for k in 0..inner_gates {
            let kind = match rng.gen_range(0..6) {
                0 => GateKind::And,
                1 => GateKind::Or,
                2 => GateKind::Nand,
                3 => GateKind::Nor,
                4 => GateKind::Xor,
                _ => GateKind::Xnor,
            };
            let x = local[rng.gen_range(0..local.len())];
            let y = local[rng.gen_range(0..local.len())];
            if x == y {
                continue;
            }
            let lx = level[x.index()].max(level[y.index()]) + 1;
            if lx + 1 > cap {
                continue; // would violate the depth cap after the XOR mix
            }
            let g = b.gate(format!("c{cone_counter}_{k}"), kind, &[x, y], d);
            *gates_used += 1;
            track(level, g, lx);
            local.push(g);
            out = g;
        }
        if out == local[0] {
            return fresh;
        }
        let mixed = b.gate(
            format!("c{cone_counter}_mix"),
            GateKind::Xor,
            &[out, fresh],
            d,
        );
        *gates_used += 1;
        track(level, mixed, level[out.index()] + 1);
        mixed
    };

    // ---- Spine ----------------------------------------------------------
    let s = match spec.kind {
        SpineKind::Chain | SpineKind::Forked => {
            // prefix p, branch q: top = p + q + 1 levels (Chain) with the
            // forked variant packing its two arms into the same depth.
            let p = spec.exact_levels - 2;
            let q = spec.levels - p - 1;
            match spec.kind {
                SpineKind::Chain => assert!(q >= 1 && q <= p + 1, "{}: bad chain gap", spec.name),
                SpineKind::Forked => assert!(q >= 3 && q <= p + 1, "{}: bad fork gap", spec.name),
                SpineKind::StemMux => unreachable!(),
            }

            let x0 = b.input("x0");
            let x1 = b.input("x1");
            let shared = b.input("shared");
            track(&mut level, x0, 0);
            track(&mut level, x1, 0);
            track(&mut level, shared, 0);

            let mut n = b.gate("sp1", GateKind::And, &[x0, x1], d);
            gates_used += 1;
            track(&mut level, n, 1);
            for i in 2..p {
                // Side-cone budget: filler→side→spine-suffix ≤ exact.
                let cap = i - 1;
                let side = build_cone(&mut b, &mut rng, &mut level, &mut gates_used, cap, 6);
                let kind = if i % 2 == 1 {
                    GateKind::Or
                } else {
                    GateKind::And
                };
                n = b.gate(format!("sp{i}"), kind, &[n, side], d);
                gates_used += 1;
                track(&mut level, n, i);
            }
            // Conflict stem at the last prefix gate (blocks zero-ripples).
            n = b.gate(format!("sp{p}"), GateKind::And, &[n, shared], d);
            gates_used += 1;
            track(&mut level, n, p);

            // Short (true) branch.
            let sb_side = build_cone(&mut b, &mut rng, &mut level, &mut gates_used, p - 1, 6);
            let short = b.gate("short", GateKind::And, &[n, sb_side], d);
            gates_used += 1;
            track(&mut level, short, p + 1);

            match spec.kind {
                SpineKind::Chain => {
                    let branch_side = if q >= 2 {
                        shared
                    } else {
                        let fresh = b.input("q1");
                        track(&mut level, fresh, 0);
                        fresh
                    };
                    let mut a = b.gate("lb1", GateKind::Or, &[n, branch_side], d);
                    gates_used += 1;
                    track(&mut level, a, p + 1);
                    for j in 2..=q {
                        let cap = (p + j).saturating_sub(q).max(1).min(p);
                        let side =
                            build_cone(&mut b, &mut rng, &mut level, &mut gates_used, cap, 4);
                        a = b.gate(format!("lb{j}"), GateKind::And, &[a, side], d);
                        gates_used += 1;
                        track(&mut level, a, p + j);
                    }
                    let s = b.gate("s", GateKind::Or, &[a, short], d);
                    gates_used += 1;
                    track(&mut level, s, p + q + 1);
                    s
                }
                SpineKind::Forked => {
                    let mut arms = Vec::with_capacity(2);
                    for arm in ["fa", "fb"] {
                        let mut a = b.gate(format!("{arm}1"), GateKind::Or, &[n, shared], d);
                        gates_used += 1;
                        track(&mut level, a, p + 1);
                        for j in 2..q {
                            let cap = (p + j).saturating_sub(q).max(1).min(p);
                            let side =
                                build_cone(&mut b, &mut rng, &mut level, &mut gates_used, cap, 4);
                            a = b.gate(format!("{arm}{j}"), GateKind::And, &[a, side], d);
                            gates_used += 1;
                            track(&mut level, a, p + j);
                        }
                        arms.push(a);
                    }
                    let merge = b.gate("merge", GateKind::Or, &[arms[0], arms[1]], d);
                    gates_used += 1;
                    track(&mut level, merge, p + q);
                    let s = b.gate("s", GateKind::Or, &[merge, short], d);
                    gates_used += 1;
                    track(&mut level, s, p + q + 1);
                    s
                }
                SpineKind::StemMux => unreachable!(),
            }
        }
        SpineKind::StemMux => {
            // top = levels, exact = levels − 1 (gap fixed at one level).
            assert_eq!(
                spec.exact_levels + 1,
                spec.levels,
                "{}: StemMux has a fixed gap of one level",
                spec.name
            );
            let depth = spec.levels;
            let y = b.input("y");
            let xa = b.input("xa");
            let xb = b.input("xb");
            track(&mut level, y, 0);
            track(&mut level, xa, 0);
            track(&mut level, xb, 0);
            let ny = b.gate("ny", GateKind::Not, &[y], d);
            gates_used += 1;
            track(&mut level, ny, 1);
            let chain = depth - 3;
            let mut a = xa;
            let mut bb = xb;
            for j in 0..chain {
                if j % 2 == 0 {
                    a = b.gate(format!("ma{j}"), GateKind::Or, &[a, y], d);
                    bb = b.gate(format!("mb{j}"), GateKind::And, &[bb, y], d);
                } else {
                    // Budget: cone→side→stage_j→suffix ≤ exact.
                    let cap = j.max(1);
                    let fa = build_cone(&mut b, &mut rng, &mut level, &mut gates_used, cap, 4);
                    let fb = build_cone(&mut b, &mut rng, &mut level, &mut gates_used, cap, 4);
                    a = b.gate(format!("ma{j}"), GateKind::And, &[a, fa], d);
                    bb = b.gate(format!("mb{j}"), GateKind::Or, &[bb, fb], d);
                }
                gates_used += 2;
                track(&mut level, a, j + 1);
                track(&mut level, bb, j + 1);
            }
            let m1 = b.gate("m1", GateKind::And, &[a, y], d);
            let m2 = b.gate("m2", GateKind::And, &[bb, ny], d);
            let mux = b.gate("mux", GateKind::Or, &[m1, m2], d);
            gates_used += 3;
            track(&mut level, m1, chain + 1);
            track(&mut level, m2, chain + 1);
            track(&mut level, mux, chain + 2);
            // True chain, one level shorter.
            let t0 = b.input("t0");
            track(&mut level, t0, 0);
            let mut t = t0;
            for i in 1..=depth - 2 {
                let cap = i - 1;
                let side = if i == 1 {
                    let fresh = b.input("t1side");
                    track(&mut level, fresh, 0);
                    fresh
                } else {
                    build_cone(&mut b, &mut rng, &mut level, &mut gates_used, cap, 4)
                };
                let kind = if i % 2 == 1 {
                    GateKind::And
                } else {
                    GateKind::Or
                };
                t = b.gate(format!("tc{i}"), kind, &[t, side], d);
                gates_used += 1;
                track(&mut level, t, i);
            }
            let s = b.gate("s", GateKind::Or, &[mux, t], d);
            gates_used += 1;
            track(&mut level, s, depth);
            s
        }
    };
    b.mark_output(s);

    // ---- Free filler ----------------------------------------------------
    let mut filler_nets: Vec<NetId> = pool.clone();
    let depth_cap = spec.exact_levels - 1;
    let mut fill_idx = 0usize;
    while gates_used < spec.gates {
        fill_idx += 1;
        let kind = match rng.gen_range(0..8) {
            0 | 1 => GateKind::Nand,
            2 | 3 => GateKind::Nor,
            4 => GateKind::And,
            5 => GateKind::Or,
            6 => GateKind::Xor,
            _ => GateKind::Not,
        };
        let fanin = if kind == GateKind::Not {
            1
        } else {
            2 + usize::from(rng.gen_bool(0.25))
        };
        let mut inputs = Vec::with_capacity(fanin);
        for _ in 0..fanin {
            let lo = if rng.gen_bool(0.7) {
                filler_nets.len() / 2
            } else {
                0
            };
            let cand = filler_nets[rng.gen_range(lo..filler_nets.len())];
            if level[cand.index()] < depth_cap && !inputs.contains(&cand) {
                inputs.push(cand);
            }
        }
        if inputs.is_empty() || (kind != GateKind::Not && inputs.len() < 2) {
            inputs.clear();
            inputs.push(pool[rng.gen_range(0..pool.len())]);
            if kind != GateKind::Not {
                let mut second = pool[rng.gen_range(0..pool.len())];
                while second == inputs[0] {
                    second = pool[rng.gen_range(0..pool.len())];
                }
                inputs.push(second);
            }
        }
        let lx = inputs.iter().map(|i| level[i.index()]).max().unwrap_or(0) + 1;
        let g = b.gate(format!("fl{fill_idx}"), kind, &inputs, d);
        gates_used += 1;
        track(&mut level, g, lx);
        filler_nets.push(g);
    }
    // Mark filler nets as extra outputs up to the requested output count
    // (deepest-first so the extra checks are non-trivial).
    let want = spec.outputs.saturating_sub(1); // the spine output is one
    let gate_nets: Vec<NetId> = filler_nets
        .iter()
        .copied()
        .filter(|n| n.index() >= pool.len()) // skip primary inputs
        .collect();
    let extra = gate_nets.len().saturating_sub(want);
    for &net in &gate_nets[extra..] {
        b.mark_output(net);
    }

    b.build().expect("stand-in circuit is structurally valid")
}

/// The Table 1 stand-in specifications (delay-10 levels derived from the
/// paper's topological and exact delays; gate/input counts from the
/// published ISCAS'85 statistics; spine kinds chosen to match the stage at
/// which the paper's pipeline settles each circuit).
pub fn standin_specs() -> Vec<StandinSpec> {
    use SpineKind::*;
    vec![
        StandinSpec {
            name: "s432",
            levels: 19,
            exact_levels: 19,
            kind: Chain,
            gates: 160,
            inputs: 36,
            outputs: 7,
            seed: 432,
        },
        StandinSpec {
            name: "s499",
            levels: 25,
            exact_levels: 25,
            kind: Chain,
            gates: 202,
            inputs: 41,
            outputs: 32,
            seed: 499,
        },
        StandinSpec {
            name: "s880",
            levels: 20,
            exact_levels: 20,
            kind: Chain,
            gates: 383,
            inputs: 60,
            outputs: 26,
            seed: 880,
        },
        StandinSpec {
            name: "s1355",
            levels: 27,
            exact_levels: 27,
            kind: Chain,
            gates: 546,
            inputs: 41,
            outputs: 32,
            seed: 1355,
        },
        StandinSpec {
            name: "s1908",
            levels: 34,
            exact_levels: 31,
            kind: Forked,
            gates: 880,
            inputs: 33,
            outputs: 25,
            seed: 1908,
        },
        StandinSpec {
            name: "s2670",
            levels: 25,
            exact_levels: 24,
            kind: StemMux,
            gates: 1193,
            inputs: 157,
            outputs: 140,
            seed: 2670,
        },
        StandinSpec {
            name: "s3540",
            levels: 41,
            exact_levels: 39,
            kind: Forked,
            gates: 1669,
            inputs: 50,
            outputs: 22,
            seed: 3540,
        },
        StandinSpec {
            name: "s5315",
            levels: 46,
            exact_levels: 45,
            kind: Chain,
            gates: 2307,
            inputs: 178,
            outputs: 123,
            seed: 5315,
        },
        StandinSpec {
            name: "s7552",
            levels: 38,
            exact_levels: 37,
            kind: Chain,
            gates: 3512,
            inputs: 207,
            outputs: 108,
            seed: 7552,
        },
    ]
}

/// Builds the full Table 1 suite with the paper's per-gate delay of 10:
/// the NOR-mapped real `c17`, nine structured stand-ins, and the NOR-mapped
/// 16×16 multiplier standing in for c6288.
pub fn iscas85_suite(delay: u32) -> Vec<SuiteEntry> {
    let mut out = Vec::new();
    out.push(SuiteEntry {
        name: "c17",
        circuit: c17_nor(delay),
        paper_top: 50,
        paper_exact: Some(50),
        paper_backtracks: Some(0),
        standin: false,
    });
    let paper: &[(&str, i64, Option<i64>, Option<u64>)] = &[
        ("s432", 190, Some(190), Some(1)),
        ("s499", 250, Some(250), Some(5)),
        ("s880", 200, Some(200), Some(0)),
        ("s1355", 270, Some(270), Some(1)),
        ("s1908", 340, Some(310), Some(5)),
        ("s2670", 250, Some(240), Some(7)),
        ("s3540", 410, Some(390), Some(3)),
        ("s5315", 460, Some(450), Some(16)),
        ("s7552", 380, Some(370), Some(1)),
    ];
    for spec in standin_specs() {
        let (_, top, exact, btr) = paper
            .iter()
            .find(|(n, ..)| *n == spec.name)
            .expect("paper row exists for every spec");
        out.push(SuiteEntry {
            name: spec.name,
            circuit: standin(&spec, delay),
            paper_top: *top,
            paper_exact: *exact,
            paper_backtracks: *btr,
            standin: true,
        });
    }
    out.push(SuiteEntry {
        name: "s6288",
        circuit: nor_mapping(&array_multiplier(16, delay), delay),
        paper_top: 1230,
        paper_exact: None,
        paper_backtracks: None,
        standin: true,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_matches_published_stats() {
        let c = c17(10);
        assert_eq!(c.num_gates(), 6);
        assert_eq!(c.inputs().len(), 5);
        assert_eq!(c.outputs().len(), 2);
        assert_eq!(c.topological_delay(), 30);
        // The paper evaluates the NOR-gate implementation: top = 50.
        assert_eq!(c17_nor(10).topological_delay(), 50);
    }

    #[test]
    fn standins_hit_paper_topological_delays() {
        for spec in standin_specs() {
            let c = standin(&spec, 10);
            assert_eq!(
                c.topological_delay(),
                10 * spec.levels as i64,
                "{} topological delay",
                spec.name
            );
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; covered by `cargo test --release`"
    )]
    fn standins_hit_gate_count_targets() {
        for spec in standin_specs() {
            let c = standin(&spec, 10);
            let lo = spec.gates;
            let hi = spec.gates + 8;
            assert!(
                (lo..=hi).contains(&c.num_gates()),
                "{}: {} gates, wanted about {}",
                spec.name,
                c.num_gates(),
                spec.gates
            );
        }
    }

    #[test]
    fn standins_are_deterministic() {
        let spec = standin_specs()[0];
        let a = standin(&spec, 10);
        let b = standin(&spec, 10);
        assert_eq!(a.num_gates(), b.num_gates());
        assert_eq!(a.topological_delay(), b.topological_delay());
    }

    #[test]
    fn suite_has_eleven_entries() {
        let suite = iscas85_suite(10);
        assert_eq!(suite.len(), 11);
        assert!(suite.iter().any(|e| !e.standin && e.name == "c17"));
        // The NOR-mapped multiplier stand-in is the big one.
        let mul = suite.iter().find(|e| e.name == "s6288").unwrap();
        assert!(mul.circuit.num_gates() > 2000);
    }

    #[test]
    fn conflict_stem_fans_out_in_false_path_standins() {
        let spec = standin_specs()
            .into_iter()
            .find(|s| s.kind == SpineKind::Chain && s.exact_levels < s.levels)
            .unwrap();
        let c = standin(&spec, 10);
        let shared = c.net_by_name("shared").unwrap();
        assert!(c.net(shared).is_fanout_stem());
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; covered by `cargo test --release`"
    )]
    fn small_standins_of_each_kind_match_oracle() {
        // Miniature specs with few inputs: the exhaustive oracle validates
        // both delays for every spine kind.
        for (kind, levels, exact) in [
            (SpineKind::Chain, 10usize, 8usize),
            (SpineKind::Chain, 9, 9),
            (SpineKind::Forked, 11, 8),
            (SpineKind::StemMux, 9, 8),
        ] {
            let spec = StandinSpec {
                name: "mini",
                levels,
                exact_levels: exact,
                kind,
                gates: 26,
                inputs: 5,
                outputs: 3,
                seed: 7,
            };
            let c = standin(&spec, 10);
            assert_eq!(c.topological_delay(), 10 * levels as i64, "{kind:?}");
            if let Some(fd) = ltt_sta_oracle(&c) {
                assert_eq!(fd, 10 * exact as i64, "{kind:?} exact");
            }
        }
    }

    // The netlist crate cannot depend on ltt-sta (which depends on it);
    // approximate the oracle locally with the same floating-mode rule.
    fn ltt_sta_oracle(c: &Circuit) -> Option<i64> {
        let mut best = None;
        for &o in c.outputs() {
            let cone = c.fanin_cone(o);
            let cone_inputs: Vec<usize> = c
                .inputs()
                .iter()
                .enumerate()
                .filter(|(_, n)| cone[n.index()])
                .map(|(i, _)| i)
                .collect();
            if cone_inputs.len() > 18 {
                return None;
            }
            let mut vector = vec![false; c.inputs().len()];
            for assignment in 0u64..(1 << cone_inputs.len()) {
                for (bit, &slot) in cone_inputs.iter().enumerate() {
                    vector[slot] = (assignment >> bit) & 1 == 1;
                }
                let t = floating_delay(c, &vector, o);
                if best.is_none_or(|b| t > b) {
                    best = Some(t);
                }
            }
        }
        best
    }

    fn floating_delay(c: &Circuit, vector: &[bool], output: NetId) -> i64 {
        let mut val = vec![false; c.num_nets()];
        let mut time = vec![0i64; c.num_nets()];
        for (&n, &v) in c.inputs().iter().zip(vector) {
            val[n.index()] = v;
        }
        for &gid in c.topo_gates() {
            let g = c.gate(gid);
            let vals: Vec<bool> = g.inputs().iter().map(|n| val[n.index()]).collect();
            let v = g.kind().eval(&vals);
            let d = i64::from(g.dmax());
            let t = match g.kind().controlling_value() {
                Some(ctrl) if vals.contains(&ctrl) => g
                    .inputs()
                    .iter()
                    .zip(&vals)
                    .filter(|&(_, &x)| x == ctrl)
                    .map(|(n, _)| time[n.index()])
                    .min()
                    .unwrap()
                    .checked_add(d)
                    .unwrap(),
                _ => g
                    .inputs()
                    .iter()
                    .map(|n| time[n.index()])
                    .max()
                    .unwrap()
                    .checked_add(d)
                    .unwrap(),
            };
            val[g.output().index()] = v;
            time[g.output().index()] = t;
        }
        time[output.index()]
    }
}

#[cfg(test)]
mod cone_tests {
    use crate::generators::figure1;

    #[test]
    fn figure1_cone_is_whole_circuit() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let cone = c.extract_cone(s);
        assert_eq!(cone.num_gates(), c.num_gates());
        assert_eq!(cone.inputs().len(), c.inputs().len());
        assert_eq!(cone.topological_delay(), c.topological_delay());
    }

    #[test]
    fn standin_spine_cone_drops_free_filler() {
        let spec = super::standin_specs()[0];
        let c = super::standin(&spec, 10);
        let s = c.net_by_name("s").unwrap();
        let cone = c.extract_cone(s);
        assert!(cone.num_gates() < c.num_gates());
        assert_eq!(cone.topological_delay(), c.topological_delay());
        // Function is preserved on shared inputs: spot check by evaluating
        // the cone with all-ones vs. reading the full circuit.
        let all_ones = vec![true; cone.inputs().len()];
        let _ = cone.evaluate(&all_ones);
    }
}
