module t (a, y);
 input a; output y;
 and (y, a, ghost);
endmodule
