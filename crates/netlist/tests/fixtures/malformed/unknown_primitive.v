module t (a, y);
 input a; output y;
 frob (y, a);
endmodule
