module t (x, y);
 input x; output y;
 and (a, b, x);
 and (b, a, x);
 or (y, a, b);
endmodule
