module t (a, y);
 input a; output y;
endmodule
