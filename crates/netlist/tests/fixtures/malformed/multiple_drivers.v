module t (a, b, y);
 input a, b; output y;
 and (y, a, b);
 or (y, a, b);
endmodule
