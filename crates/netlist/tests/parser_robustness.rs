//! Failure injection for every parser: arbitrary input (including
//! truncated and mutated valid netlists) must produce `Err`, never a
//! panic — the robustness bar for anything that reads files.

use ltt_netlist::bench_format::{parse_bench, write_bench};
use ltt_netlist::sdf::parse_sdf;
use ltt_netlist::verilog::parse_verilog;
use ltt_netlist::DelayInterval;
use proptest::prelude::*;

const VALID_BENCH: &str = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nm = NAND(a, b)\ny = NOT(m)\n";
const VALID_VERILOG: &str =
    "module t (a, b, y);\n input a, b;\n output y;\n nand (m, a, b);\n not (y, m);\nendmodule\n";
const VALID_SDF: &str =
    r#"(DELAYFILE (DESIGN "t") (CELL (INSTANCE m) (DELAY (ABSOLUTE (IOPATH a m (1:2:3))))))"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bench_parser_never_panics(input in ".{0,200}") {
        let _ = parse_bench("fuzz", &input, DelayInterval::fixed(1));
    }

    #[test]
    fn verilog_parser_never_panics(input in ".{0,200}") {
        let _ = parse_verilog(&input, DelayInterval::fixed(1));
    }

    #[test]
    fn sdf_parser_never_panics(input in ".{0,200}") {
        let _ = parse_sdf(&input);
    }

    /// Truncation injection: every prefix of a valid file either parses or
    /// errors cleanly.
    #[test]
    fn truncated_valid_inputs_fail_cleanly(cut in 0usize..200) {
        let bench = &VALID_BENCH[..cut.min(VALID_BENCH.len())];
        let _ = parse_bench("t", bench, DelayInterval::fixed(1));
        let verilog = &VALID_VERILOG[..cut.min(VALID_VERILOG.len())];
        let _ = parse_verilog(verilog, DelayInterval::fixed(1));
        let sdf = &VALID_SDF[..cut.min(VALID_SDF.len())];
        let _ = parse_sdf(sdf);
    }

    /// Mutation injection: flipping one byte of a valid file never panics,
    /// and if it still parses, the circuit is structurally valid (the
    /// builder's invariants hold by construction).
    #[test]
    fn mutated_valid_inputs_fail_cleanly(pos in 0usize..100, byte in 32u8..127) {
        let mutate = |src: &str| -> String {
            let mut bytes = src.as_bytes().to_vec();
            if !bytes.is_empty() {
                let i = pos % bytes.len();
                bytes[i] = byte;
            }
            String::from_utf8_lossy(&bytes).into_owned()
        };
        if let Ok(c) = parse_bench("t", &mutate(VALID_BENCH), DelayInterval::fixed(1)) {
            // Still-parsable mutants round-trip.
            let _ = parse_bench("t", &write_bench(&c), DelayInterval::fixed(1)).unwrap();
        }
        let _ = parse_verilog(&mutate(VALID_VERILOG), DelayInterval::fixed(1));
        let _ = parse_sdf(&mutate(VALID_SDF));
    }
}

#[test]
fn pathological_nesting_is_rejected() {
    // Deep SDF nesting must be rejected (the scanner enforces a nesting
    // cap instead of recursing until the stack gives out).
    let mut deep = String::new();
    for _ in 0..5_000 {
        deep.push('(');
    }
    assert!(parse_sdf(&deep).is_err());
    let mut closes = String::from("(DELAYFILE");
    for _ in 0..5_000 {
        closes.push(')');
    }
    let _ = parse_sdf(&closes);
}

#[test]
fn enormous_tokens_are_handled() {
    let long_name = "x".repeat(100_000);
    let src = format!("INPUT({long_name})\nOUTPUT(y)\ny = NOT({long_name})\n");
    let c = parse_bench("t", &src, DelayInterval::fixed(1)).unwrap();
    assert_eq!(c.num_gates(), 1);
}
