//! Malformed-input fixtures: every file under `tests/fixtures/malformed/`
//! must be rejected with a *descriptive* error — naming the offending net,
//! gate, or line — and must never panic. These are the concrete regression
//! anchors behind the fuzz-style checks in `parser_robustness.rs`.

use ltt_netlist::bench_format::parse_bench;
use ltt_netlist::verilog::parse_verilog;
use ltt_netlist::DelayInterval;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/malformed")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"))
}

/// Parses the fixture and asserts the error message mentions every
/// expected fragment (net name, construct, line — whatever makes the
/// error actionable).
fn assert_rejected(name: &str, expect: &[&str]) {
    let src = fixture(name);
    let d = DelayInterval::fixed(10);
    let message = if name.ends_with(".v") {
        parse_verilog(&src, d)
            .err()
            .unwrap_or_else(|| panic!("{name} parsed but must be rejected"))
            .to_string()
    } else {
        parse_bench(name, &src, d)
            .err()
            .unwrap_or_else(|| panic!("{name} parsed but must be rejected"))
            .to_string()
    };
    for fragment in expect {
        assert!(
            message.contains(fragment),
            "{name}: error `{message}` does not mention `{fragment}`"
        );
    }
}

#[test]
fn bench_combinational_cycle() {
    assert_rejected("cycle.bench", &["cycle", "`a`"]);
}

#[test]
fn bench_undriven_net() {
    assert_rejected("undriven.bench", &["ghost", "neither an input nor driven"]);
}

#[test]
fn bench_multiple_drivers() {
    assert_rejected("multiple_drivers.bench", &["`y`", "multiple drivers"]);
}

#[test]
fn bench_unknown_gate_names_the_line() {
    assert_rejected("unknown_gate.bench", &["FROB", "line 3"]);
}

#[test]
fn bench_syntax_error_names_the_line() {
    assert_rejected("bad_syntax.bench", &["syntax error", "line 3"]);
}

#[test]
fn bench_empty_file() {
    assert_rejected("empty.bench", &["no primary output"]);
}

#[test]
fn bench_driven_primary_input() {
    assert_rejected("driven_input.bench", &["input `a`", "also driven"]);
}

#[test]
fn verilog_combinational_cycle() {
    assert_rejected("cycle.v", &["cycle", "`a`"]);
}

#[test]
fn verilog_undriven_net() {
    assert_rejected("undriven.v", &["ghost", "neither an input nor driven"]);
}

#[test]
fn verilog_multiple_drivers() {
    assert_rejected("multiple_drivers.v", &["`y`", "multiple drivers"]);
}

#[test]
fn verilog_unknown_primitive_names_the_line() {
    assert_rejected("unknown_primitive.v", &["frob", "line 3"]);
}

#[test]
fn verilog_undriven_output_port() {
    assert_rejected("undriven_output.v", &["`y`", "neither an input nor driven"]);
}
