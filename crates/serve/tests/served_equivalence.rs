//! Serial-vs-served equivalence: every report a daemon sends over the
//! socket is bit-identical to running the same checks in-process through
//! a serial `BatchRunner` and serializing with the same `proto` helpers.
//! Only wall-clock fields (`elapsed_us`, `wall_us`, `stage_us`) are
//! exempt.

use ltt_core::{BatchRunner, CheckSession};
use ltt_netlist::bench_format::{parse_bench, write_bench};
use ltt_netlist::generators::figure1;
use ltt_netlist::suite::c17;
use ltt_netlist::{Circuit, DelayInterval, NetId};
use ltt_serve::proto::{batch_json, delay_json, ok_response};
use ltt_serve::{Client, Json, ServeConfig, Server};

fn start_server() -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let join = std::thread::spawn(move || server.run());
    (addr, join)
}

/// Drops the wall-clock fields, the only parts of a reply that may differ
/// between a served run and a local rerun.
fn strip_timing(v: &Json) -> Json {
    match v {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| !matches!(k.as_str(), "elapsed_us" | "wall_us" | "stage_us"))
                .map(|(k, val)| (k.clone(), strip_timing(val)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_timing).collect()),
        other => other.clone(),
    }
}

/// Every output crossed with δ values straddling the interesting region.
fn checks_for(circuit: &Circuit) -> (Vec<String>, Vec<(NetId, i64)>) {
    let top = circuit.topological_delay();
    let deltas = [top / 2, top - 10, top, top + 1];
    let mut names = Vec::new();
    let mut checks = Vec::new();
    for &o in circuit.outputs() {
        for &d in &deltas {
            names.push(circuit.net(o).name().to_string());
            checks.push((o, d));
        }
    }
    (names, checks)
}

#[test]
fn served_reports_match_serial_run() {
    let (addr, join) = start_server();
    let mut client = Client::connect(&addr).expect("connect");

    for (name, circuit) in [("c17", c17(10)), ("figure1", figure1(10))] {
        let source = write_bench(&circuit);
        // The server analyses what it parses from the upload, so the local
        // reference must run on the same reparsed circuit — under the
        // registry's exact session configuration (cone-sliced checking
        // changes effort counters and witness search order, so a
        // differently-configured oracle would not be bit-identical).
        let parsed = parse_bench(name, &source, DelayInterval::fixed(10)).expect("reparse");
        let session = CheckSession::new(&parsed, ltt_serve::session_config());
        let (names, checks) = checks_for(&parsed);

        let reply = client
            .call(&Json::obj([
                ("op", Json::str("register")),
                ("name", Json::str(name)),
                ("source", Json::str(source.clone())),
            ]))
            .expect("register");
        assert_eq!(
            reply.get("ok"),
            Some(&Json::Bool(true)),
            "{}",
            reply.encode()
        );
        let key = reply
            .get("circuit")
            .and_then(Json::as_str)
            .expect("content id")
            .to_string();

        // batch_check with explicit (output, δ) pairs, request order kept.
        let id = Json::Int(42);
        let batch = BatchRunner::new(1).run(&session, &checks);
        let expected = ok_response("batch_check", Some(&id), batch_json(&batch, &names));
        let check_items: Vec<Json> = names
            .iter()
            .zip(&checks)
            .map(|(n, &(_, d))| {
                Json::obj([("output", Json::str(n.clone())), ("delta", Json::Int(d))])
            })
            .collect();
        // jobs:4 must answer byte-for-byte like jobs:1 — parallelism is
        // invisible in the reports (the determinism contract).
        for jobs in [1i64, 4] {
            let served = client
                .call(&Json::obj([
                    ("op", Json::str("batch_check")),
                    ("circuit", Json::str(key.clone())),
                    ("checks", Json::Arr(check_items.clone())),
                    ("id", id.clone()),
                    ("opts", Json::obj([("jobs", Json::Int(jobs))])),
                ]))
                .expect("batch_check");
            assert_eq!(
                strip_timing(&served),
                strip_timing(&expected),
                "batch_check jobs={jobs} on {name}"
            );
        }

        // The single-check op serializes through the same batch shape.
        let (one_name, one_check) = (names[0].clone(), checks[0]);
        let single = BatchRunner::new(1).run(&session, &[one_check]);
        let expected = ok_response(
            "check",
            Some(&id),
            batch_json(&single, std::slice::from_ref(&one_name)),
        );
        let served = client
            .call(&Json::obj([
                ("op", Json::str("check")),
                ("circuit", Json::str(key.clone())),
                ("output", Json::str(one_name)),
                ("delta", Json::Int(one_check.1)),
                ("id", id.clone()),
            ]))
            .expect("check");
        assert_eq!(
            strip_timing(&served),
            strip_timing(&expected),
            "check on {name}"
        );

        // Exact-delay search across every output.
        let results: Vec<Json> = parsed
            .outputs()
            .iter()
            .zip(BatchRunner::new(1).try_exact_delays(&session))
            .map(|(&o, r)| delay_json(&r.expect("delay search"), parsed.net(o).name()))
            .collect();
        let expected = ok_response(
            "delay",
            Some(&id),
            vec![("results".to_string(), Json::Arr(results))],
        );
        let served = client
            .call(&Json::obj([
                ("op", Json::str("delay")),
                ("circuit", Json::str(key.clone())),
                ("id", id.clone()),
            ]))
            .expect("delay");
        assert_eq!(
            strip_timing(&served),
            strip_timing(&expected),
            "delay on {name}"
        );

        // Single-output delay takes the budgeted direct-search path; the
        // result must still match the plain session search.
        let target = *parsed.outputs().last().expect("an output");
        let expected_one = delay_json(&session.exact_delay(target), parsed.net(target).name());
        let served = client
            .call(&Json::obj([
                ("op", Json::str("delay")),
                ("circuit", Json::str(key.clone())),
                ("output", Json::str(parsed.net(target).name())),
            ]))
            .expect("single delay");
        let first = served
            .get("results")
            .and_then(Json::as_array)
            .and_then(|r| r.first())
            .expect("one result");
        assert_eq!(
            strip_timing(first),
            strip_timing(&expected_one),
            "single-output delay on {name}"
        );
    }

    let _ = client.call(&Json::obj([("op", Json::str("shutdown"))]));
    drop(client);
    join.join().expect("server thread").expect("clean drain");
}
