//! Single-daemon robustness, observed from outside the process:
//!
//! * an oversize request line yields a structured `too_large` error and
//!   the connection keeps working — the daemon never buffers the line;
//! * a graceful drain answers everything admitted, refuses late work
//!   with `shutting_down`, and refuses *new connections* at the OS level
//!   (the listener is dropped, so peers see `connection refused`, not a
//!   black hole);
//! * a client armed with a read timeout gets a `TimedOut` error from a
//!   stalled peer instead of blocking forever.

use ltt_netlist::bench_format::write_bench;
use ltt_netlist::generators::carry_skip_adder;
use ltt_netlist::suite::c17;
use ltt_serve::{Client, Json, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn start_server(config: ServeConfig) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&config).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let join = std::thread::spawn(move || server.run());
    (addr, join)
}

fn counter(status: &Json, group: &str, field: &str) -> i64 {
    status
        .get(group)
        .and_then(|g| g.get(field))
        .and_then(Json::as_i64)
        .unwrap_or(-1)
}

#[test]
fn oversize_line_gets_too_large_and_the_connection_survives() {
    let (addr, join) = start_server(ServeConfig {
        max_line_bytes: 1024,
        ..Default::default()
    });
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // 8 KiB against a 1 KiB cap — and the line is even valid JSON, to
    // prove the refusal happens at the framing layer, before parsing.
    let big = format!(
        r#"{{"op":"register","name":"big","source":"{}"}}"#,
        "x".repeat(8 * 1024)
    );
    writeln!(stream, "{big}").expect("write");
    stream.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("reply");
    let reply = ltt_serve::decode(line.trim()).expect("json");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(false)), "{line}");
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("too_large"),
        "{line}"
    );

    // The same connection still serves normal traffic afterwards.
    writeln!(stream, r#"{{"op":"status","id":"after"}}"#).expect("write");
    stream.flush().expect("flush");
    line.clear();
    reader.read_line(&mut line).expect("status reply");
    let status = ltt_serve::decode(line.trim()).expect("json");
    assert_eq!(status.get("ok"), Some(&Json::Bool(true)), "{line}");
    assert_eq!(counter(&status, "requests", "too_large"), 1, "{line}");
    // `too_large` is refused before admission, so the accounting identity
    // (submitted = overloaded + queued + in_flight + completed + panicked)
    // must not count it as submitted.
    assert_eq!(counter(&status, "requests", "submitted"), 0, "{line}");

    writeln!(stream, r#"{{"op":"shutdown"}}"#).expect("write");
    stream.flush().expect("flush");
    line.clear();
    reader.read_line(&mut line).expect("shutdown reply");
    join.join().expect("server thread").expect("clean drain");
}

#[test]
fn graceful_drain_answers_admitted_work_and_refuses_the_rest() {
    let (addr, join) = start_server(ServeConfig {
        jobs: 1,
        queue_cap: 8,
        ..Default::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    let source = write_bench(&carry_skip_adder(6, 3, 10));
    let reply = client
        .call(&Json::obj([
            ("op", Json::str("register")),
            ("name", Json::str("adder")),
            ("source", Json::str(source)),
        ]))
        .expect("register");
    let key = reply
        .get("circuit")
        .and_then(Json::as_str)
        .expect("content id")
        .to_string();
    let output = reply
        .get("outputs")
        .and_then(Json::as_array)
        .and_then(|o| o.last())
        .and_then(Json::as_str)
        .expect("an output")
        .to_string();

    // Pipeline slow work without reading, so some of it is queued (and
    // thus admitted) when the drain begins.
    let pipelined = 4usize;
    for i in 0..pipelined {
        client
            .send(&Json::obj([
                ("op", Json::str("delay")),
                ("circuit", Json::str(key.clone())),
                ("output", Json::str(output.clone())),
                ("id", Json::Int(i as i64)),
            ]))
            .expect("send");
    }
    let mut other = Client::connect(&addr).expect("second connection");
    let shutdown = other
        .call(&Json::obj([("op", Json::str("shutdown"))]))
        .expect("shutdown reply");
    assert_eq!(shutdown.get("ok"), Some(&Json::Bool(true)));

    // Every pipelined slot is answered — with a result if it was admitted
    // before the drain, with `shutting_down` if its line was only read
    // after. Nothing hangs, nothing is dropped.
    let mut completed = 0;
    let mut refused = 0;
    for _ in 0..pipelined {
        let reply = client
            .recv()
            .expect("drain reply")
            .expect("a reply line, not a hang-up");
        if reply.get("ok") == Some(&Json::Bool(true)) {
            completed += 1;
        } else {
            assert_eq!(
                reply
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str),
                Some("shutting_down"),
                "{}",
                reply.encode()
            );
            refused += 1;
        }
    }
    assert_eq!(completed + refused, pipelined);
    assert!(completed >= 1, "the in-flight request must complete");
    join.join().expect("server thread").expect("clean drain");

    // The listener is gone with the drain: connecting now fails at the OS
    // level instead of parking in a dead backlog.
    assert!(
        TcpStream::connect(&addr).is_err(),
        "post-drain connections must be refused"
    );
}

#[test]
fn read_timeout_surfaces_instead_of_hanging_on_a_stalled_peer() {
    // A "server" that accepts and then never says anything.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let hold = std::thread::spawn(move || listener.accept());

    let mut client =
        Client::connect_timeout(&addr, Duration::from_secs(2)).expect("connect_timeout");
    client
        .set_read_timeout(Some(Duration::from_millis(200)))
        .expect("arm timeout");
    let started = Instant::now();
    let err = client
        .call(&Json::obj([("op", Json::str("status"))]))
        .expect_err("a stalled peer must not answer");
    assert!(
        ltt_serve::is_timeout(&err),
        "expected a timeout, got: {err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "the timeout must fire at ~200ms, not block"
    );
    // c17 checks still work against a real server afterwards (the client
    // object is not poisoned by the timeout, only that connection is).
    drop(client);
    let _ = hold.join();

    let (addr, join) = start_server(ServeConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    let reply = client
        .call(&Json::obj([
            ("op", Json::str("register")),
            ("name", Json::str("c17")),
            ("source", Json::str(write_bench(&c17(10)))),
        ]))
        .expect("register");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
    let _ = client.call(&Json::obj([("op", Json::str("shutdown"))]));
    join.join().expect("server thread").expect("clean drain");
}
