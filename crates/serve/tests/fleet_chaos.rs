//! Chaos tests for the fleet: backends die and drop replies mid-workload
//! while concurrent clients hammer the router. The invariant under every
//! injected fault: an accepted request gets **exactly one reply**, and it
//! is either bit-identical to the healthy fleet's answer or a structured
//! `unavailable`/`overloaded`/`shutting_down` rejection — never a hang,
//! never a wrong answer.
//!
//! Failpoints are process-global, so the test that arms one holds
//! `CHAOS_LOCK` (the kill test takes it too: a stray armed failpoint
//! would contaminate its backends).

use ltt_netlist::bench_format::write_bench;
use ltt_netlist::generators::{random_circuit, RandomCircuitConfig};
use ltt_serve::{Client, Json, Router, RouterConfig, RouterHandle};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_config(spawn: usize, health_interval: Duration) -> RouterConfig {
    RouterConfig {
        spawn,
        backend_jobs: 2,
        jobs: 4,
        replicas: 2,
        max_retries: 2,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(40),
        connect_timeout: Duration::from_millis(500),
        rpc_timeout: Duration::from_millis(2000),
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(300),
        health_interval,
        ..Default::default()
    }
}

fn start(
    config: RouterConfig,
) -> (
    String,
    RouterHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let router = Router::bind(config).expect("bind router");
    let addr = router.local_addr().expect("addr").to_string();
    let handle = router.handle();
    let join = std::thread::spawn(move || router.run());
    (addr, handle, join)
}

fn register(client: &mut Client, name: &str, source: &str) -> String {
    let reply = client
        .call(&Json::obj([
            ("op", Json::str("register")),
            ("name", Json::str(name)),
            ("source", Json::str(source)),
        ]))
        .expect("register");
    assert_eq!(
        reply.get("ok"),
        Some(&Json::Bool(true)),
        "{}",
        reply.encode()
    );
    reply
        .get("circuit")
        .and_then(Json::as_str)
        .expect("content id")
        .to_string()
}

fn strip_timing(v: &Json) -> Json {
    match v {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| !matches!(k.as_str(), "elapsed_us" | "wall_us" | "stage_us"))
                .map(|(k, val)| (k.clone(), strip_timing(val)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_timing).collect()),
        other => other.clone(),
    }
}

fn check_request(key: &str, delta: i64) -> Json {
    Json::obj([
        ("op", Json::str("batch_check")),
        ("circuit", Json::str(key)),
        ("delta", Json::Int(delta)),
        ("id", Json::Int(0)),
    ])
}

/// A batch of circuits spread over the ring, with each one's healthy
/// baseline reply (timing-stripped) for later comparison.
fn seeded_workload(client: &mut Client, count: u64) -> Vec<(String, i64, String)> {
    (0..count)
        .map(|i| {
            let circuit = random_circuit(&RandomCircuitConfig {
                num_gates: 40,
                num_outputs: 2,
                seed: 0xC4A0 + i,
                ..Default::default()
            });
            let key = register(client, &format!("chaos-{i}"), &write_bench(&circuit));
            let delta = circuit.topological_delay();
            let baseline =
                strip_timing(&client.call(&check_request(&key, delta)).expect("reply")).encode();
            (key, delta, baseline)
        })
        .collect()
}

/// Per-thread chaos tally.
#[derive(Default)]
struct Outcomes {
    correct: u64,
    rejected: u64,
    wrong: Vec<String>,
}

#[test]
fn backend_kill_mid_run_loses_no_request_and_opens_the_breaker() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    ltt_core::failpoint::clear_all();
    let (addr, handle, join) = start(chaos_config(3, Duration::from_millis(100)));
    let mut main = Client::connect(&addr).expect("connect");
    let workload = seeded_workload(&mut main, 6);
    let killed_addr = handle.backend_addrs()[0].clone();

    // Concurrent clients replay the workload while the kill lands.
    let clients = 4usize;
    let rounds = 8usize;
    let results: Vec<Outcomes> = std::thread::scope(|scope| {
        let workload = &workload;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    let mut outcomes = Outcomes::default();
                    for r in 0..rounds {
                        for (key, delta, baseline) in workload {
                            let reply = client
                                .call(&check_request(key, *delta))
                                .expect("exactly one reply per request, never a hang");
                            if reply.get("ok") == Some(&Json::Bool(true)) {
                                let got = strip_timing(&reply).encode();
                                if got == *baseline {
                                    outcomes.correct += 1;
                                } else {
                                    outcomes.wrong.push(got);
                                }
                            } else {
                                match reply
                                    .get("error")
                                    .and_then(|e| e.get("code"))
                                    .and_then(Json::as_str)
                                {
                                    Some("unavailable" | "overloaded" | "shutting_down") => {
                                        outcomes.rejected += 1
                                    }
                                    _ => outcomes.wrong.push(reply.encode()),
                                }
                            }
                        }
                        // Stagger the rounds a little so the kill lands
                        // mid-traffic for every thread.
                        if r == 0 && c == 0 {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                    }
                    outcomes
                })
            })
            .collect();
        // Let the fleet take some healthy traffic, then kill a backend.
        std::thread::sleep(Duration::from_millis(50));
        handle.kill_backend(0);
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    let mut correct = 0;
    let mut rejected = 0;
    for outcome in results {
        assert!(
            outcome.wrong.is_empty(),
            "wrong answers under chaos: {:?}",
            outcome.wrong
        );
        correct += outcome.correct;
        rejected += outcome.rejected;
    }
    let total = (clients * rounds * workload.len()) as u64;
    assert_eq!(
        correct + rejected,
        total,
        "every request is answered exactly once"
    );
    assert!(
        correct >= total / 2,
        "the surviving backends must answer most traffic ({correct}/{total})"
    );

    // The health probes must notice the corpse and open its breaker; the
    // metrics must expose that per backend.
    let deadline = Instant::now() + Duration::from_secs(4);
    let metrics = loop {
        let reply = main
            .call(&Json::obj([("op", Json::str("metrics"))]))
            .expect("metrics");
        let body = reply
            .get("body")
            .and_then(Json::as_str)
            .expect("metrics body")
            .to_string();
        let opened = body
            .lines()
            .filter(|l| l.starts_with("ltt_backend_breaker_opened_total"))
            .any(|l| l.contains(&killed_addr) && !l.trim_end().ends_with(" 0"));
        if opened || Instant::now() > deadline {
            break body;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        metrics
            .lines()
            .any(|l| l.starts_with("ltt_backend_breaker_opened_total")
                && l.contains(&killed_addr)
                && !l.trim_end().ends_with(" 0")),
        "the killed backend's breaker must open:\n{metrics}"
    );
    assert!(
        metrics.contains("ltt_backend_healthy") && metrics.contains("ltt_router_retries_total"),
        "router metrics families must be exposed:\n{metrics}"
    );

    let _ = main.call(&Json::obj([("op", Json::str("shutdown"))]));
    join.join().expect("router thread").expect("clean drain");
}

#[test]
fn dropped_replies_fail_over_without_wrong_answers() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    ltt_core::failpoint::clear_all();
    // Health probes are effectively off: the rpc counters below must move
    // only with request traffic, so the circuit's owner is identifiable.
    let mut config = chaos_config(2, Duration::from_secs(120));
    config.rpc_timeout = Duration::from_millis(300);
    let (addr, handle, join) = start(config);
    let mut client = Client::connect(&addr).expect("connect");

    let circuit = random_circuit(&RandomCircuitConfig {
        num_gates: 40,
        num_outputs: 2,
        seed: 0xD20F,
        ..Default::default()
    });
    let key = register(&mut client, "dropper", &write_bench(&circuit));
    let delta = circuit.topological_delay();

    let rpcs_by_backend = |client: &mut Client| -> Vec<(String, i64)> {
        let status = client
            .call(&Json::obj([("op", Json::str("status"))]))
            .expect("status");
        status
            .get("backends")
            .and_then(Json::as_array)
            .expect("backends")
            .iter()
            .map(|b| {
                (
                    b.get("addr").and_then(Json::as_str).unwrap().to_string(),
                    b.get("rpcs").and_then(Json::as_i64).unwrap_or(0),
                )
            })
            .collect()
    };

    // Identify the owner: the backend whose rpc counter moves on a check.
    let before = rpcs_by_backend(&mut client);
    let baseline = strip_timing(&client.call(&check_request(&key, delta)).expect("reply")).encode();
    let after = rpcs_by_backend(&mut client);
    let owner = before
        .iter()
        .zip(&after)
        .find(|((_, b), (_, a))| a > b)
        .map(|((addr, _), _)| addr.clone())
        .expect("some backend served the check");

    // From here on, the owner executes every check but its replies are
    // torn down before leaving — the "crashed after doing the work" case.
    ltt_core::failpoint::set(
        "serve::drop_reply",
        Some(&owner),
        ltt_core::failpoint::FailAction::Flag,
    );
    for _ in 0..5 {
        let reply = client
            .call(&check_request(&key, delta))
            .expect("failover reply");
        assert_eq!(
            strip_timing(&reply).encode(),
            baseline,
            "failover must reproduce the exact healthy answer"
        );
    }
    ltt_core::failpoint::clear_all();

    // The router had to abandon the owner at least once per open-breaker
    // window; the counters prove the path was exercised.
    let status = client
        .call(&Json::obj([("op", Json::str("status"))]))
        .expect("status");
    let failovers = status
        .get("requests")
        .and_then(|r| r.get("failovers"))
        .and_then(Json::as_i64)
        .unwrap_or(0);
    assert!(
        failovers >= 1,
        "dropped replies must surface as failovers: {}",
        status.encode()
    );
    drop(handle);

    let _ = client.call(&Json::obj([("op", Json::str("shutdown"))]));
    join.join().expect("router thread").expect("clean drain");
}
