//! ECO patch over the wire: `patch` registers a rebased revision whose
//! served reports are **bit-identical** to a cold session on the edited
//! circuit, while untouched cones answer from the transplanted result
//! cache (`"reused":true`) without re-executing. The identity must
//! survive the router hop, and chained patches must land on the same
//! content id as one batched patch.

use ltt_core::{BatchRunner, CheckSession};
use ltt_netlist::bench_format::parse_bench;
use ltt_netlist::{CircuitEdit, DelayInterval, NetId};
use ltt_serve::proto::{batch_json, ok_response};
use ltt_serve::{patched_id, Client, EditSpec, Json, Router, RouterConfig, ServeConfig, Server};
use std::time::Duration;

/// Two structurally independent output cones: an edit inside `y`'s cone
/// must leave every analysis and cached report for `z` transplantable.
const TWO_CONE: &str = "\
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
OUTPUT(z)
u = AND(a, b)
y = NAND(u, b)
v = OR(c, d)
z = NOT(v)
";

fn start_server() -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let join = std::thread::spawn(move || server.run());
    (addr, join)
}

fn register(client: &mut Client, name: &str, source: &str) -> String {
    let reply = client
        .call(&Json::obj([
            ("op", Json::str("register")),
            ("name", Json::str(name)),
            ("source", Json::str(source)),
        ]))
        .expect("register");
    assert_eq!(
        reply.get("ok"),
        Some(&Json::Bool(true)),
        "{}",
        reply.encode()
    );
    reply
        .get("circuit")
        .and_then(Json::as_str)
        .expect("content id")
        .to_string()
}

/// Drops wall-clock fields and (optionally) the per-report `reused`
/// markers, the only parts of a patched reply that a cold session cannot
/// reproduce.
fn strip(v: &Json, drop_reused: bool) -> Json {
    match v {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| {
                    let timing = matches!(k.as_str(), "elapsed_us" | "wall_us" | "stage_us");
                    !(timing || (drop_reused && k == "reused"))
                })
                .map(|(k, val)| (k.clone(), strip(val, drop_reused)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(|i| strip(i, drop_reused)).collect()),
        other => other.clone(),
    }
}

/// The explicit check set used throughout: every output crossed with δ
/// values straddling the interesting region.
fn check_items(names: &[&str], deltas: &[i64]) -> Vec<Json> {
    names
        .iter()
        .flat_map(|&n| {
            deltas
                .iter()
                .map(move |&d| Json::obj([("output", Json::str(n)), ("delta", Json::Int(d))]))
        })
        .collect()
}

fn patch_request(
    parent: &str,
    name: Option<&str>,
    edits: Vec<Json>,
    checks: Option<Vec<Json>>,
) -> Json {
    let mut fields = vec![
        ("op".to_string(), Json::str("patch")),
        ("circuit".to_string(), Json::str(parent)),
    ];
    if let Some(n) = name {
        fields.push(("name".to_string(), Json::str(n)));
    }
    fields.push(("edits".to_string(), Json::Arr(edits)));
    if let Some(c) = checks {
        fields.push(("checks".to_string(), Json::Arr(c)));
    }
    fields.push(("id".to_string(), Json::Int(7)));
    Json::Obj(fields)
}

/// Per-report `reused` flags in reply order.
fn reused_flags(reply: &Json) -> Vec<bool> {
    reply
        .get("reports")
        .and_then(Json::as_array)
        .expect("reports")
        .iter()
        .map(|r| r.get("reused") == Some(&Json::Bool(true)))
        .collect()
}

#[test]
fn patched_reports_match_a_cold_session_and_reuse_clean_cones() {
    let (addr, join) = start_server();
    let mut client = Client::connect(&addr).expect("connect");
    let parent_key = register(&mut client, "two-cone", TWO_CONE);

    let deltas = [5i64, 20, 21];
    let names = ["y", "z"];

    // Warm the parent's result cache so the patch has exact reports to
    // transplant for the untouched cone.
    let warm = client
        .call(&Json::obj([
            ("op", Json::str("batch_check")),
            ("circuit", Json::str(parent_key.clone())),
            ("checks", Json::Arr(check_items(&names, &deltas))),
        ]))
        .expect("warm batch");
    assert_eq!(warm.get("ok"), Some(&Json::Bool(true)), "{}", warm.encode());

    // Re-annotate `u` (inside y's cone, outside z's).
    let edit = Json::obj([("gate", Json::str("u")), ("delay", Json::Int(35))]);
    let served = client
        .call(&patch_request(
            &parent_key,
            Some("two-cone-v2"),
            vec![edit.clone()],
            Some(check_items(&names, &deltas)),
        ))
        .expect("patch");
    assert_eq!(
        served.get("ok"),
        Some(&Json::Bool(true)),
        "{}",
        served.encode()
    );

    // The envelope describes the delta: delay-only, one dirty net, and
    // all three of z's warmed reports carried across (y's cone contains
    // the dirty net, so its entries are discarded).
    assert_eq!(served.get("structural"), Some(&Json::Bool(false)));
    assert_eq!(served.get("cached"), Some(&Json::Bool(false)));
    assert_eq!(
        served.get("dirty"),
        Some(&Json::Arr(vec![Json::str("u")])),
        "{}",
        served.encode()
    );
    assert_eq!(served.get("transplanted"), Some(&Json::Int(3)));

    // Checks come back in request order: y's cone contains the dirty net
    // so its reports re-ran; z's were served from the transplanted cache.
    assert_eq!(
        reused_flags(&served),
        [false, false, false, true, true, true],
        "{}",
        served.encode()
    );

    // Oracle: the same edit applied in-process, verified by a cold
    // session under the registry's configuration. Byte-for-byte equal
    // once timing and the reuse markers are stripped.
    let parsed = parse_bench("two-cone", TWO_CONE, DelayInterval::fixed(10)).expect("parse");
    let u = parsed
        .net_by_name("u")
        .and_then(|n| parsed.net(n).driver())
        .expect("gate u");
    let edited = parsed
        .apply_edit(&[CircuitEdit::SetDelay {
            gate: u,
            delay: DelayInterval::fixed(35),
        }])
        .expect("edit")
        .circuit;
    let session = CheckSession::new(&edited, ltt_serve::session_config());
    let checks: Vec<(NetId, i64)> = names
        .iter()
        .flat_map(|&n| {
            let net = edited.net_by_name(n).expect("output");
            deltas.iter().map(move |&d| (net, d))
        })
        .collect();
    let check_names: Vec<String> = names
        .iter()
        .flat_map(|&n| deltas.iter().map(move |_| n.to_string()))
        .collect();
    let batch = BatchRunner::new(1).run(&session, &checks);
    let child_id = patched_id(
        &parent_key,
        &[EditSpec::SetDelay {
            gate: "u".to_string(),
            min: 35,
            max: 35,
        }],
    );
    let mut fields = vec![
        ("circuit".to_string(), Json::str(child_id.clone())),
        ("name".to_string(), Json::str("two-cone-v2")),
        ("cached".to_string(), Json::Bool(false)),
        ("structural".to_string(), Json::Bool(false)),
        ("dirty".to_string(), Json::Arr(vec![Json::str("u")])),
        ("transplanted".to_string(), Json::Int(3)),
    ];
    fields.append(&mut batch_json(&batch, &check_names));
    let expected = ok_response("patch", Some(&Json::Int(7)), fields);
    assert_eq!(
        strip(&served, true).encode(),
        strip(&expected, false).encode(),
        "patched reports must be bit-identical to a cold session"
    );

    // Re-sending the identical patch hits the resident revision, and by
    // now every report is cached — the whole batch answers from memory
    // with the same bytes.
    let again = client
        .call(&patch_request(
            &parent_key,
            Some("two-cone-v2"),
            vec![edit],
            Some(check_items(&names, &deltas)),
        ))
        .expect("patch again");
    assert_eq!(again.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(reused_flags(&again), [true; 6], "{}", again.encode());
    // The resident replay recomputes nothing, so its delta envelope is
    // empty — but the check payload must still be byte-identical.
    assert_eq!(again.get("dirty"), Some(&Json::Arr(vec![])));
    assert_eq!(again.get("transplanted"), Some(&Json::Int(0)));
    let mut resend = strip(&again, true);
    if let Json::Obj(fields) = &mut resend {
        fields.retain(|(k, _)| !matches!(k.as_str(), "cached" | "dirty" | "transplanted"));
    }
    let mut cold = strip(&expected, false);
    if let Json::Obj(fields) = &mut cold {
        fields.retain(|(k, _)| !matches!(k.as_str(), "cached" | "dirty" | "transplanted"));
    }
    assert_eq!(
        resend.encode(),
        cold.encode(),
        "resident patch replay serves identical bytes"
    );

    // The revision is addressable by both content id and its new name.
    for key in [child_id.as_str(), "two-cone-v2"] {
        let reply = client
            .call(&Json::obj([
                ("op", Json::str("check")),
                ("circuit", Json::str(key)),
                ("output", Json::str("y")),
                ("delta", Json::Int(deltas[0])),
            ]))
            .expect("check on child");
        assert_eq!(
            reply.get("ok"),
            Some(&Json::Bool(true)),
            "{}",
            reply.encode()
        );
    }

    let _ = client.call(&Json::obj([("op", Json::str("shutdown"))]));
    drop(client);
    join.join().expect("server thread").expect("clean drain");
}

#[test]
fn chained_patches_land_on_the_same_revision_as_one_batch() {
    let (addr, join) = start_server();
    let mut client = Client::connect(&addr).expect("connect");
    let parent_key = register(&mut client, "two-cone", TWO_CONE);

    let e1 = Json::obj([("gate", Json::str("u")), ("delay", Json::Int(17))]);
    let e2 = Json::obj([("gate", Json::str("v")), ("delay", Json::Int(23))]);

    // parent --e1--> mid --e2--> chained.
    let mid = client
        .call(&patch_request(&parent_key, None, vec![e1.clone()], None))
        .expect("first patch");
    assert_eq!(mid.get("ok"), Some(&Json::Bool(true)), "{}", mid.encode());
    let mid_id = mid.get("circuit").and_then(Json::as_str).expect("mid id");
    let chained = client
        .call(&patch_request(mid_id, None, vec![e2.clone()], None))
        .expect("second patch");
    let chained_id = chained
        .get("circuit")
        .and_then(Json::as_str)
        .expect("chained id")
        .to_string();

    // parent --[e1,e2]--> batched: same content, so the incremental hash
    // must agree and the entry must already be resident.
    let batched = client
        .call(&patch_request(&parent_key, None, vec![e1, e2], None))
        .expect("batched patch");
    assert_eq!(
        batched.get("circuit").and_then(Json::as_str),
        Some(chained_id.as_str()),
        "chained and batched patches must produce the same revision id"
    );
    assert_eq!(batched.get("cached"), Some(&Json::Bool(true)));

    // A nameless patch answers by id but must not shadow the parent's
    // name binding.
    let by_name = client
        .call(&Json::obj([
            ("op", Json::str("check")),
            ("circuit", Json::str("two-cone")),
            ("output", Json::str("y")),
            ("delta", Json::Int(20)),
        ]))
        .expect("check by parent name");
    assert_eq!(
        by_name.get("ok"),
        Some(&Json::Bool(true)),
        "{}",
        by_name.encode()
    );

    let _ = client.call(&Json::obj([("op", Json::str("shutdown"))]));
    drop(client);
    join.join().expect("server thread").expect("clean drain");
}

#[test]
fn routed_patches_are_bit_identical_to_a_direct_daemon() {
    let config = RouterConfig {
        spawn: 2,
        backend_jobs: 2,
        jobs: 4,
        max_retries: 2,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(40),
        connect_timeout: Duration::from_millis(500),
        rpc_timeout: Duration::from_secs(5),
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(200),
        health_interval: Duration::from_millis(100),
        ..Default::default()
    };
    let router = Router::bind(config).expect("bind router");
    let router_addr = router.local_addr().expect("addr").to_string();
    let router_join = std::thread::spawn(move || router.run());
    let (direct_addr, direct_join) = start_server();

    let mut routed = Client::connect(&router_addr).expect("connect router");
    let mut local = Client::connect(&direct_addr).expect("connect direct");

    let key_r = register(&mut routed, "two-cone", TWO_CONE);
    let key_d = register(&mut local, "two-cone", TWO_CONE);
    assert_eq!(key_r, key_d, "content ids are address-independent");

    let deltas = [5i64, 20, 21];
    let names = ["y", "z"];

    // Identical traffic on both paths: warm batch, patch with bundled
    // checks, then a follow-up batch against the *child* id (exercising
    // the router's patched-revision cache and root-route colocation).
    let warm = Json::obj([
        ("op", Json::str("batch_check")),
        ("circuit", Json::str(key_r.clone())),
        ("checks", Json::Arr(check_items(&names, &deltas))),
        ("id", Json::Int(1)),
    ]);
    let edit = Json::obj([("gate", Json::str("u")), ("delay", Json::Int(35))]);
    let patch = patch_request(
        &key_r,
        Some("two-cone-v2"),
        vec![edit],
        Some(check_items(&names, &deltas)),
    );
    let child_id = patched_id(
        &key_r,
        &[EditSpec::SetDelay {
            gate: "u".to_string(),
            min: 35,
            max: 35,
        }],
    );
    let followups = [
        Json::obj([
            ("op", Json::str("batch_check")),
            ("circuit", Json::str(child_id.clone())),
            ("checks", Json::Arr(check_items(&names, &deltas))),
            ("id", Json::Int(2)),
        ]),
        // The named alias must resolve on the routed path too.
        Json::obj([
            ("op", Json::str("check")),
            ("circuit", Json::str("two-cone-v2")),
            ("output", Json::str("z")),
            ("delta", Json::Int(20)),
            ("id", Json::Int(3)),
        ]),
    ];
    for request in std::iter::once(&warm)
        .chain(std::iter::once(&patch))
        .chain(followups.iter())
    {
        let via_fleet = routed.call(request).expect("routed reply");
        let via_daemon = local.call(request).expect("direct reply");
        assert_eq!(
            strip(&via_fleet, false).encode(),
            strip(&via_daemon, false).encode(),
            "fleet and daemon must agree bit-for-bit on {}",
            request.encode()
        );
    }

    let _ = routed.call(&Json::obj([("op", Json::str("shutdown"))]));
    router_join.join().expect("router thread").expect("drain");
    let _ = local.call(&Json::obj([("op", Json::str("shutdown"))]));
    direct_join.join().expect("direct thread").expect("drain");
}
