//! Property test for the wire format: `decode(encode(v)) == v` for
//! arbitrary JSON value trees, and the encoding never contains a raw
//! control byte — the invariant that makes one-object-per-line a sound
//! framing for the protocol.

use ltt_serve::{decode, Json};
use proptest::prelude::*;
use proptest::strategy::Union;

/// Scalar JSON values, biased toward ordinary magnitudes but always
/// including the representability extremes (`i64::MIN`/`MAX` exercise the
/// int-vs-float boundary of the decoder; `f64::MAX` exercises the longest
/// decimal expansion the encoder can produce).
fn scalar() -> Union<Json> {
    prop_oneof![
        2 => Just(Json::Null),
        2 => any::<bool>().prop_map(Json::Bool),
        4 => (-4_000_000_000_000_000i64..=4_000_000_000_000_000).prop_map(Json::Int),
        1 => Just(Json::Int(i64::MIN)),
        1 => Just(Json::Int(i64::MAX)),
        // Canonical `Uint` territory: strictly above `i64::MAX`.
        2 => ((i64::MAX as u64 + 1)..=u64::MAX).prop_map(Json::Uint),
        1 => Just(Json::Uint(u64::MAX)),
        4 => ((-1_000_000_000i64..=1_000_000_000), (0u32..=9))
            .prop_map(|(m, e)| Json::Float(m as f64 / 10f64.powi(e as i32))),
        1 => Just(Json::Float(f64::MAX)),
        1 => Just(Json::Float(f64::MIN_POSITIVE)),
        4 => ".{0,12}".prop_map(Json::Str),
    ]
}

/// One container layer over `inner`: pass through, wrap in an array, or
/// wrap in an object (keys drawn from the same fuzz alphabet as string
/// payloads — quotes, backslashes, controls, and non-ASCII included).
fn containers(inner: Union<Json>) -> Union<Json> {
    prop_oneof![
        3 => inner.clone(),
        1 => prop::collection::vec(inner.clone(), 0..5).prop_map(Json::Arr),
        1 => prop::collection::vec((".{0,8}", inner), 0..5).prop_map(Json::Obj),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_roundtrips(v in containers(containers(scalar()))) {
        let encoded = v.encode();
        prop_assert!(
            !encoded.bytes().any(|b| b < 0x20),
            "raw control byte in encoding {encoded:?}"
        );
        let back = decode(&encoded);
        prop_assert!(back.is_ok(), "decode failed on {encoded:?}: {:?}", back);
        prop_assert_eq!(back.unwrap(), v, "mismatch through {encoded:?}");
    }

    #[test]
    fn full_range_u64_roundtrips_exactly(v in any::<u64>()) {
        // Content hashes and cumulative elapsed_us live in u64; above
        // 2^53 an f64 detour silently zeroes low bits, and above
        // `i64::MAX` the old parser degraded to float. The canonical
        // encoding must round-trip every u64 bit-for-bit.
        let json = Json::uint(v);
        let back = decode(&json.encode()).expect("valid JSON");
        prop_assert_eq!(back.as_u64(), Some(v));
        prop_assert_eq!(&back, &json);
        // Canonical form: Int iff it fits in i64.
        match back {
            Json::Int(i) => prop_assert!(u64::try_from(i) == Ok(v)),
            Json::Uint(u) => {
                prop_assert_eq!(u, v);
                prop_assert!(v > i64::MAX as u64, "non-canonical Uint for {}", v);
            }
            other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
        }
    }

    #[test]
    fn full_range_i64_roundtrips_exactly(v in any::<i64>()) {
        let json = Json::Int(v);
        let back = decode(&json.encode()).expect("valid JSON");
        prop_assert_eq!(back.as_i64(), Some(v));
        prop_assert_eq!(back, json);
    }

    #[test]
    fn encoded_strings_frame_safely(s in ".{0,64}") {
        // A string made purely of fuzz characters (controls, quotes,
        // newlines, multi-byte) must stay on one line and survive intact.
        let v = Json::Str(s);
        let encoded = v.encode();
        prop_assert!(!encoded.contains('\n'), "newline leaked: {encoded:?}");
        prop_assert_eq!(decode(&encoded).unwrap(), v);
    }
}

#[test]
fn duplicate_keys_roundtrip_in_order() {
    // Objects are insertion-ordered pair lists, not maps: duplicates are
    // preserved verbatim, which keeps encode/decode a true inverse pair.
    let v = Json::Obj(vec![
        ("k".to_string(), Json::Int(1)),
        ("k".to_string(), Json::Int(2)),
    ]);
    assert_eq!(decode(&v.encode()).unwrap(), v);
}
