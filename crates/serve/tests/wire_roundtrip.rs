//! Property test for the wire format: `decode(encode(v)) == v` for
//! arbitrary JSON value trees, and the encoding never contains a raw
//! control byte — the invariant that makes one-object-per-line a sound
//! framing for the protocol.

use ltt_serve::{decode, Json};
use proptest::prelude::*;
use proptest::strategy::Union;

/// Scalar JSON values, biased toward ordinary magnitudes but always
/// including the representability extremes (`i64::MIN`/`MAX` exercise the
/// int-vs-float boundary of the decoder; `f64::MAX` exercises the longest
/// decimal expansion the encoder can produce).
fn scalar() -> Union<Json> {
    prop_oneof![
        2 => Just(Json::Null),
        2 => any::<bool>().prop_map(Json::Bool),
        4 => (-4_000_000_000_000_000i64..=4_000_000_000_000_000).prop_map(Json::Int),
        1 => Just(Json::Int(i64::MIN)),
        1 => Just(Json::Int(i64::MAX)),
        4 => ((-1_000_000_000i64..=1_000_000_000), (0u32..=9))
            .prop_map(|(m, e)| Json::Float(m as f64 / 10f64.powi(e as i32))),
        1 => Just(Json::Float(f64::MAX)),
        1 => Just(Json::Float(f64::MIN_POSITIVE)),
        4 => ".{0,12}".prop_map(Json::Str),
    ]
}

/// One container layer over `inner`: pass through, wrap in an array, or
/// wrap in an object (keys drawn from the same fuzz alphabet as string
/// payloads — quotes, backslashes, controls, and non-ASCII included).
fn containers(inner: Union<Json>) -> Union<Json> {
    prop_oneof![
        3 => inner.clone(),
        1 => prop::collection::vec(inner.clone(), 0..5).prop_map(Json::Arr),
        1 => prop::collection::vec((".{0,8}", inner), 0..5).prop_map(Json::Obj),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_roundtrips(v in containers(containers(scalar()))) {
        let encoded = v.encode();
        prop_assert!(
            !encoded.bytes().any(|b| b < 0x20),
            "raw control byte in encoding {encoded:?}"
        );
        let back = decode(&encoded);
        prop_assert!(back.is_ok(), "decode failed on {encoded:?}: {:?}", back);
        prop_assert_eq!(back.unwrap(), v, "mismatch through {encoded:?}");
    }

    #[test]
    fn encoded_strings_frame_safely(s in ".{0,64}") {
        // A string made purely of fuzz characters (controls, quotes,
        // newlines, multi-byte) must stay on one line and survive intact.
        let v = Json::Str(s);
        let encoded = v.encode();
        prop_assert!(!encoded.contains('\n'), "newline leaked: {encoded:?}");
        prop_assert_eq!(decode(&encoded).unwrap(), v);
    }
}

#[test]
fn duplicate_keys_roundtrip_in_order() {
    // Objects are insertion-ordered pair lists, not maps: duplicates are
    // preserved verbatim, which keeps encode/decode a true inverse pair.
    let v = Json::Obj(vec![
        ("k".to_string(), Json::Int(1)),
        ("k".to_string(), Json::Int(2)),
    ]);
    assert_eq!(decode(&v.encode()).unwrap(), v);
}
