//! Router correctness over an in-process fleet, observed through the
//! same wire protocol a production client would use:
//!
//! * replies routed through the fleet are **bit-identical** (modulo
//!   wall-clock fields) to a single daemon answering directly — the
//!   router forwards backend bytes verbatim;
//! * killing a backend mid-workload triggers failover: every later
//!   request is still answered correctly, the registration cache repairs
//!   `unknown_circuit` on the surviving replicas, and the counters show
//!   the retries;
//! * with *every* backend dead, requests get a structured `unavailable`
//!   error — bounded by the retry budget, never a hang — and the
//!   breakers open;
//! * a `shutdown` request drains the router and its spawned fleet.

use ltt_netlist::bench_format::write_bench;
use ltt_netlist::generators::{figure1, random_circuit, RandomCircuitConfig};
use ltt_netlist::suite::c17;
use ltt_serve::{Client, Json, Router, RouterConfig, RouterHandle, ServeConfig, Server};
use std::time::{Duration, Instant};

/// A fleet tuned for test speed: small timeouts, quick breaker trips,
/// fast health probes.
fn test_config(spawn: usize) -> RouterConfig {
    RouterConfig {
        spawn,
        backend_jobs: 2,
        jobs: 4,
        max_retries: 2,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(40),
        connect_timeout: Duration::from_millis(500),
        rpc_timeout: Duration::from_secs(5),
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(200),
        health_interval: Duration::from_millis(100),
        ..Default::default()
    }
}

fn start_router(
    config: RouterConfig,
) -> (
    String,
    RouterHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let router = Router::bind(config).expect("bind router");
    let addr = router.local_addr().expect("addr").to_string();
    let handle = router.handle();
    let join = std::thread::spawn(move || router.run());
    (addr, handle, join)
}

fn register(client: &mut Client, name: &str, source: &str) -> String {
    let reply = client
        .call(&Json::obj([
            ("op", Json::str("register")),
            ("name", Json::str(name)),
            ("source", Json::str(source)),
        ]))
        .expect("register");
    assert_eq!(
        reply.get("ok"),
        Some(&Json::Bool(true)),
        "{}",
        reply.encode()
    );
    reply
        .get("circuit")
        .and_then(Json::as_str)
        .expect("content id")
        .to_string()
}

/// Drops the wall-clock fields, the only parts of a reply that may differ
/// between two runs of the same deterministic check.
fn strip_timing(v: &Json) -> Json {
    match v {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| !matches!(k.as_str(), "elapsed_us" | "wall_us" | "stage_us"))
                .map(|(k, val)| (k.clone(), strip_timing(val)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_timing).collect()),
        other => other.clone(),
    }
}

/// The request mix used by the identity test: checks straddling the
/// interesting δ region, a batch, and an exact-delay search.
fn request_mix(key: &str, top: i64) -> Vec<Json> {
    let mut requests = Vec::new();
    for (i, delta) in [top / 2, top - 10, top, top + 1].into_iter().enumerate() {
        requests.push(Json::obj([
            ("op", Json::str("batch_check")),
            ("circuit", Json::str(key)),
            ("delta", Json::Int(delta)),
            ("id", Json::Int(i as i64)),
        ]));
    }
    requests.push(Json::obj([
        ("op", Json::str("batch_check")),
        ("circuit", Json::str(key)),
        ("delta", Json::Int(top)),
        ("id", Json::str("batch")),
    ]));
    requests.push(Json::obj([
        ("op", Json::str("delay")),
        ("circuit", Json::str(key)),
        ("id", Json::str("delay")),
    ]));
    requests
}

#[test]
fn routed_replies_are_bit_identical_to_a_direct_daemon() {
    let (router_addr, _handle, router_join) = start_router(test_config(3));
    let direct = Server::bind(&ServeConfig::default()).expect("bind direct");
    let direct_addr = direct.local_addr().expect("addr").to_string();
    let direct_join = std::thread::spawn(move || direct.run());

    let mut routed = Client::connect(&router_addr).expect("connect router");
    let mut local = Client::connect(&direct_addr).expect("connect direct");

    for (name, circuit) in [("c17", c17(10)), ("figure1", figure1(10))] {
        let source = write_bench(&circuit);
        let key_r = register(&mut routed, name, &source);
        let key_d = register(&mut local, name, &source);
        assert_eq!(key_r, key_d, "content ids are address-independent");
        for request in request_mix(&key_r, circuit.topological_delay()) {
            let via_fleet = routed.call(&request).expect("routed reply");
            let via_daemon = local.call(&request).expect("direct reply");
            assert_eq!(
                strip_timing(&via_fleet).encode(),
                strip_timing(&via_daemon).encode(),
                "fleet and daemon must agree bit-for-bit on {}",
                request.encode()
            );
        }
    }

    let _ = routed.call(&Json::obj([("op", Json::str("shutdown"))]));
    router_join.join().expect("router thread").expect("drain");
    let _ = local.call(&Json::obj([("op", Json::str("shutdown"))]));
    direct_join.join().expect("direct thread").expect("drain");
}

#[test]
fn killing_a_backend_fails_over_and_reregisters() {
    let (addr, handle, join) = start_router(test_config(3));
    let mut client = Client::connect(&addr).expect("connect");

    // Several distinct circuits so ownership spreads across the ring and
    // the killed backend is guaranteed to own some of the traffic.
    let mut keys = Vec::new();
    let mut tops = Vec::new();
    for i in 0..6 {
        let circuit = random_circuit(&RandomCircuitConfig {
            num_gates: 40,
            num_outputs: 2,
            seed: 0xFA11 + i,
            ..Default::default()
        });
        keys.push(register(
            &mut client,
            &format!("net-{i}"),
            &write_bench(&circuit),
        ));
        tops.push(circuit.topological_delay());
    }

    // Baseline answers, fleet healthy. (The id is pinned: it echoes back
    // in the reply, and the comparison below is byte-for-byte.)
    let ask = |client: &mut Client, key: &str, top: i64| -> Json {
        client
            .call(&Json::obj([
                ("op", Json::str("batch_check")),
                ("circuit", Json::str(key)),
                ("delta", Json::Int(top)),
                ("id", Json::Int(0)),
            ]))
            .expect("reply")
    };
    let baseline: Vec<String> = keys
        .iter()
        .zip(&tops)
        .map(|(k, &t)| strip_timing(&ask(&mut client, k, t)).encode())
        .collect();

    handle.kill_backend(0);

    // Every circuit still answers — identically. Some of these walk the
    // failover path (dead owner), some the re-registration path (the
    // survivor that never saw the fan-out).
    for _round in 0..2 {
        for (i, (k, &t)) in keys.iter().zip(&tops).enumerate() {
            let reply = ask(&mut client, k, t);
            assert_eq!(
                strip_timing(&reply).encode(),
                baseline[i],
                "answers must not change when a backend dies"
            );
        }
    }

    // The counters must show the machinery actually engaged.
    let status = client
        .call(&Json::obj([("op", Json::str("status"))]))
        .expect("status");
    let requests = status.get("requests").expect("requests group");
    let failovers = requests
        .get("failovers")
        .and_then(Json::as_i64)
        .unwrap_or(0);
    assert!(
        failovers >= 1,
        "a dead owner must register as failovers: {}",
        status.encode()
    );

    let _ = client.call(&Json::obj([("op", Json::str("shutdown"))]));
    join.join().expect("router thread").expect("drain");
}

#[test]
fn all_backends_dead_yields_bounded_unavailable_and_open_breakers() {
    let mut config = test_config(2);
    config.max_retries = 1;
    config.rpc_timeout = Duration::from_millis(500);
    let (addr, handle, join) = start_router(config);
    let mut client = Client::connect(&addr).expect("connect");
    let key = register(&mut client, "c17", &write_bench(&c17(10)));

    handle.kill_backend(0);
    handle.kill_backend(1);

    let started = Instant::now();
    let mut unavailable = 0;
    for i in 0..4 {
        let reply = client
            .call(&Json::obj([
                ("op", Json::str("batch_check")),
                ("circuit", Json::str(key.clone())),
                ("delta", Json::Int(20)),
                ("id", Json::Int(i)),
            ]))
            .expect("a structured reply, not a hang");
        assert_eq!(reply.get("ok"), Some(&Json::Bool(false)));
        if reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            == Some("unavailable")
        {
            unavailable += 1;
        }
    }
    assert_eq!(unavailable, 4, "every request gets the structured error");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the retry budget bounds the wait"
    );

    // The breakers opened along the way (visible per backend).
    let status = client
        .call(&Json::obj([("op", Json::str("status"))]))
        .expect("status");
    let opened: i64 = status
        .get("backends")
        .and_then(Json::as_array)
        .expect("backends")
        .iter()
        .map(|b| b.get("breaker_opened").and_then(Json::as_i64).unwrap_or(0))
        .sum();
    assert!(opened >= 1, "breakers must open: {}", status.encode());

    let _ = client.call(&Json::obj([("op", Json::str("shutdown"))]));
    join.join().expect("router thread").expect("drain");
}

#[test]
fn shutdown_op_drains_router_and_fleet() {
    let (addr, _handle, join) = start_router(test_config(2));
    let mut client = Client::connect(&addr).expect("connect");
    let key = register(&mut client, "fig1", &write_bench(&figure1(10)));

    let reply = client
        .call(&Json::obj([("op", Json::str("shutdown"))]))
        .expect("shutdown");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));

    // Work arriving on the draining router is refused in structure.
    let late = client.call(&Json::obj([
        ("op", Json::str("batch_check")),
        ("circuit", Json::str(key)),
        ("delta", Json::Int(20)),
    ]));
    if let Ok(late) = late {
        assert_eq!(
            late.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("shutting_down"),
            "{}",
            late.encode()
        );
    } // a torn-down connection is equally acceptable

    join.join().expect("router thread").expect("clean drain");
}
