//! Admission control and disconnect cancellation, observed from outside:
//!
//! * a burst pipelined past `queue_cap` gets every slot answered — some
//!   with results, the excess with structured `overloaded` errors, none
//!   dropped or buffered unboundedly;
//! * a client that disconnects mid-request has its in-flight search
//!   cancelled (the worker frees up long before the uncancelled runtime),
//!   asserted through a second connection's `status` counters.

use ltt_netlist::bench_format::write_bench;
use ltt_netlist::generators::carry_skip_adder;
use ltt_netlist::suite::c17;
use ltt_serve::{Client, Json, ServeConfig, Server};
use std::time::{Duration, Instant};

fn start_server(
    jobs: usize,
    queue_cap: usize,
) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let config = ServeConfig {
        jobs,
        queue_cap,
        ..Default::default()
    };
    let server = Server::bind(&config).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let join = std::thread::spawn(move || server.run());
    (addr, join)
}

/// Registers a circuit and returns `(content id, last output name)` — for
/// the carry-skip adders the last output is `cout`, the one whose
/// exact-delay search is slow enough to pin a worker.
fn register(client: &mut Client, name: &str, source: &str) -> (String, String) {
    let reply = client
        .call(&Json::obj([
            ("op", Json::str("register")),
            ("name", Json::str(name)),
            ("source", Json::str(source)),
        ]))
        .expect("register");
    assert_eq!(
        reply.get("ok"),
        Some(&Json::Bool(true)),
        "{}",
        reply.encode()
    );
    let key = reply
        .get("circuit")
        .and_then(Json::as_str)
        .expect("content id")
        .to_string();
    let output = reply
        .get("outputs")
        .and_then(Json::as_array)
        .and_then(|o| o.last())
        .and_then(Json::as_str)
        .expect("an output")
        .to_string();
    (key, output)
}

fn status_counter(status: &Json, group: &str, field: &str) -> i64 {
    status
        .get(group)
        .and_then(|g| g.get(field))
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("missing {group}.{field} in {}", status.encode()))
}

#[test]
fn burst_past_queue_cap_is_shed_with_overloaded() {
    // One worker, one queue slot: the second queued request already
    // overflows, so a pipelined burst must be shed almost entirely.
    let (addr, join) = start_server(1, 1);
    let mut client = Client::connect(&addr).expect("connect");

    // Occupy the single worker: an exact-delay search on a carry-skip
    // adder runs for ~100 ms even in release builds — five orders of
    // magnitude longer than admitting one request.
    let adder = carry_skip_adder(16, 4, 10);
    let (adder_key, adder_out) = register(&mut client, "adder", &write_bench(&adder));
    let (c17_key, c17_out) = register(&mut client, "c17", &write_bench(&c17(10)));

    client
        .send(&Json::obj([
            ("op", Json::str("delay")),
            ("circuit", Json::str(adder_key)),
            ("output", Json::str(adder_out)),
            ("id", Json::str("slow")),
        ]))
        .expect("send slow op");
    const BURST: usize = 30;
    for i in 0..BURST {
        client
            .send(&Json::obj([
                ("op", Json::str("check")),
                ("circuit", Json::str(c17_key.clone())),
                ("output", Json::str(c17_out.clone())),
                ("delta", Json::Int(30)),
                ("id", Json::Int(i as i64)),
            ]))
            .expect("send burst check");
    }

    // Every pipelined request must be answered exactly once, overloaded
    // or not; replies arrive in any order (shed ones come back first).
    let mut answered = vec![0u32; BURST];
    let mut slow_answered = 0u32;
    let mut overloaded = 0usize;
    let mut completed = 0usize;
    for _ in 0..BURST + 1 {
        let reply = client.recv().expect("recv").expect("reply before EOF");
        match reply.get("id") {
            Some(Json::Str(s)) if s == "slow" => {
                slow_answered += 1;
                assert_eq!(
                    reply.get("ok"),
                    Some(&Json::Bool(true)),
                    "{}",
                    reply.encode()
                );
            }
            Some(Json::Int(i)) => {
                answered[usize::try_from(*i).expect("burst id")] += 1;
                if reply.get("ok") == Some(&Json::Bool(true)) {
                    completed += 1;
                } else {
                    let code = reply
                        .get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(Json::as_str);
                    assert_eq!(code, Some("overloaded"), "{}", reply.encode());
                    overloaded += 1;
                }
            }
            other => panic!("unexpected id {other:?} in {}", reply.encode()),
        }
    }
    assert_eq!(slow_answered, 1);
    assert!(
        answered.iter().all(|&n| n == 1),
        "every slot answered once: {answered:?}"
    );
    assert!(overloaded >= 1, "a burst past cap must shed load");
    assert_eq!(completed + overloaded, BURST);

    // The shed count is visible in the rolling counters too.
    let status = client
        .call(&Json::obj([("op", Json::str("status"))]))
        .expect("status");
    assert_eq!(
        status_counter(&status, "requests", "overloaded"),
        overloaded as i64
    );

    let _ = client.call(&Json::obj([("op", Json::str("shutdown"))]));
    drop(client);
    join.join().expect("server thread").expect("clean drain");
}

#[test]
fn disconnect_mid_request_cancels_in_flight_work() {
    let (addr, join) = start_server(1, 4);

    // Uncancelled, this exact-delay search runs ~1 s in release and ~8 s
    // in debug builds — far longer than the disconnect-to-idle window the
    // test allows, so reaching idle at all proves the cancel fired.
    let adder = carry_skip_adder(24, 4, 10);
    let mut victim = Client::connect(&addr).expect("connect victim");
    let (key, output) = register(&mut victim, "slow-adder", &write_bench(&adder));
    victim
        .send(&Json::obj([
            ("op", Json::str("delay")),
            ("circuit", Json::str(key)),
            ("output", Json::str(output)),
        ]))
        .expect("send slow op");
    // Let the reader dispatch and a worker pick the job up, then vanish.
    std::thread::sleep(Duration::from_millis(100));
    drop(victim);

    let mut observer = Client::connect(&addr).expect("connect observer");
    let started = Instant::now();
    let budget = Duration::from_secs(4);
    let status = loop {
        let status = observer
            .call(&Json::obj([("op", Json::str("status"))]))
            .expect("status");
        let cancels = status_counter(&status, "connections", "disconnect_cancels");
        let in_flight = status_counter(&status, "requests", "in_flight");
        let queued = status_counter(&status, "queue", "depth");
        if cancels >= 1 && in_flight == 0 && queued == 0 {
            break status;
        }
        assert!(
            started.elapsed() < budget,
            "worker still busy {:?} after disconnect: {}",
            started.elapsed(),
            status.encode()
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    // The abandoned search was cut short (reported not-exact), not run to
    // completion on a dead connection's behalf.
    assert!(
        status_counter(&status, "requests", "budget_tripped") >= 1,
        "cancelled search should trip its budget: {}",
        status.encode()
    );
    assert_eq!(status_counter(&status, "requests", "completed_ok"), 1);

    let _ = observer.call(&Json::obj([("op", Json::str("shutdown"))]));
    drop(observer);
    join.join().expect("server thread").expect("clean drain");
}
