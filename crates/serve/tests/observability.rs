//! Observability regressions, observed from outside the daemon:
//!
//! * `status` replies are **coherent snapshots**: the accounting identity
//!   `submitted == completed_ok + panicked + overloaded + queued +
//!   in_flight` holds in every reply, even while checks are hammering the
//!   queue from other connections (the pre-fix server assembled the reply
//!   from independently-loaded counters and could violate it);
//! * a handler that panics counts under `panicked` only — the pre-fix
//!   worker also bumped `completed`, double-counting the job;
//! * `metrics` exposes the same snapshot as Prometheus text, with the
//!   request-latency histogram;
//! * `hit_rate` is `null` before any registry traffic, not `0.0`.

use ltt_netlist::bench_format::write_bench;
use ltt_netlist::generators::figure1;
use ltt_netlist::suite::c17;
use ltt_serve::{Client, Json, ServeConfig, Server};

fn start_server(
    jobs: usize,
    queue_cap: usize,
) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let config = ServeConfig {
        jobs,
        queue_cap,
        ..Default::default()
    };
    let server = Server::bind(&config).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let join = std::thread::spawn(move || server.run());
    (addr, join)
}

fn register(client: &mut Client, name: &str, source: &str) -> (String, Vec<String>) {
    let reply = client
        .call(&Json::obj([
            ("op", Json::str("register")),
            ("name", Json::str(name)),
            ("source", Json::str(source)),
        ]))
        .expect("register");
    assert_eq!(
        reply.get("ok"),
        Some(&Json::Bool(true)),
        "{}",
        reply.encode()
    );
    let key = reply
        .get("circuit")
        .and_then(Json::as_str)
        .expect("content id")
        .to_string();
    let outputs = reply
        .get("outputs")
        .and_then(Json::as_array)
        .expect("outputs")
        .iter()
        .map(|o| o.as_str().expect("output name").to_string())
        .collect();
    (key, outputs)
}

fn counter(status: &Json, group: &str, field: &str) -> i64 {
    status
        .get(group)
        .and_then(|g| g.get(field))
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("missing {group}.{field} in {}", status.encode()))
}

/// The accounting identity every `status` reply must satisfy exactly.
fn assert_coherent(status: &Json) {
    let submitted = counter(status, "requests", "submitted");
    let accounted = counter(status, "requests", "completed_ok")
        + counter(status, "requests", "panicked")
        + counter(status, "requests", "overloaded")
        + counter(status, "requests", "in_flight")
        + counter(status, "queue", "depth");
    assert_eq!(
        submitted,
        accounted,
        "incoherent snapshot: {}",
        status.encode()
    );
}

#[test]
fn status_snapshots_stay_coherent_under_concurrent_load() {
    let (addr, join) = start_server(2, 4);
    let mut setup = Client::connect(&addr).expect("connect");
    let (key, outputs) = register(&mut setup, "c17", &write_bench(&c17(10)));
    drop(setup);

    // Hammer the admission queue from several pipelining connections while
    // an observer polls `status`: every reply must balance the books, shed
    // requests included (the tiny queue guarantees some are shed).
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for seed in 0..3usize {
            let (addr, key, outputs) = (&addr, &key, &outputs);
            let stop = &stop;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect hammer");
                let mut pending = 0usize;
                let mut i = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    client
                        .send(&Json::obj([
                            ("op", Json::str("check")),
                            ("circuit", Json::str(key.clone())),
                            (
                                "output",
                                Json::str(outputs[(seed + i) % outputs.len()].clone()),
                            ),
                            ("delta", Json::Int(30)),
                            ("id", Json::Int(i as i64)),
                        ]))
                        .expect("send check");
                    pending += 1;
                    i += 1;
                    // Keep a few in flight so the queue stays busy without
                    // the reply buffer growing unboundedly.
                    while pending > 8 {
                        client.recv().expect("recv").expect("reply");
                        pending -= 1;
                    }
                }
                while pending > 0 {
                    client.recv().expect("recv").expect("reply");
                    pending -= 1;
                }
            });
        }
        let mut observer = Client::connect(&addr).expect("connect observer");
        for _ in 0..200 {
            let status = observer
                .call(&Json::obj([("op", Json::str("status"))]))
                .expect("status");
            assert_coherent(&status);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    // Quiesced: everything submitted is now accounted as finished or shed.
    let mut observer = Client::connect(&addr).expect("connect");
    let status = observer
        .call(&Json::obj([("op", Json::str("status"))]))
        .expect("status");
    assert_coherent(&status);
    assert_eq!(counter(&status, "requests", "in_flight"), 0);
    assert_eq!(counter(&status, "queue", "depth"), 0);
    assert!(counter(&status, "requests", "completed_ok") > 0);

    let _ = observer.call(&Json::obj([("op", Json::str("shutdown"))]));
    drop(observer);
    join.join().expect("server thread").expect("clean drain");
}

#[test]
fn panicked_handler_counts_once_not_as_completed() {
    let (addr, join) = start_server(1, 4);
    let mut client = Client::connect(&addr).expect("connect");
    // figure1's only output is `s`; arming the failpoint on that context
    // keeps the fault away from every other test in this binary.
    let (key, outputs) = register(&mut client, "fig1", &write_bench(&figure1(10)));
    assert_eq!(outputs, vec!["s".to_string()]);

    ltt_core::failpoint::set(
        "check::narrowing",
        Some("s"),
        ltt_core::failpoint::FailAction::Panic("injected".to_string()),
    );
    // The single-output delay path runs un-isolated on the worker thread,
    // so the injected panic exercises the worker's own catch_unwind.
    let reply = client
        .call(&Json::obj([
            ("op", Json::str("delay")),
            ("circuit", Json::str(key.clone())),
            ("output", Json::str("s")),
            ("id", Json::str("boom")),
        ]))
        .expect("delay reply");
    ltt_core::failpoint::clear_all();
    assert_eq!(
        reply.get("ok"),
        Some(&Json::Bool(false)),
        "{}",
        reply.encode()
    );
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("internal"),
        "{}",
        reply.encode()
    );

    let status = client
        .call(&Json::obj([("op", Json::str("status"))]))
        .expect("status");
    assert_coherent(&status);
    assert_eq!(counter(&status, "requests", "panicked"), 1);
    // The pre-fix worker double-counted the job as completed too.
    assert_eq!(counter(&status, "requests", "completed_ok"), 0);

    // Disarmed, the same request succeeds and lands in completed_ok.
    let reply = client
        .call(&Json::obj([
            ("op", Json::str("delay")),
            ("circuit", Json::str(key)),
            ("output", Json::str("s")),
        ]))
        .expect("delay reply");
    assert_eq!(
        reply.get("ok"),
        Some(&Json::Bool(true)),
        "{}",
        reply.encode()
    );
    let status = client
        .call(&Json::obj([("op", Json::str("status"))]))
        .expect("status");
    assert_coherent(&status);
    assert_eq!(counter(&status, "requests", "panicked"), 1);
    assert_eq!(counter(&status, "requests", "completed_ok"), 1);

    let _ = client.call(&Json::obj([("op", Json::str("shutdown"))]));
    drop(client);
    join.join().expect("server thread").expect("clean drain");
}

/// Extracts the value of a plain `NAME VALUE` sample from Prometheus text.
fn sample(body: &str, name: &str) -> f64 {
    body.lines()
        .find_map(|line| {
            let rest = line.strip_prefix(name)?;
            let rest = rest.strip_prefix(' ')?;
            rest.parse().ok()
        })
        .unwrap_or_else(|| panic!("missing sample `{name}` in:\n{body}"))
}

#[test]
fn metrics_exposes_prometheus_text_matching_status() {
    let (addr, join) = start_server(1, 4);
    let mut client = Client::connect(&addr).expect("connect");
    let (key, outputs) = register(&mut client, "c17", &write_bench(&c17(10)));
    for delta in [10, 30] {
        let reply = client
            .call(&Json::obj([
                ("op", Json::str("check")),
                ("circuit", Json::str(key.clone())),
                ("output", Json::str(outputs[0].clone())),
                ("delta", Json::Int(delta)),
            ]))
            .expect("check");
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
    }

    let reply = client
        .call(&Json::obj([
            ("op", Json::str("metrics")),
            ("id", Json::Int(1)),
        ]))
        .expect("metrics");
    assert_eq!(
        reply.get("ok"),
        Some(&Json::Bool(true)),
        "{}",
        reply.encode()
    );
    assert_eq!(
        reply.get("content_type").and_then(Json::as_str),
        Some("text/plain; version=0.0.4")
    );
    let body = reply
        .get("body")
        .and_then(Json::as_str)
        .expect("text body")
        .to_string();
    assert!(body.contains("# TYPE ltt_requests_submitted_total counter"));
    assert!(body.contains("# TYPE ltt_request_duration_seconds histogram"));
    assert!(body.contains("ltt_request_duration_seconds_bucket{le=\"+Inf\"} 2"));

    // The exposition and `status` describe the same frozen books.
    assert_eq!(sample(&body, "ltt_requests_submitted_total"), 2.0);
    assert_eq!(sample(&body, "ltt_requests_completed_total"), 2.0);
    assert_eq!(sample(&body, "ltt_requests_panicked_total"), 0.0);
    assert_eq!(sample(&body, "ltt_requests_shed_total"), 0.0);
    assert_eq!(sample(&body, "ltt_queue_depth"), 0.0);
    assert_eq!(sample(&body, "ltt_request_duration_seconds_count"), 2.0);
    let status = client
        .call(&Json::obj([("op", Json::str("status"))]))
        .expect("status");
    assert_coherent(&status);
    assert_eq!(counter(&status, "requests", "submitted"), 2);

    let _ = client.call(&Json::obj([("op", Json::str("shutdown"))]));
    drop(client);
    join.join().expect("server thread").expect("clean drain");
}

#[test]
fn hit_rate_is_null_before_any_registry_traffic() {
    let (addr, join) = start_server(1, 4);
    let mut client = Client::connect(&addr).expect("connect");
    let status = client
        .call(&Json::obj([("op", Json::str("status"))]))
        .expect("status");
    // No lookups yet: the rate is absent (`null`), not a misleading 0.0.
    assert_eq!(
        status.get("registry").and_then(|r| r.get("hit_rate")),
        Some(&Json::Null),
        "{}",
        status.encode()
    );
    // And the metrics exposition omits the ratio gauge entirely.
    let reply = client
        .call(&Json::obj([("op", Json::str("metrics"))]))
        .expect("metrics");
    let body = reply.get("body").and_then(Json::as_str).expect("body");
    assert!(!body.contains("ltt_registry_hit_ratio"));

    let _ = client.call(&Json::obj([("op", Json::str("shutdown"))]));
    drop(client);
    join.join().expect("server thread").expect("clean drain");
}
