//! One `ltt-serve` backend as the router sees it: pooled connections,
//! a circuit breaker, a health flag, and transport counters.
//!
//! The unit of work is [`Backend::rpc`] — one raw request line out, one
//! raw reply line back. Replies travel **verbatim**: the router never
//! re-encodes what a backend said, which is what makes the fleet's
//! bit-identity contract (a served reply equals a direct
//! [`BatchRunner`](ltt_core::BatchRunner) run) trivially inherited from
//! the single-daemon contract.
//!
//! A connection is returned to the pool only after a fully successful
//! round trip. Any error — connect, write, read, timeout, oversize reply
//! — drops the connection on the floor: a stream whose framing state is
//! unknown can never be reused, or a stale buffered reply would be
//! mis-correlated with the next request.
//!
//! The [`Breaker`] tracks *transport* outcomes only. A structured
//! `overloaded` reply is a transport **success** (the backend is alive
//! and explicitly shedding); tripping the breaker on it would take a
//! healthy-but-busy backend out of rotation exactly when its load is
//! about to drop.

use crate::lineio::{CappedLineReader, LineRead};
use crate::metrics::Histogram;
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Connections kept warm per backend. More than this many concurrent
/// round trips simply dial extra short-lived connections.
const POOL_CAP: usize = 8;

/// Why one [`Backend::rpc`] round trip failed.
#[derive(Debug)]
pub enum RpcError {
    /// Could not establish a connection (refused, unroutable, or the
    /// connect timeout expired).
    Connect(std::io::Error),
    /// The connection died mid-round-trip (write error, read error, or
    /// EOF before a reply line).
    Io(std::io::Error),
    /// The backend stayed silent past the rpc timeout.
    Timeout,
    /// The backend's reply line exceeded the line cap (a protocol bug or
    /// a corrupted stream; never reusable).
    TooLarge,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Connect(e) => write!(f, "connect failed: {e}"),
            RpcError::Io(e) => write!(f, "connection failed: {e}"),
            RpcError::Timeout => write!(f, "rpc timed out"),
            RpcError::TooLarge => write!(f, "reply line exceeded the line cap"),
        }
    }
}

/// Transport tuning shared by every backend of one router.
#[derive(Clone, Copy, Debug)]
pub struct BackendOpts {
    /// Bound on connection establishment.
    pub connect_timeout: Duration,
    /// Bound on one request/reply round trip's silent time.
    pub rpc_timeout: Duration,
    /// Reply-line length cap.
    pub max_line_bytes: usize,
    /// Consecutive transport failures that open the breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker refuses traffic before half-opening.
    pub breaker_cooldown: Duration,
}

/// One pooled connection: the reader half is capped (a corrupt backend
/// must not balloon the router), the writer half is the same socket.
struct Conn {
    reader: CappedLineReader<BufReader<TcpStream>>,
    writer: TcpStream,
}

/// The circuit-breaker state machine: `Closed` (normal) → `Open` after
/// K consecutive transport failures (all traffic refused for a cooldown)
/// → `HalfOpen` (exactly one probe request through) → `Closed` on probe
/// success, back to `Open` on probe failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

struct BreakerInner {
    state: BreakerState,
    /// When an `Open` breaker may half-open.
    open_until: Instant,
    consecutive_failures: u32,
}

/// A per-backend circuit breaker (see [`BreakerState`]).
pub struct Breaker {
    inner: Mutex<BreakerInner>,
    threshold: u32,
    cooldown: Duration,
    opened_total: AtomicU64,
}

impl Breaker {
    fn new(threshold: u32, cooldown: Duration) -> Breaker {
        Breaker {
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                open_until: Instant::now(),
                consecutive_failures: 0,
            }),
            threshold: threshold.max(1),
            cooldown,
            opened_total: AtomicU64::new(0),
        }
    }

    /// Whether a request may go to this backend right now. An expired
    /// `Open` flips to `HalfOpen` and admits exactly the caller as the
    /// probe; further callers are refused until the probe's outcome is
    /// recorded.
    pub fn admit(&self) -> bool {
        let mut inner = self.inner.lock().expect("breaker lock poisoned");
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false,
            BreakerState::Open => {
                if Instant::now() >= inner.open_until {
                    inner.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn record_success(&self) {
        let mut inner = self.inner.lock().expect("breaker lock poisoned");
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
    }

    fn record_failure(&self) {
        let mut inner = self.inner.lock().expect("breaker lock poisoned");
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let trip = inner.state == BreakerState::HalfOpen
            || (inner.state == BreakerState::Closed
                && inner.consecutive_failures >= self.threshold);
        if trip {
            inner.state = BreakerState::Open;
            inner.open_until = Instant::now() + self.cooldown;
            self.opened_total.fetch_add(1, Ordering::Relaxed);
        } else if inner.state == BreakerState::Open {
            // A failure while already open (e.g. a late health probe)
            // extends the cooldown rather than re-counting a trip.
            inner.open_until = Instant::now() + self.cooldown;
        }
    }

    /// Metric encoding of the state: 0 closed, 1 open, 2 half-open.
    pub fn state_code(&self) -> u64 {
        match self.inner.lock().expect("breaker lock poisoned").state {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }

    /// Times the breaker has transitioned to `Open`.
    pub fn opened_total(&self) -> u64 {
        self.opened_total.load(Ordering::Relaxed)
    }
}

/// A managed backend: address, connection pool, breaker, health flag,
/// and transport counters (all shared-reference friendly; the router
/// holds backends in `Arc`s).
pub struct Backend {
    addr: String,
    opts: BackendOpts,
    pool: Mutex<Vec<Conn>>,
    breaker: Breaker,
    healthy: AtomicBool,
    rpcs_total: AtomicU64,
    errors_total: AtomicU64,
    latency: Histogram,
}

impl Backend {
    /// A new backend at `addr`, starting healthy with a closed breaker.
    pub fn new(addr: impl Into<String>, opts: BackendOpts) -> Backend {
        Backend {
            addr: addr.into(),
            opts,
            pool: Mutex::new(Vec::new()),
            breaker: Breaker::new(opts.breaker_threshold, opts.breaker_cooldown),
            healthy: AtomicBool::new(true),
            rpcs_total: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            latency: Histogram::new(),
        }
    }

    /// The backend's address (also its metric label and its failpoint
    /// context in chaos tests).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The breaker (the router gates request traffic on
    /// [`Breaker::admit`]; health probes bypass it so a recovered backend
    /// can heal the breaker).
    pub fn breaker(&self) -> &Breaker {
        &self.breaker
    }

    /// Last health-probe verdict (written by the router's health thread).
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Relaxed)
    }

    /// Records a health-probe verdict.
    pub fn set_healthy(&self, healthy: bool) {
        self.healthy.store(healthy, Ordering::Relaxed);
    }

    /// Round trips completed or failed.
    pub fn rpcs_total(&self) -> u64 {
        self.rpcs_total.load(Ordering::Relaxed)
    }

    /// Round trips that failed at the transport level.
    pub fn errors_total(&self) -> u64 {
        self.errors_total.load(Ordering::Relaxed)
    }

    /// Round-trip latency of successful rpcs.
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// One request line out, one reply line back (both without trailing
    /// newline). Records the transport outcome on the breaker and the
    /// counters. A pooled connection that fails is retried once on a
    /// fresh dial before the failure counts — an idle pooled stream may
    /// have been closed by the peer without that saying anything about
    /// the backend's present health.
    pub fn rpc(&self, line: &str) -> Result<String, RpcError> {
        self.rpcs_total.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let mut attempt = 0;
        let result = loop {
            attempt += 1;
            let (conn, pooled) = match self.checkout() {
                Ok(pair) => pair,
                Err(e) => break Err(e),
            };
            match self.round_trip(conn, line) {
                Ok(reply) => break Ok(reply),
                // A dead *pooled* stream gets one fresh-dial retry; a
                // fresh stream's failure is the backend's answer.
                Err(e) => {
                    if !(pooled && attempt == 1) {
                        break Err(e);
                    }
                }
            }
        };
        match &result {
            Ok(_) => {
                self.latency.observe(started.elapsed());
                self.breaker.record_success();
            }
            Err(_) => {
                self.errors_total.fetch_add(1, Ordering::Relaxed);
                self.breaker.record_failure();
            }
        }
        result
    }

    /// A pooled connection if one is warm, else a fresh dial. The bool
    /// says which.
    fn checkout(&self) -> Result<(Conn, bool), RpcError> {
        if let Some(conn) = self.pool.lock().expect("pool lock poisoned").pop() {
            return Ok((conn, true));
        }
        let mut last_err = None;
        let resolved = self
            .addr
            .to_socket_addrs()
            .map_err(RpcError::Connect)?
            .collect::<Vec<_>>();
        for addr in resolved {
            match TcpStream::connect_timeout(&addr, self.opts.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    stream
                        .set_read_timeout(Some(self.opts.rpc_timeout))
                        .map_err(RpcError::Connect)?;
                    let writer = stream.try_clone().map_err(RpcError::Connect)?;
                    return Ok((
                        Conn {
                            reader: CappedLineReader::new(
                                BufReader::new(stream),
                                self.opts.max_line_bytes,
                            ),
                            writer,
                        },
                        false,
                    ));
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(RpcError::Connect(last_err.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })))
    }

    /// Writes the request, reads exactly one reply line, and returns the
    /// connection to the pool — only on full success.
    fn round_trip(&self, mut conn: Conn, line: &str) -> Result<String, RpcError> {
        conn.writer
            .write_all(line.as_bytes())
            .and_then(|()| conn.writer.write_all(b"\n"))
            .and_then(|()| conn.writer.flush())
            .map_err(RpcError::Io)?;
        loop {
            match conn.reader.read_line().map_err(RpcError::Io)? {
                LineRead::Line(reply) => {
                    if reply.trim().is_empty() {
                        continue;
                    }
                    let mut pool = self.pool.lock().expect("pool lock poisoned");
                    if pool.len() < POOL_CAP {
                        pool.push(conn);
                    }
                    return Ok(reply);
                }
                // The socket's read timeout IS the rpc timeout, so one
                // TimedOut here means the backend went silent too long.
                LineRead::TimedOut => return Err(RpcError::Timeout),
                LineRead::TooLarge => return Err(RpcError::TooLarge),
                LineRead::Eof => {
                    return Err(RpcError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "backend closed the connection before replying",
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> Breaker {
        Breaker::new(3, Duration::from_millis(40))
    }

    #[test]
    fn breaker_opens_after_threshold_consecutive_failures() {
        let b = breaker();
        assert!(b.admit());
        b.record_failure();
        b.record_failure();
        assert!(b.admit(), "below threshold stays closed");
        b.record_failure();
        assert_eq!(b.state_code(), 1);
        assert!(!b.admit(), "open breaker refuses traffic");
        assert_eq!(b.opened_total(), 1);
    }

    #[test]
    fn success_resets_the_failure_count() {
        let b = breaker();
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert!(b.admit(), "count restarted after a success");
        assert_eq!(b.opened_total(), 0);
    }

    #[test]
    fn open_breaker_half_opens_once_after_cooldown() {
        let b = breaker();
        for _ in 0..3 {
            b.record_failure();
        }
        assert!(!b.admit());
        std::thread::sleep(Duration::from_millis(60));
        assert!(b.admit(), "cooldown expired: one probe admitted");
        assert_eq!(b.state_code(), 2);
        assert!(!b.admit(), "only one probe until its outcome is known");
        // Probe success closes; the backend is back in rotation.
        b.record_success();
        assert_eq!(b.state_code(), 0);
        assert!(b.admit());
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let b = breaker();
        for _ in 0..3 {
            b.record_failure();
        }
        std::thread::sleep(Duration::from_millis(60));
        assert!(b.admit());
        b.record_failure();
        assert_eq!(b.state_code(), 1, "failed probe re-opens immediately");
        assert!(!b.admit());
    }

    #[test]
    fn rpc_against_nothing_is_a_connect_error_and_counts() {
        // Bind-then-drop guarantees an unused port.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let backend = Backend::new(
            format!("127.0.0.1:{port}"),
            BackendOpts {
                connect_timeout: Duration::from_millis(200),
                rpc_timeout: Duration::from_millis(200),
                max_line_bytes: 1 << 16,
                breaker_threshold: 2,
                breaker_cooldown: Duration::from_secs(5),
            },
        );
        assert!(matches!(
            backend.rpc("{\"op\":\"status\"}"),
            Err(RpcError::Connect(_))
        ));
        assert!(matches!(
            backend.rpc("{\"op\":\"status\"}"),
            Err(RpcError::Connect(_))
        ));
        assert_eq!(backend.rpcs_total(), 2);
        assert_eq!(backend.errors_total(), 2);
        assert!(!backend.breaker().admit(), "two failures tripped K=2");
    }
}
