//! Hand-rolled JSON encoder/decoder for the newline-delimited protocol.
//!
//! The workspace builds offline with no registry dependencies (the same
//! discipline as `shims/`), so the wire format is implemented here from
//! scratch: a small [`Json`] value tree, a recursive-descent parser with a
//! depth bound, and a compact encoder whose output never contains a raw
//! newline — every control character inside strings is escaped, which is
//! what makes "one JSON object per line" a sound framing.
//!
//! Integers and floating-point numbers are kept distinct ([`Json::Int`] vs
//! [`Json::Float`]): δ values and counters are `i64` end-to-end and must
//! not round-trip through `f64`. A float is always encoded with a decimal
//! point or exponent so the distinction survives a round trip; NaN and
//! infinities (unrepresentable in JSON) encode as `null`.

use std::fmt;

/// A parsed JSON value.
///
/// Object fields keep their insertion order (a `Vec`, not a map): encoding
/// is deterministic, and the small objects of this protocol make linear
/// key lookup ([`Json::get`]) the right trade.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (no decimal point or exponent in the source).
    Int(i64),
    /// An unsigned integer **above** `i64::MAX` (content hashes, large
    /// counters): kept exact instead of degrading to `f64`, which only
    /// holds 53 bits of mantissa. Canonical form: any value that fits in
    /// `i64` is an `Int` — the parser and [`Json::uint`] both enforce
    /// this, so `Uint` never aliases an `Int` under `==`.
    Uint(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value (convenience constructor).
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned integer in canonical form: [`Json::Int`] when the
    /// value fits in `i64`, [`Json::Uint`] above that.
    pub fn uint(v: u64) -> Json {
        match i64::try_from(v) {
            Ok(i) => Json::Int(i),
            Err(_) => Json::Uint(v),
        }
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a field of an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer (floats do not coerce).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            // Canonical `Uint` never fits, but tolerate hand-built values.
            Json::Uint(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::Uint(u) => Some(*u),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (integers coerce; values above
    /// 2^53 lose precision here — use [`Json::as_u64`]/[`Json::as_i64`]
    /// when exactness matters).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Uint(u) => Some(*u as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Encodes compactly (no whitespace, one line — all control characters
    /// are escaped, so the output never contains `\n`).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Uint(u) => out.push_str(&u.to_string()),
            Json::Float(f) => write_float(*f, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

fn write_float(value: f64, out: &mut String) {
    if !value.is_finite() {
        // JSON has no NaN/Infinity; null is the conventional degradation.
        out.push_str("null");
        return;
    }
    let s = format!("{value}");
    out.push_str(&s);
    // `{}` prints integral floats without a point ("1"); keep the
    // int/float distinction visible on the wire so decode(encode(x)) == x.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A decode failure: what went wrong and the byte offset it was noticed at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input line.
    pub position: usize,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for WireError {}

/// Nesting bound: deeper input is rejected instead of risking a stack
/// overflow on hostile `[[[[…`.
const MAX_DEPTH: u32 = 128;

/// Parses one JSON value; trailing whitespace is allowed, anything else is
/// an error (the framing layer hands us exactly one line = one value).
pub fn decode(text: &str) -> Result<Json, WireError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        text,
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> WireError {
        WireError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), WireError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, WireError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, WireError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, WireError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a maximal escape-free, quote-free run.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The run boundaries fall on character boundaries because `"`,
            // `\` and control bytes never occur inside a UTF-8 multi-byte
            // sequence.
            out.push_str(&self.text[start..self.pos]);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), WireError> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require the trailing \uXXXX.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("unpaired high surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("unpaired high surrogate"));
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?);
            }
            other => {
                return Err(self.err(format!("invalid escape `\\{}`", other as char)));
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.err("expected digit"));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let literal = &self.text[start..self.pos];
        if !is_float {
            if let Ok(i) = literal.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            // i64 overflow but unsigned (a u64 hash or counter above
            // `i64::MAX`): keep it exact — degrading to f64 would corrupt
            // the low bits (f64 has a 53-bit mantissa).
            if let Ok(u) = literal.parse::<u64>() {
                return Ok(Json::Uint(u));
            }
            // Out-of-range for 64-bit entirely: degrade to float like
            // every other JSON decoder.
        }
        literal
            .parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let encoded = v.encode();
        assert!(
            !encoded.contains('\n'),
            "framing violation: encoded value contains a newline: {encoded}"
        );
        assert_eq!(&decode(&encoded).expect(&encoded), v, "{encoded}");
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-1),
            Json::Int(i64::MAX),
            Json::Int(i64::MIN),
            Json::Uint(i64::MAX as u64 + 1),
            Json::Uint(u64::MAX),
            Json::Float(1.5),
            Json::Float(-0.25),
            Json::Float(1e300),
            Json::Str(String::new()),
            Json::str("plain"),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = Json::Float(3.0);
        assert_eq!(v.encode(), "3.0");
        roundtrip(&v);
    }

    #[test]
    fn control_characters_are_escaped_exhaustively() {
        // Every control character must encode without a raw byte < 0x20.
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let v = Json::Str(format!("a{c}b"));
            let encoded = v.encode();
            assert!(
                encoded.bytes().all(|b| b >= 0x20),
                "raw control byte in {encoded:?}"
            );
            roundtrip(&v);
        }
    }

    #[test]
    fn named_escapes_decode() {
        assert_eq!(
            decode(r#""\" \\ \/ \b \f \n \r \t""#).unwrap(),
            Json::str("\" \\ / \u{08} \u{0c} \n \r \t")
        );
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(decode(r#""\u0041""#).unwrap(), Json::str("A"));
        assert_eq!(decode(r#""\u00e9""#).unwrap(), Json::str("é"));
        // Surrogate pair → astral plane.
        assert_eq!(decode(r#""\ud83d\ude00""#).unwrap(), Json::str("😀"));
        // Unpaired surrogates are rejected.
        assert!(decode(r#""\ud83d""#).is_err());
        assert!(decode(r#""\ud83dx""#).is_err());
        assert!(decode(r#""\ude00""#).is_err());
    }

    #[test]
    fn multibyte_utf8_passes_through() {
        for s in ["héllo", "日本語", "αβγ", "emoji 🚀 end", "mixed ñ\t日"] {
            roundtrip(&Json::str(s));
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Json::obj([
            ("op", Json::str("check")),
            ("deltas", Json::Arr(vec![Json::Int(1), Json::Int(-7)])),
            (
                "nested",
                Json::Arr(vec![
                    Json::Arr(vec![Json::Null, Json::Bool(true)]),
                    Json::obj([("k", Json::Str("v\n".into()))]),
                ]),
            ),
        ]);
        roundtrip(&v);
    }

    #[test]
    fn empty_containers_roundtrip() {
        roundtrip(&Json::Arr(vec![]));
        roundtrip(&Json::Obj(vec![]));
        assert_eq!(decode("[ ]").unwrap(), Json::Arr(vec![]));
        assert_eq!(decode("{ }").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = decode(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("b").unwrap().is_null());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "\"unterminated",
            "tru",
            "nul",
            "01x",
            "-",
            "1.",
            "1e",
            "\u{1}",
            "\"raw\ncontrol\"",
            "[1]]",
            "{} {}",
            "\"bad \\q escape\"",
            "\"\\u12g4\"",
        ] {
            assert!(decode(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_bound_rejects_hostile_nesting() {
        let deep = "[".repeat(4096) + &"]".repeat(4096);
        assert!(decode(&deep).is_err());
        // …but reasonable nesting is fine.
        let ok = "[".repeat(64) + "1" + &"]".repeat(64);
        assert!(decode(&ok).is_ok());
    }

    #[test]
    fn integers_above_i64_stay_exact_as_uint() {
        // Regression: 2^63 used to degrade to f64 and lose its low bits.
        assert_eq!(
            decode("9223372036854775808").unwrap(),
            Json::Uint(9223372036854775808)
        );
        assert_eq!(
            decode("18446744073709551615").unwrap(),
            Json::Uint(u64::MAX)
        );
        // A value 53-bit floats cannot hold: bit 0 must survive.
        let v = decode("9223372036854775809").unwrap();
        assert_eq!(v.as_u64(), Some(9223372036854775809));
        // Canonical form: anything that fits i64 parses as Int, and the
        // constructor agrees.
        assert_eq!(decode("9223372036854775807").unwrap(), Json::Int(i64::MAX));
        assert_eq!(Json::uint(7), Json::Int(7));
        assert_eq!(Json::uint(u64::MAX), Json::Uint(u64::MAX));
    }

    #[test]
    fn huge_integers_degrade_to_float() {
        // Only past u64::MAX does the decoder fall back to f64.
        match decode("123456789012345678901234567890").unwrap() {
            Json::Float(f) => assert!(f > 1e29),
            other => panic!("expected float, got {other:?}"),
        }
        // Large *negative* integers (no u64 rescue) degrade too.
        match decode("-123456789012345678901234567890").unwrap() {
            Json::Float(f) => assert!(f < -1e29),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn uint_accessors_behave() {
        let big = Json::Uint(i64::MAX as u64 + 5);
        assert_eq!(big.as_u64(), Some(i64::MAX as u64 + 5));
        assert_eq!(big.as_i64(), None);
        assert!(big.as_f64().is_some());
        assert_eq!(Json::Int(-1).as_u64(), None);
    }

    #[test]
    fn accessors_behave() {
        let v = decode(r#"{"s":"x","i":-3,"f":2.5,"b":true,"a":[1],"n":null}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("i").unwrap().as_i64(), Some(-3));
        assert_eq!(v.get("i").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("f").unwrap().as_i64(), None);
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert!(v.get("n").unwrap().is_null());
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
    }

    #[test]
    fn nonfinite_floats_encode_as_null() {
        assert_eq!(Json::Float(f64::NAN).encode(), "null");
        assert_eq!(Json::Float(f64::INFINITY).encode(), "null");
        assert_eq!(Json::Float(f64::NEG_INFINITY).encode(), "null");
        // The degradation must still be *valid* JSON wherever it appears:
        // a non-finite value nested in a reply decodes back as Null.
        let nested = Json::obj([
            ("rate", Json::Float(f64::NAN)),
            (
                "values",
                Json::Arr(vec![Json::Float(f64::INFINITY), Json::Int(1)]),
            ),
        ]);
        let reparsed = decode(&nested.encode()).expect("valid JSON");
        assert_eq!(reparsed.get("rate"), Some(&Json::Null));
        assert_eq!(
            reparsed.get("values").and_then(Json::as_array),
            Some(&[Json::Null, Json::Int(1)][..])
        );
    }
}
