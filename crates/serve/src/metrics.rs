//! Prometheus-text metrics primitives.
//!
//! The daemon's `metrics` operation exposes its counters in the Prometheus
//! text exposition format (version 0.0.4): one `NAME VALUE` sample per
//! line, histograms as cumulative `_bucket{le="..."}` series plus `_sum`
//! and `_count`. This module holds the two building blocks:
//!
//! * [`Histogram`] — a lock-free fixed-bucket latency histogram. Workers
//!   record one observation per finished job with a single atomic
//!   increment; a scrape renders the cumulative buckets, from which any
//!   quantile (p50/p90/p99) is derivable without the server retaining
//!   per-request samples.
//! * [`percentile`] — the exact-sample percentile used by `loadgen`'s
//!   client-side latency report (re-exported here so the load generator
//!   and the serve tests agree on one definition).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds, in seconds, of the fixed latency buckets. The final
/// implicit bucket is `+Inf`. The spread covers sub-millisecond cache-hit
/// checks up to multi-second exact-delay searches.
pub const LATENCY_BUCKETS_S: [f64; 12] = [
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0, 2.5, 10.0,
];

/// A fixed-bucket, lock-free latency histogram.
///
/// Each observation performs one relaxed bucket increment and one relaxed
/// sum update; readers derive the count from the bucket totals, so a
/// scrape is always internally consistent to within the handful of
/// observations racing it. Quantiles read off the cumulative buckets are
/// upper bounds (the bucket boundary at or above the true sample).
#[derive(Debug, Default)]
pub struct Histogram {
    /// One counter per bucket in [`LATENCY_BUCKETS_S`] plus the trailing
    /// `+Inf` bucket. Non-cumulative; cumulated at read time.
    buckets: [AtomicU64; LATENCY_BUCKETS_S.len() + 1],
    /// Total observed time in microseconds (saturating).
    sum_us: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one latency observation.
    pub fn observe(&self, latency: Duration) {
        let secs = latency.as_secs_f64();
        let slot = LATENCY_BUCKETS_S
            .iter()
            .position(|&bound| secs <= bound)
            .unwrap_or(LATENCY_BUCKETS_S.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        // Saturate rather than wrap: a scraped sum that pins at the max is
        // obviously wrong; one that silently wrapped is not.
        let _ = self
            .sum_us
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |sum| {
                Some(sum.saturating_add(us))
            });
    }

    /// Cumulative bucket counts: entry `i` counts observations at or below
    /// bound `i`, with the final entry (the `+Inf` bucket) equal to
    /// [`count`](Histogram::count).
    pub fn cumulative(&self) -> [u64; LATENCY_BUCKETS_S.len() + 1] {
        let mut out = [0u64; LATENCY_BUCKETS_S.len() + 1];
        let mut total = 0u64;
        for (slot, bucket) in self.buckets.iter().enumerate() {
            total = total.saturating_add(bucket.load(Ordering::Relaxed));
            out[slot] = total;
        }
        out
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.cumulative()[LATENCY_BUCKETS_S.len()]
    }

    /// Total observed time in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// The bucket upper bound (seconds) at or above quantile `q` in
    /// `0.0..=1.0` — an upper bound on the true sample quantile, to bucket
    /// resolution. `None` when empty; `f64::INFINITY` when the quantile
    /// falls in the `+Inf` bucket.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let cumulative = self.cumulative();
        let count = cumulative[LATENCY_BUCKETS_S.len()];
        if count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        for (slot, &bound) in LATENCY_BUCKETS_S.iter().enumerate() {
            if cumulative[slot] >= rank {
                return Some(bound);
            }
        }
        Some(f64::INFINITY)
    }

    /// Renders the histogram as Prometheus text: cumulative
    /// `{name}_bucket{le="..."}` samples (including `le="+Inf"`), then
    /// `{name}_sum` (seconds) and `{name}_count`.
    pub fn render(&self, out: &mut String, name: &str, help: &str) {
        render_family(out, name, "histogram", help);
        self.render_series(out, name, &[]);
    }

    /// Renders the histogram's sample series with extra labels merged into
    /// every line, and **no** `# HELP`/`# TYPE` header — the caller emits
    /// the family header once (via [`render_family`]) and then one series
    /// per label set, which is how a per-backend latency family must be
    /// laid out (one header, N labeled series).
    pub fn render_series(&self, out: &mut String, name: &str, labels: &[(&str, &str)]) {
        use std::fmt::Write;
        let cumulative = self.cumulative();
        let prefix = label_text(labels);
        let joiner = if prefix.is_empty() { "" } else { "," };
        for (slot, &bound) in LATENCY_BUCKETS_S.iter().enumerate() {
            let _ = writeln!(
                out,
                "{name}_bucket{{{prefix}{joiner}le=\"{bound}\"}} {}",
                cumulative[slot]
            );
        }
        let count = cumulative[LATENCY_BUCKETS_S.len()];
        let _ = writeln!(out, "{name}_bucket{{{prefix}{joiner}le=\"+Inf\"}} {count}");
        let sum = self.sum_micros() as f64 / 1_000_000.0;
        if prefix.is_empty() {
            let _ = writeln!(out, "{name}_sum {sum:.6}");
            let _ = writeln!(out, "{name}_count {count}");
        } else {
            let _ = writeln!(out, "{name}_sum{{{prefix}}} {sum:.6}");
            let _ = writeln!(out, "{name}_count{{{prefix}}} {count}");
        }
    }
}

/// Appends a `# HELP`/`# TYPE` family header with no samples — the shape
/// a labeled family needs (one header, then one sample per label set via
/// [`render_labeled`] or [`Histogram::render_series`]).
pub fn render_family(out: &mut String, name: &str, kind: &str, help: &str) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Appends one labeled sample line (no header; see [`render_family`]).
pub fn render_labeled(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    use std::fmt::Write;
    let _ = writeln!(out, "{name}{{{}}} {value}", label_text(labels));
}

/// `k1="v1",k2="v2"` with label values escaped per the exposition format
/// (backslash, double quote, and newline are the only specials).
fn label_text(labels: &[(&str, &str)]) -> String {
    let mut text = String::new();
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            text.push(',');
        }
        text.push_str(key);
        text.push_str("=\"");
        for c in value.chars() {
            match c {
                '\\' => text.push_str("\\\\"),
                '"' => text.push_str("\\\""),
                '\n' => text.push_str("\\n"),
                other => text.push(other),
            }
        }
        text.push('"');
    }
    text
}

/// Appends one `# HELP`/`# TYPE`/sample triple for a single-valued metric.
pub fn render_sample(out: &mut String, name: &str, kind: &str, help: &str, value: u64) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {value}");
}

/// Appends a `# HELP`/`# TYPE`/sample triple for a float-valued gauge.
pub fn render_gauge_f64(out: &mut String, name: &str, help: &str, value: f64) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// The exact-sample percentile of an already-sorted latency list, by the
/// ceiling nearest-rank definition: the smallest sample such that at least
/// `p · n` samples are at or below it, i.e. rank `⌈p·n⌉` (1-based, clamped
/// to `1..=n`). `p` is in `0.0..=1.0` (values outside are clamped); an
/// empty slice yields zero.
///
/// This is the same definition [`Histogram::quantile`] applies to its
/// cumulative buckets, so `loadgen`'s client-side report and the daemon's
/// scraped histogram quantiles agree on what "p99" means — the previous
/// `round`-based interpolation could sit a full rank below the nearest-rank
/// answer (e.g. p50 of 100 samples picked index 50, the 51st sample,
/// instead of the 50th).
pub fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let n = sorted.len();
    let rank = (p.clamp(0.0, 1.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum_micros(), 0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn observations_land_in_the_right_buckets() {
        let h = Histogram::new();
        h.observe(Duration::from_micros(100)); // <= 0.0005
        h.observe(Duration::from_millis(2)); // <= 0.0025
        h.observe(Duration::from_secs(60)); // +Inf
        let cumulative = h.cumulative();
        assert_eq!(cumulative[0], 1);
        assert_eq!(cumulative[2], 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_micros(), 100 + 2_000 + 60_000_000);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.observe(Duration::from_millis(1)); // <= 0.001
        }
        for _ in 0..10 {
            h.observe(Duration::from_millis(200)); // <= 0.25
        }
        assert_eq!(h.quantile(0.50), Some(0.001));
        assert_eq!(h.quantile(0.90), Some(0.001));
        assert_eq!(h.quantile(0.99), Some(0.25));
        let slow = Histogram::new();
        slow.observe(Duration::from_secs(100));
        assert_eq!(slow.quantile(0.5), Some(f64::INFINITY));
    }

    #[test]
    fn render_emits_prometheus_histogram_lines() {
        let h = Histogram::new();
        h.observe(Duration::from_millis(1));
        let mut out = String::new();
        h.render(&mut out, "ltt_request_duration_seconds", "request latency");
        assert!(out.contains("# TYPE ltt_request_duration_seconds histogram"));
        assert!(out.contains("ltt_request_duration_seconds_bucket{le=\"0.001\"} 1"));
        assert!(out.contains("ltt_request_duration_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(out.contains("ltt_request_duration_seconds_count 1"));
        assert!(out.contains("ltt_request_duration_seconds_sum 0.001000"));
    }

    #[test]
    fn labeled_series_share_one_family_header() {
        let mut out = String::new();
        render_family(&mut out, "ltt_backend_rpcs_total", "counter", "rpcs");
        render_labeled(
            &mut out,
            "ltt_backend_rpcs_total",
            &[("backend", "127.0.0.1:1")],
            3,
        );
        render_labeled(
            &mut out,
            "ltt_backend_rpcs_total",
            &[("backend", "127.0.0.1:2")],
            5,
        );
        assert_eq!(out.matches("# TYPE ltt_backend_rpcs_total").count(), 1);
        assert!(out.contains("ltt_backend_rpcs_total{backend=\"127.0.0.1:1\"} 3"));
        assert!(out.contains("ltt_backend_rpcs_total{backend=\"127.0.0.1:2\"} 5"));
        // Label values escape the exposition format's three specials.
        let mut esc = String::new();
        render_labeled(&mut esc, "m", &[("k", "a\"b\\c\nd")], 1);
        assert_eq!(esc, "m{k=\"a\\\"b\\\\c\\nd\"} 1\n");
    }

    #[test]
    fn histogram_series_renders_with_labels() {
        let h = Histogram::new();
        h.observe(Duration::from_millis(1));
        let mut out = String::new();
        render_family(&mut out, "d", "histogram", "latency");
        h.render_series(&mut out, "d", &[("backend", "b1")]);
        assert!(out.contains("d_bucket{backend=\"b1\",le=\"0.001\"} 1"));
        assert!(out.contains("d_bucket{backend=\"b1\",le=\"+Inf\"} 1"));
        assert!(out.contains("d_sum{backend=\"b1\"} 0.001000"));
        assert!(out.contains("d_count{backend=\"b1\"} 1"));
        // The unlabeled render is unchanged by the refactor.
        let mut plain = String::new();
        h.render(&mut plain, "d", "latency");
        assert!(plain.contains("d_bucket{le=\"0.001\"} 1"));
        assert!(plain.contains("d_sum 0.001000"));
    }

    #[test]
    fn percentile_matches_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
        let one = [Duration::from_millis(7)];
        assert_eq!(percentile(&one, 0.0), one[0]);
        assert_eq!(percentile(&one, 1.0), one[0]);
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        // Ceiling nearest-rank: rank ⌈p·100⌉, 1-based.
        assert_eq!(percentile(&sorted, 0.50), Duration::from_millis(50));
        assert_eq!(percentile(&sorted, 0.90), Duration::from_millis(90));
        assert_eq!(percentile(&sorted, 0.99), Duration::from_millis(99));
        assert_eq!(percentile(&sorted, 1.0), Duration::from_millis(100));
        // Boundary cases: p = 0 clamps to the first sample, p just above a
        // rank boundary steps to the next sample, out-of-range p clamps.
        assert_eq!(percentile(&sorted, 0.0), Duration::from_millis(1));
        assert_eq!(percentile(&sorted, 0.001), Duration::from_millis(1));
        assert_eq!(percentile(&sorted, 0.011), Duration::from_millis(2));
        assert_eq!(percentile(&sorted, 0.991), Duration::from_millis(100));
        assert_eq!(percentile(&sorted, -0.5), Duration::from_millis(1));
        assert_eq!(percentile(&sorted, 1.5), Duration::from_millis(100));
        // Non-divisible length: p50 of 3 samples is the 2nd (⌈1.5⌉ = 2).
        let three: Vec<Duration> = (1..=3).map(Duration::from_millis).collect();
        assert_eq!(percentile(&three, 0.50), Duration::from_millis(2));
        assert_eq!(percentile(&three, 0.34), Duration::from_millis(2));
        assert_eq!(percentile(&three, 0.33), Duration::from_millis(1));
    }

    /// The exact-sample percentile and the bucket-resolution histogram
    /// quantile implement the same nearest-rank definition: on a sample
    /// set aligned with bucket bounds, the histogram answer is exactly the
    /// bucket containing the exact-sample answer.
    #[test]
    fn percentile_and_histogram_quantile_agree() {
        let h = Histogram::new();
        let mut samples = Vec::new();
        // 90 fast (1ms) + 10 slow (200ms) observations, as in the
        // quantile test above.
        for _ in 0..90 {
            samples.push(Duration::from_millis(1));
            h.observe(Duration::from_millis(1));
        }
        for _ in 0..10 {
            samples.push(Duration::from_millis(200));
            h.observe(Duration::from_millis(200));
        }
        samples.sort();
        for &(p, want_sample, want_bucket) in &[
            // Boundary: q = 0 means "the smallest sample" under both
            // definitions (rank clamps up to 1, never 0).
            (0.00, Duration::from_millis(1), 0.001),
            (0.50, Duration::from_millis(1), 0.001),
            (0.90, Duration::from_millis(1), 0.001),
            (0.91, Duration::from_millis(200), 0.25),
            (0.99, Duration::from_millis(200), 0.25),
            // Boundary: q = 1 means "the largest sample", and clamping
            // keeps out-of-range q pinned to the same answers.
            (1.00, Duration::from_millis(200), 0.25),
            (-1.0, Duration::from_millis(1), 0.001),
            (2.00, Duration::from_millis(200), 0.25),
        ] {
            assert_eq!(percentile(&samples, p), want_sample, "p = {p}");
            assert_eq!(h.quantile(p), Some(want_bucket), "p = {p}");
        }
    }

    /// The degenerate inputs where rank arithmetic is most likely to slip
    /// off by one: no samples, and exactly one sample.
    #[test]
    fn percentile_and_quantile_agree_on_degenerate_inputs() {
        // Empty: the histogram reports "no quantile" (None) and the
        // exact-sample percentile reports its documented zero sentinel —
        // both are explicit "no data" answers, neither panics.
        let empty = Histogram::new();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(empty.quantile(q), None, "q = {q}");
            assert_eq!(percentile(&[], q), Duration::ZERO, "q = {q}");
        }

        // Single sample: every quantile from 0 to 1 (and beyond, via
        // clamping) is that sample — rank ⌈q·1⌉ clamps to 1 everywhere.
        let h = Histogram::new();
        h.observe(Duration::from_millis(2)); // bucket le = 0.0025
        let one = [Duration::from_millis(2)];
        for q in [0.0, 0.25, 0.5, 0.99, 1.0, -3.0, 7.0] {
            assert_eq!(h.quantile(q), Some(0.0025), "q = {q}");
            assert_eq!(percentile(&one, q), one[0], "q = {q}");
        }

        // NaN falls through both rank computations to rank 1 (the float
        // casts saturate to 0, then clamp up): the smallest sample, not a
        // panic or an out-of-range index.
        assert_eq!(h.quantile(f64::NAN), Some(0.0025));
        assert_eq!(percentile(&one, f64::NAN), one[0]);
    }

    #[test]
    fn concurrent_observations_all_count() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        h.observe(Duration::from_millis(3));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum_micros(), 1000 * 3_000);
    }
}
