//! The content-hashed, LRU-bounded circuit registry.
//!
//! Each entry pairs a parsed [`Circuit`] with a shared
//! [`CheckSession`]`<'static>`: the expensive per-circuit analyses
//! (implication table, SCOAP, arrival times, dominators, base fixpoint)
//! are computed once per *content*, then reused by every request that
//! names the circuit. Entries are keyed by an FNV-1a hash of
//! `(format, delay, source)`, so re-registering byte-identical content —
//! even under a different name — is a cache hit that re-parses nothing.
//!
//! The registry is bounded: inserting beyond capacity evicts the
//! least-recently-used entry. Eviction only drops the registry's
//! reference; requests already holding the [`Arc<CircuitEntry>`] finish
//! normally and the entry is freed when the last one completes.

use crate::proto::{ErrorCode, ProtoError};
use ltt_core::{CheckSession, VerifyConfig};
use ltt_netlist::bench_format::parse_bench;
use ltt_netlist::verilog::parse_verilog;
use ltt_netlist::{Circuit, DelayInterval};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Content hash of a registration: 64-bit FNV-1a over the format, the
/// per-gate delay, and the netlist source, rendered as 16 hex digits.
/// (A non-cryptographic hash is fine here: the registry is a cache, and a
/// collision's worst case is answering for the colliding circuit — the
/// same trust model as the netlist itself, which the client also supplies.)
pub fn content_id(format: &str, delay: u32, source: &str) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    eat(format.as_bytes());
    eat(&[0]);
    eat(&delay.to_le_bytes());
    eat(&[0]);
    eat(source.as_bytes());
    format!("{hash:016x}")
}

/// One registered circuit: identity, parsed netlist, and the shared
/// prepared session every request against it reuses.
pub struct CircuitEntry {
    /// The content hash (the canonical registry key).
    pub id: String,
    /// The name it was registered under (an alias key; a later
    /// registration may rebind the name to different content).
    pub name: String,
    /// The parsed netlist.
    pub circuit: Arc<Circuit>,
    /// The shared check session (default full-pipeline configuration).
    pub session: CheckSession<'static>,
}

impl std::fmt::Debug for CircuitEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitEntry")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("nets", &self.circuit.num_nets())
            .finish()
    }
}

/// Registry occupancy and traffic counters (the `status` payload).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
    /// Lookups (and re-registrations) served from a resident entry.
    pub hits: u64,
    /// Lookups that found nothing / registrations that had to parse.
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
}

impl RegistryStats {
    /// Hits as a fraction of all lookups (`None` before any traffic).
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

struct Inner {
    /// Most-recently-used first.
    entries: VecDeque<Arc<CircuitEntry>>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded, thread-safe circuit cache (see the module docs).
///
/// # Examples
///
/// ```
/// use ltt_serve::CircuitRegistry;
///
/// let registry = CircuitRegistry::new(4);
/// let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
/// let (entry, cached) = registry.register("tiny", "bench", src, 10).unwrap();
/// assert!(!cached);
/// // Same content, different name: no re-parse, no re-prepare.
/// let (again, cached) = registry.register("tiny2", "bench", src, 10).unwrap();
/// assert!(cached);
/// assert_eq!(entry.id, again.id);
/// ```
pub struct CircuitRegistry {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl CircuitRegistry {
    /// A registry holding at most `capacity` circuits (minimum 1).
    pub fn new(capacity: usize) -> Self {
        CircuitRegistry {
            inner: Mutex::new(Inner {
                entries: VecDeque::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Registers a netlist: parses it (unless byte-identical content is
    /// already resident), builds the shared session, and returns the entry
    /// plus whether it was a cache hit. Parsing and session construction
    /// run *outside* the registry lock, so a slow parse never blocks
    /// concurrent lookups.
    pub fn register(
        &self,
        name: &str,
        format: &str,
        source: &str,
        delay: u32,
    ) -> Result<(Arc<CircuitEntry>, bool), ProtoError> {
        let id = content_id(format, delay, source);
        // `count_miss: false`: a cold registration counts one miss (in the
        // insert path below), not one per probe.
        if let Some(entry) = self.touch_with(|e| e.id == id, false) {
            return Ok((entry, true));
        }
        let circuit = parse_circuit(name, format, source, delay)?;
        let circuit = Arc::new(circuit);
        let entry = Arc::new(CircuitEntry {
            id: id.clone(),
            name: name.to_string(),
            session: CheckSession::new_shared(circuit.clone(), VerifyConfig::default()),
            circuit,
        });
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        // Double-check: a racing registration of the same content wins if
        // it got here first — reuse its entry (and its warm analyses)
        // rather than shadowing it with ours.
        if let Some(pos) = inner.entries.iter().position(|e| e.id == id) {
            let existing = inner.entries.remove(pos).expect("position just found");
            inner.entries.push_front(existing.clone());
            inner.hits += 1;
            return Ok((existing, true));
        }
        inner.misses += 1;
        inner.entries.push_front(entry.clone());
        while inner.entries.len() > self.capacity {
            inner.entries.pop_back();
            inner.evictions += 1;
        }
        Ok((entry, false))
    }

    /// Looks up an entry by content id or by registered name (most
    /// recently used wins when several names collide) and marks it
    /// most-recently-used.
    pub fn lookup(&self, key: &str) -> Result<Arc<CircuitEntry>, ProtoError> {
        self.touch(|e| e.id == key || e.name == key).ok_or_else(|| {
            ProtoError::new(
                ErrorCode::UnknownCircuit,
                format!("no registered circuit `{key}` (register it, or it may have been evicted)"),
            )
        })
    }

    /// Finds the first (most-recently-used) entry matching `pred`, moves
    /// it to the front, and counts the hit/miss.
    fn touch(&self, pred: impl Fn(&CircuitEntry) -> bool) -> Option<Arc<CircuitEntry>> {
        self.touch_with(pred, true)
    }

    /// [`CircuitRegistry::touch`] with the miss accounting optional (a
    /// registration's pre-probe must not count a miss the insert path will
    /// count again).
    fn touch_with(
        &self,
        pred: impl Fn(&CircuitEntry) -> bool,
        count_miss: bool,
    ) -> Option<Arc<CircuitEntry>> {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        match inner.entries.iter().position(|e| pred(e)) {
            Some(pos) => {
                let entry = inner.entries.remove(pos).expect("position just found");
                inner.entries.push_front(entry.clone());
                inner.hits += 1;
                Some(entry)
            }
            None => {
                if count_miss {
                    inner.misses += 1;
                }
                None
            }
        }
    }

    /// A snapshot of the registry counters.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().expect("registry lock poisoned");
        RegistryStats {
            entries: inner.entries.len(),
            capacity: self.capacity,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }
}

fn parse_circuit(
    name: &str,
    format: &str,
    source: &str,
    delay: u32,
) -> Result<Circuit, ProtoError> {
    let delay = DelayInterval::fixed(delay);
    let invalid = |e: String| ProtoError::new(ErrorCode::InvalidNetlist, e);
    match format {
        "bench" => parse_bench(name, source, delay).map_err(|e| invalid(e.to_string())),
        "verilog" => parse_verilog(source, delay).map_err(|e| invalid(e.to_string())),
        other => Err(ProtoError::new(
            ErrorCode::BadRequest,
            format!("unknown format `{other}`"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
    const TINY2: &str = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
    const TINY3: &str = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";

    #[test]
    fn content_id_is_stable_and_discriminating() {
        let a = content_id("bench", 10, TINY);
        assert_eq!(a, content_id("bench", 10, TINY));
        assert_eq!(a.len(), 16);
        assert_ne!(a, content_id("bench", 10, TINY2));
        assert_ne!(a, content_id("bench", 11, TINY));
        assert_ne!(a, content_id("verilog", 10, TINY));
    }

    #[test]
    fn register_then_lookup_by_id_and_name() {
        let registry = CircuitRegistry::new(4);
        let (entry, cached) = registry.register("tiny", "bench", TINY, 10).unwrap();
        assert!(!cached);
        assert_eq!(registry.lookup(&entry.id).unwrap().id, entry.id);
        assert_eq!(registry.lookup("tiny").unwrap().id, entry.id);
        assert!(registry.lookup("nope").is_err());
        assert_eq!(
            registry.lookup("nope").unwrap_err().code,
            ErrorCode::UnknownCircuit
        );
    }

    #[test]
    fn identical_content_is_a_hit_even_under_a_new_name() {
        let registry = CircuitRegistry::new(4);
        let (a, _) = registry.register("one", "bench", TINY, 10).unwrap();
        let (b, cached) = registry.register("two", "bench", TINY, 10).unwrap();
        assert!(cached);
        assert!(Arc::ptr_eq(&a, &b));
        // The alias name of the first registration still resolves; the
        // second name does not create a second entry.
        assert_eq!(registry.stats().entries, 1);
    }

    #[test]
    fn sessions_are_usable_and_shared() {
        let registry = CircuitRegistry::new(4);
        let (entry, _) = registry.register("tiny", "bench", TINY, 10).unwrap();
        let y = entry.circuit.outputs()[0];
        // NAND of two inputs: exact delay is one gate.
        assert!(entry.session.verify(y, 11).verdict.is_no_violation());
        assert!(entry.session.verify(y, 10).verdict.is_violation());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let registry = CircuitRegistry::new(2);
        registry.register("a", "bench", TINY, 10).unwrap();
        registry.register("b", "bench", TINY2, 10).unwrap();
        // Touch `a` so `b` is now coldest.
        registry.lookup("a").unwrap();
        registry.register("c", "bench", TINY3, 10).unwrap();
        assert!(registry.lookup("a").is_ok());
        assert!(registry.lookup("c").is_ok());
        assert!(registry.lookup("b").is_err());
        let stats = registry.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn evicted_entries_survive_while_held() {
        let registry = CircuitRegistry::new(1);
        let (held, _) = registry.register("a", "bench", TINY, 10).unwrap();
        registry.register("b", "bench", TINY2, 10).unwrap();
        assert!(registry.lookup("a").is_err(), "evicted from the registry");
        // …but the Arc we hold still works.
        let y = held.circuit.outputs()[0];
        assert!(held.session.verify(y, 11).verdict.is_no_violation());
    }

    #[test]
    fn parse_failures_are_classified() {
        let registry = CircuitRegistry::new(2);
        let err = registry
            .register("bad", "bench", "y = FROB(a)\n", 10)
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::InvalidNetlist);
        let err = registry.register("bad", "vhdl", TINY, 10).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    #[test]
    fn stats_and_hit_rate() {
        let registry = CircuitRegistry::new(2);
        assert_eq!(registry.stats().hit_rate(), None);
        registry.register("a", "bench", TINY, 10).unwrap(); // miss
        registry.lookup("a").unwrap(); // hit
        registry.lookup("a").unwrap(); // hit
        let _ = registry.lookup("zzz"); // miss
        let stats = registry.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hit_rate(), Some(0.5));
    }
}
