//! The content-hashed, LRU-bounded circuit registry.
//!
//! Each entry pairs a parsed [`Circuit`] with a shared
//! [`CheckSession`]`<'static>`: the expensive per-circuit analyses
//! (implication table, SCOAP, arrival times, dominators, base fixpoint)
//! are computed once per *content*, then reused by every request that
//! names the circuit. Entries are keyed by an FNV-1a hash of
//! `(format, delay, source)`, so re-registering byte-identical content —
//! even under a different name — is a cache hit that re-parses nothing.
//!
//! The registry is bounded: inserting beyond capacity evicts the
//! least-recently-used entry. Eviction only drops the registry's
//! reference; requests already holding the [`Arc<CircuitEntry>`] finish
//! normally and the entry is freed when the last one completes.

use crate::proto::{EditSpec, ErrorCode, ProtoError};
use ltt_core::{CheckSession, Completeness, ConeMode, VerifyConfig, VerifyReport};
use ltt_netlist::bench_format::parse_bench;
use ltt_netlist::verilog::parse_verilog;
use ltt_netlist::{Circuit, CircuitEdit, DelayInterval, NetId};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Per-check results cached on a [`CircuitEntry`] beyond this count are
/// dropped (insertion simply stops — the cache exists to make patch
/// re-verification cheap, not to be a complete memo table).
const RESULT_CACHE_CAP: usize = 4096;

fn fnv_fold(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Folds length-framed records into an FNV-1a state. The `[len][bytes]`
/// framing keeps record boundaries in the hash: concatenations that merely
/// move bytes across a boundary (`["a","bc"]` vs `["ab","c"]`) hash
/// differently, and folding records one at a time equals folding them all
/// at once — which is what makes a chain of `patch` requests hash to the
/// same id as one batched `patch` with the same edits.
fn fold_framed<'a>(mut hash: u64, records: impl IntoIterator<Item = &'a [u8]>) -> u64 {
    for record in records {
        let len = u32::try_from(record.len()).unwrap_or(u32::MAX);
        hash = fnv_fold(hash, &len.to_le_bytes());
        hash = fnv_fold(hash, record);
    }
    hash
}

/// Content hash of a registration: 64-bit FNV-1a over the format, the
/// per-gate delay, and the netlist source, rendered as 16 hex digits.
/// (A non-cryptographic hash is fine here: the registry is a cache, and a
/// collision's worst case is answering for the colliding circuit — the
/// same trust model as the netlist itself, which the client also supplies.)
pub fn content_id(format: &str, delay: u32, source: &str) -> String {
    let mut hash = FNV_OFFSET;
    hash = fnv_fold(hash, format.as_bytes());
    hash = fnv_fold(hash, &[0]);
    hash = fnv_fold(hash, &delay.to_le_bytes());
    hash = fnv_fold(hash, &[0]);
    hash = fnv_fold(hash, source.as_bytes());
    format!("{hash:016x}")
}

/// The canonical byte encoding of one edit for [`patched_id`]: a tag byte,
/// then every variable-length component length-prefixed.
fn edit_bytes(edit: &EditSpec) -> Vec<u8> {
    let mut out = Vec::new();
    // u64 length frames: a u32 frame would alias a name of length L with
    // one of length L + 2^32, making two distinct edits hash-equal.
    let push_str = |out: &mut Vec<u8>, s: &str| {
        out.extend_from_slice(&(s.len() as u64).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    };
    match edit {
        EditSpec::SetDelay { gate, min, max } => {
            out.push(1);
            push_str(&mut out, gate);
            out.extend_from_slice(&min.to_le_bytes());
            out.extend_from_slice(&max.to_le_bytes());
        }
        EditSpec::Rewire { gate, inputs } => {
            out.push(2);
            push_str(&mut out, gate);
            out.extend_from_slice(&(inputs.len() as u64).to_le_bytes());
            for input in inputs {
                push_str(&mut out, input);
            }
        }
    }
    out
}

/// The content id of a patched revision, computed **incrementally**: the
/// parent's id is parsed back into the 64-bit FNV state and the edits are
/// folded on top as length-framed records — the full netlist source is
/// never re-hashed. Folding is associative over the framing, so applying
/// edits one `patch` at a time yields the same id as one batched `patch`:
/// `patched_id(patched_id(p, [a]), [b]) == patched_id(p, [a, b])`.
pub fn patched_id(parent_id: &str, edits: &[EditSpec]) -> String {
    let state = u64::from_str_radix(parent_id, 16)
        .unwrap_or_else(|_| fnv_fold(FNV_OFFSET, parent_id.as_bytes()));
    let records: Vec<Vec<u8>> = edits.iter().map(edit_bytes).collect();
    let hash = fold_framed(state, records.iter().map(Vec::as_slice));
    format!("{hash:016x}")
}

/// The [`VerifyConfig`] every registry session runs under: the default
/// full pipeline with cone-sliced checking in `Auto` mode. All served
/// reports — and the local oracles the equivalence tests compare against —
/// must use this exact configuration: cone-sliced runs agree with the
/// legacy whole-circuit path on verdicts but not on effort counters, so
/// mixing configurations breaks bit-identity.
pub fn session_config() -> VerifyConfig {
    VerifyConfig {
        cone: ConeMode::Auto,
        ..VerifyConfig::default()
    }
}

/// One registered circuit: identity, parsed netlist, and the shared
/// prepared session every request against it reuses.
pub struct CircuitEntry {
    /// The content hash (the canonical registry key).
    pub id: String,
    /// The name it was registered under (an alias key; a later
    /// registration may rebind the name to different content).
    pub name: String,
    /// The parsed netlist.
    pub circuit: Arc<Circuit>,
    /// The shared check session (the [`session_config`] configuration).
    pub session: CheckSession<'static>,
    /// Exact per-check results already produced against this entry, keyed
    /// `(output, δ)`. Only [`Completeness::Exact`] reports are cached —
    /// budget-tripped reports depend on the request's budget, exact ones
    /// are the deterministic fixed answer regardless of it. A `patch`
    /// transplants the subset whose fanin cone the edit cannot reach.
    results: Mutex<HashMap<(NetId, i64), VerifyReport>>,
}

impl CircuitEntry {
    /// The cached exact report for `(output, delta)`, if any.
    pub fn cached_report(&self, output: NetId, delta: i64) -> Option<VerifyReport> {
        self.results
            .lock()
            .expect("result cache lock poisoned")
            .get(&(output, delta))
            .cloned()
    }

    /// Caches every exact report in `reports` (up to the cache cap).
    pub fn cache_reports<'a>(&self, reports: impl IntoIterator<Item = &'a VerifyReport>) {
        let mut cache = self.results.lock().expect("result cache lock poisoned");
        for report in reports {
            if cache.len() >= RESULT_CACHE_CAP {
                break;
            }
            if matches!(report.completeness, Completeness::Exact) {
                cache
                    .entry((report.output, report.delta))
                    .or_insert_with(|| report.clone());
            }
        }
    }

    /// The number of cached results (test and status visibility).
    pub fn cached_results(&self) -> usize {
        self.results
            .lock()
            .expect("result cache lock poisoned")
            .len()
    }
}

impl std::fmt::Debug for CircuitEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitEntry")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("nets", &self.circuit.num_nets())
            .finish()
    }
}

/// Registry occupancy and traffic counters (the `status` payload).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
    /// Lookups (and re-registrations) served from a resident entry.
    pub hits: u64,
    /// Lookups that found nothing / registrations that had to parse.
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
}

impl RegistryStats {
    /// Hits as a fraction of all lookups (`None` before any traffic).
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

struct Inner {
    /// Most-recently-used first.
    entries: VecDeque<Arc<CircuitEntry>>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded, thread-safe circuit cache (see the module docs).
///
/// # Examples
///
/// ```
/// use ltt_serve::CircuitRegistry;
///
/// let registry = CircuitRegistry::new(4);
/// let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
/// let (entry, cached) = registry.register("tiny", "bench", src, 10).unwrap();
/// assert!(!cached);
/// // Same content, different name: no re-parse, no re-prepare.
/// let (again, cached) = registry.register("tiny2", "bench", src, 10).unwrap();
/// assert!(cached);
/// assert_eq!(entry.id, again.id);
/// ```
pub struct CircuitRegistry {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl CircuitRegistry {
    /// A registry holding at most `capacity` circuits (minimum 1).
    pub fn new(capacity: usize) -> Self {
        CircuitRegistry {
            inner: Mutex::new(Inner {
                entries: VecDeque::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Registers a netlist: parses it (unless byte-identical content is
    /// already resident), builds the shared session, and returns the entry
    /// plus whether it was a cache hit. Parsing and session construction
    /// run *outside* the registry lock, so a slow parse never blocks
    /// concurrent lookups.
    pub fn register(
        &self,
        name: &str,
        format: &str,
        source: &str,
        delay: u32,
    ) -> Result<(Arc<CircuitEntry>, bool), ProtoError> {
        let id = content_id(format, delay, source);
        // `count_miss: false`: a cold registration counts one miss (in the
        // insert path below), not one per probe.
        if let Some(entry) = self.touch_with(|e| e.id == id, false) {
            return Ok((entry, true));
        }
        let circuit = parse_circuit(name, format, source, delay)?;
        let circuit = Arc::new(circuit);
        let entry = Arc::new(CircuitEntry {
            id: id.clone(),
            name: name.to_string(),
            session: CheckSession::new_shared(circuit.clone(), session_config()),
            circuit,
            results: Mutex::new(HashMap::new()),
        });
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        // Double-check: a racing registration of the same content wins if
        // it got here first — reuse its entry (and its warm analyses)
        // rather than shadowing it with ours.
        if let Some(pos) = inner.entries.iter().position(|e| e.id == id) {
            let existing = inner.entries.remove(pos).expect("position just found");
            inner.entries.push_front(existing.clone());
            inner.hits += 1;
            return Ok((existing, true));
        }
        inner.misses += 1;
        inner.entries.push_front(entry.clone());
        while inner.entries.len() > self.capacity {
            inner.entries.pop_back();
            inner.evictions += 1;
        }
        Ok((entry, false))
    }

    /// Looks up an entry by content id or by registered name (most
    /// recently used wins when several names collide) and marks it
    /// most-recently-used.
    pub fn lookup(&self, key: &str) -> Result<Arc<CircuitEntry>, ProtoError> {
        self.touch(|e| e.id == key || e.name == key).ok_or_else(|| {
            ProtoError::new(
                ErrorCode::UnknownCircuit,
                format!("no registered circuit `{key}` (register it, or it may have been evicted)"),
            )
        })
    }

    /// Applies ECO edits to the entry named by `key`, producing — and
    /// registering under the incrementally-derived [`patched_id`] — a new
    /// entry whose session is **rebased** from the parent's instead of
    /// prepared cold: analyses (and cached exact reports) for outputs
    /// whose fanin cone the edit cannot reach carry over untouched.
    ///
    /// Re-patching with the same edits is a cache hit on the patched id
    /// (`resident: true`): nothing is re-applied or re-verified.
    pub fn patch(
        &self,
        key: &str,
        name: Option<&str>,
        edits: &[EditSpec],
    ) -> Result<PatchOutcome, ProtoError> {
        let parent = self.lookup(key)?;
        let id = patched_id(&parent.id, edits);
        let structural = edits.iter().any(EditSpec::is_structural);
        if let Some(entry) = self.touch_with(|e| e.id == id, false) {
            return Ok(PatchOutcome {
                entry,
                resident: true,
                structural,
                dirty: Vec::new(),
                transplanted: 0,
            });
        }
        // Resolve name-addressed edits against the parent, apply, rebase.
        // All outside the registry lock, like `register`'s parse.
        let circuit_edits = resolve_edits(&parent.circuit, edits)?;
        let outcome = parent
            .circuit
            .apply_edit(&circuit_edits)
            .map_err(|e| ProtoError::new(ErrorCode::BadRequest, e.to_string()))?;
        let dirty_names: Vec<String> = outcome
            .dirty
            .iter()
            .map(|&n| parent.circuit.net(n).name().to_string())
            .collect();
        let edited = Arc::new(outcome.circuit);
        let session = parent
            .session
            .rebase(edited.clone(), &outcome.dirty, outcome.structural);
        // Transplant cached exact reports for outputs the edit provably
        // cannot influence: delay-only edit, non-degenerate parent base,
        // and a proper fanin cone disjoint from `dirty ∪ base_divergence`
        // (DESIGN.md §14). Such outputs re-verify bit-identically, so the
        // parent's answer *is* the patched circuit's answer.
        let mut results = HashMap::new();
        if !outcome.structural && !parent.session.base_contradictory() {
            let mut stale = outcome.dirty.clone();
            stale.extend(parent.session.base_divergence(&session));
            let clean: Vec<NetId> = parent
                .circuit
                .outputs()
                .iter()
                .copied()
                .filter(|&s| match parent.session.prepared().cone(s) {
                    Some(ca) => !ca.intersects(&stale),
                    None => stale.is_empty(),
                })
                .collect();
            if !clean.is_empty() {
                let parent_cache = parent.results.lock().expect("result cache lock poisoned");
                for (&(out, delta), report) in parent_cache.iter() {
                    if clean.contains(&out) {
                        results.insert((out, delta), report.clone());
                    }
                }
            }
        }
        let transplanted = results.len();
        let entry = Arc::new(CircuitEntry {
            id: id.clone(),
            // Without an explicit alias the patched entry answers to its
            // content id only — it must not shadow the parent's name.
            name: name.unwrap_or(&id).to_string(),
            session,
            circuit: edited,
            results: Mutex::new(results),
        });
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        if let Some(pos) = inner.entries.iter().position(|e| e.id == id) {
            let existing = inner.entries.remove(pos).expect("position just found");
            inner.entries.push_front(existing.clone());
            inner.hits += 1;
            return Ok(PatchOutcome {
                entry: existing,
                resident: true,
                structural,
                dirty: dirty_names,
                transplanted: 0,
            });
        }
        inner.misses += 1;
        inner.entries.push_front(entry.clone());
        while inner.entries.len() > self.capacity {
            inner.entries.pop_back();
            inner.evictions += 1;
        }
        drop(inner);
        Ok(PatchOutcome {
            entry,
            resident: false,
            structural,
            dirty: dirty_names,
            transplanted,
        })
    }

    /// Finds the first (most-recently-used) entry matching `pred`, moves
    /// it to the front, and counts the hit/miss.
    fn touch(&self, pred: impl Fn(&CircuitEntry) -> bool) -> Option<Arc<CircuitEntry>> {
        self.touch_with(pred, true)
    }

    /// [`CircuitRegistry::touch`] with the miss accounting optional (a
    /// registration's pre-probe must not count a miss the insert path will
    /// count again).
    fn touch_with(
        &self,
        pred: impl Fn(&CircuitEntry) -> bool,
        count_miss: bool,
    ) -> Option<Arc<CircuitEntry>> {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        match inner.entries.iter().position(|e| pred(e)) {
            Some(pos) => {
                let entry = inner.entries.remove(pos).expect("position just found");
                inner.entries.push_front(entry.clone());
                inner.hits += 1;
                Some(entry)
            }
            None => {
                if count_miss {
                    inner.misses += 1;
                }
                None
            }
        }
    }

    /// A snapshot of the registry counters.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().expect("registry lock poisoned");
        RegistryStats {
            entries: inner.entries.len(),
            capacity: self.capacity,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }
}

/// What [`CircuitRegistry::patch`] produced.
#[derive(Debug)]
pub struct PatchOutcome {
    /// The patched revision's registry entry.
    pub entry: Arc<CircuitEntry>,
    /// `true` when the patched id was already registered — the whole
    /// apply/rebase pipeline was skipped (and `dirty`/`transplanted` are
    /// not recomputed).
    pub resident: bool,
    /// Whether any edit changed connectivity (a rewire).
    pub structural: bool,
    /// Names of the nets whose constraints the edits changed.
    pub dirty: Vec<String>,
    /// Cached exact reports carried over from the parent entry.
    pub transplanted: usize,
}

/// Resolves name-addressed [`EditSpec`]s into id-addressed
/// [`CircuitEdit`]s against a concrete circuit. A gate is named by the net
/// it drives; naming a primary input (no driver) or an unknown net is a
/// `bad_request`.
fn resolve_edits(circuit: &Circuit, edits: &[EditSpec]) -> Result<Vec<CircuitEdit>, ProtoError> {
    let bad = |m: String| ProtoError::new(ErrorCode::BadRequest, m);
    let gate_by_name = |name: &str| {
        let net = circuit
            .net_by_name(name)
            .ok_or_else(|| bad(format!("no net named `{name}`")))?;
        circuit.net(net).driver().ok_or_else(|| {
            bad(format!(
                "net `{name}` is a primary input, not a gate output"
            ))
        })
    };
    edits
        .iter()
        .map(|edit| match edit {
            EditSpec::SetDelay { gate, min, max } => Ok(CircuitEdit::SetDelay {
                gate: gate_by_name(gate)?,
                delay: DelayInterval::new(*min, *max),
            }),
            EditSpec::Rewire { gate, inputs } => Ok(CircuitEdit::Rewire {
                gate: gate_by_name(gate)?,
                inputs: inputs
                    .iter()
                    .map(|i| {
                        circuit
                            .net_by_name(i)
                            .ok_or_else(|| bad(format!("no net named `{i}`")))
                    })
                    .collect::<Result<Vec<NetId>, ProtoError>>()?,
            }),
        })
        .collect()
}

fn parse_circuit(
    name: &str,
    format: &str,
    source: &str,
    delay: u32,
) -> Result<Circuit, ProtoError> {
    let delay = DelayInterval::fixed(delay);
    let invalid = |e: String| ProtoError::new(ErrorCode::InvalidNetlist, e);
    match format {
        "bench" => parse_bench(name, source, delay).map_err(|e| invalid(e.to_string())),
        "verilog" => parse_verilog(source, delay).map_err(|e| invalid(e.to_string())),
        other => Err(ProtoError::new(
            ErrorCode::BadRequest,
            format!("unknown format `{other}`"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
    const TINY2: &str = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
    const TINY3: &str = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";

    #[test]
    fn content_id_is_stable_and_discriminating() {
        let a = content_id("bench", 10, TINY);
        assert_eq!(a, content_id("bench", 10, TINY));
        assert_eq!(a.len(), 16);
        assert_ne!(a, content_id("bench", 10, TINY2));
        assert_ne!(a, content_id("bench", 11, TINY));
        assert_ne!(a, content_id("verilog", 10, TINY));
    }

    #[test]
    fn edit_records_use_u64_length_frames() {
        // Regression: a u32 length frame would alias a gate name of
        // length L with one of length L + 2^32 in `patched_id`. Pin the
        // full canonical layout so the frame width can't silently shrink.
        let bytes = edit_bytes(&EditSpec::SetDelay {
            gate: "g".to_string(),
            min: 3,
            max: 7,
        });
        let mut expect = vec![1u8];
        expect.extend_from_slice(&1u64.to_le_bytes());
        expect.push(b'g');
        expect.extend_from_slice(&3u32.to_le_bytes());
        expect.extend_from_slice(&7u32.to_le_bytes());
        assert_eq!(bytes, expect);

        let bytes = edit_bytes(&EditSpec::Rewire {
            gate: "gate".to_string(),
            inputs: vec!["a".to_string(), "bb".to_string()],
        });
        let mut expect = vec![2u8];
        expect.extend_from_slice(&4u64.to_le_bytes());
        expect.extend_from_slice(b"gate");
        expect.extend_from_slice(&2u64.to_le_bytes());
        expect.extend_from_slice(&1u64.to_le_bytes());
        expect.push(b'a');
        expect.extend_from_slice(&2u64.to_le_bytes());
        expect.extend_from_slice(b"bb");
        assert_eq!(bytes, expect);
    }

    #[test]
    fn register_then_lookup_by_id_and_name() {
        let registry = CircuitRegistry::new(4);
        let (entry, cached) = registry.register("tiny", "bench", TINY, 10).unwrap();
        assert!(!cached);
        assert_eq!(registry.lookup(&entry.id).unwrap().id, entry.id);
        assert_eq!(registry.lookup("tiny").unwrap().id, entry.id);
        assert!(registry.lookup("nope").is_err());
        assert_eq!(
            registry.lookup("nope").unwrap_err().code,
            ErrorCode::UnknownCircuit
        );
    }

    #[test]
    fn identical_content_is_a_hit_even_under_a_new_name() {
        let registry = CircuitRegistry::new(4);
        let (a, _) = registry.register("one", "bench", TINY, 10).unwrap();
        let (b, cached) = registry.register("two", "bench", TINY, 10).unwrap();
        assert!(cached);
        assert!(Arc::ptr_eq(&a, &b));
        // The alias name of the first registration still resolves; the
        // second name does not create a second entry.
        assert_eq!(registry.stats().entries, 1);
    }

    #[test]
    fn sessions_are_usable_and_shared() {
        let registry = CircuitRegistry::new(4);
        let (entry, _) = registry.register("tiny", "bench", TINY, 10).unwrap();
        let y = entry.circuit.outputs()[0];
        // NAND of two inputs: exact delay is one gate.
        assert!(entry.session.verify(y, 11).verdict.is_no_violation());
        assert!(entry.session.verify(y, 10).verdict.is_violation());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let registry = CircuitRegistry::new(2);
        registry.register("a", "bench", TINY, 10).unwrap();
        registry.register("b", "bench", TINY2, 10).unwrap();
        // Touch `a` so `b` is now coldest.
        registry.lookup("a").unwrap();
        registry.register("c", "bench", TINY3, 10).unwrap();
        assert!(registry.lookup("a").is_ok());
        assert!(registry.lookup("c").is_ok());
        assert!(registry.lookup("b").is_err());
        let stats = registry.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn evicted_entries_survive_while_held() {
        let registry = CircuitRegistry::new(1);
        let (held, _) = registry.register("a", "bench", TINY, 10).unwrap();
        registry.register("b", "bench", TINY2, 10).unwrap();
        assert!(registry.lookup("a").is_err(), "evicted from the registry");
        // …but the Arc we hold still works.
        let y = held.circuit.outputs()[0];
        assert!(held.session.verify(y, 11).verdict.is_no_violation());
    }

    #[test]
    fn parse_failures_are_classified() {
        let registry = CircuitRegistry::new(2);
        let err = registry
            .register("bad", "bench", "y = FROB(a)\n", 10)
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::InvalidNetlist);
        let err = registry.register("bad", "vhdl", TINY, 10).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    fn set_delay(gate: &str, d: u32) -> EditSpec {
        EditSpec::SetDelay {
            gate: gate.into(),
            min: d,
            max: d,
        }
    }

    #[test]
    fn framed_fold_keeps_record_boundaries() {
        // The collision the length framing exists to prevent: the same
        // bytes split differently across records must hash differently.
        // An unframed fold would make these four streams identical.
        let s = FNV_OFFSET;
        let ab_c = fold_framed(s, [b"ab".as_slice(), b"c".as_slice()]);
        let a_bc = fold_framed(s, [b"a".as_slice(), b"bc".as_slice()]);
        let abc = fold_framed(s, [b"abc".as_slice()]);
        let a_b_c = fold_framed(s, [b"a".as_slice(), b"b".as_slice(), b"c".as_slice()]);
        assert_ne!(ab_c, a_bc);
        assert_ne!(ab_c, abc);
        assert_ne!(a_bc, abc);
        assert_ne!(a_b_c, abc);
        // And the fold is associative over records: folding a prefix, then
        // the rest, equals folding everything at once.
        let prefix = fold_framed(s, [b"ab".as_slice()]);
        assert_eq!(fold_framed(prefix, [b"c".as_slice()]), ab_c);
    }

    #[test]
    fn patched_id_is_incremental_and_discriminating() {
        let root = content_id("bench", 10, TINY);
        let e1 = set_delay("g1", 12);
        let e2 = set_delay("g2", 7);
        // Deterministic, 16 hex digits, distinct from the parent.
        let one = std::slice::from_ref(&e1);
        let other = std::slice::from_ref(&e2);
        let p = patched_id(&root, one);
        assert_eq!(p, patched_id(&root, one));
        assert_eq!(p.len(), 16);
        assert_ne!(p, root);
        // Chaining one edit at a time equals batching them.
        assert_eq!(
            patched_id(&patched_id(&root, one), other),
            patched_id(&root, &[e1.clone(), e2.clone()])
        );
        // Different edits, different ids; order matters (edits apply in
        // sequence, so [a,b] and [b,a] are different revisions).
        assert_ne!(patched_id(&root, one), patched_id(&root, other));
        assert_ne!(
            patched_id(&root, &[e1.clone(), e2.clone()]),
            patched_id(&root, &[e2, e1])
        );
        // Delay vs rewire on the same gate never collide (distinct tags),
        // and the gate/input split is framed: ("ab" -> [c]) != ("a" -> [bc]).
        let rw = |g: &str, i: &str| EditSpec::Rewire {
            gate: g.into(),
            inputs: vec![i.into()],
        };
        assert_ne!(
            patched_id(&root, &[set_delay("g1", 1)]),
            patched_id(&root, &[rw("g1", "a")])
        );
        assert_ne!(
            patched_id(&root, &[rw("ab", "c")]),
            patched_id(&root, &[rw("a", "bc")])
        );
    }

    #[test]
    fn patch_registers_a_rebased_revision() {
        let registry = CircuitRegistry::new(8);
        let (parent, _) = registry.register("tiny", "bench", TINY, 10).unwrap();
        let y = parent.circuit.outputs()[0];
        // Warm the parent's result cache with an exact answer.
        let safe = parent.session.verify(y, 11);
        parent.cache_reports([&safe]);
        let outcome = registry.patch("tiny", None, &[set_delay("y", 20)]).unwrap();
        assert!(!outcome.resident);
        assert!(!outcome.structural);
        assert_eq!(outcome.dirty, vec!["y".to_string()]);
        // The single output's cone is the whole (dirty) circuit: nothing
        // transplants, and the patched session sees the new delay.
        assert_eq!(outcome.transplanted, 0);
        assert!(outcome.entry.session.verify(y, 20).verdict.is_violation());
        assert!(outcome
            .entry
            .session
            .verify(y, 21)
            .verdict
            .is_no_violation());
        // The patched id resolves; the parent's name still names the parent.
        assert_eq!(
            registry.lookup(&outcome.entry.id).unwrap().id,
            outcome.entry.id
        );
        assert_eq!(registry.lookup("tiny").unwrap().id, parent.id);
        // Re-patching with the same edits is a resident hit.
        let again = registry.patch("tiny", None, &[set_delay("y", 20)]).unwrap();
        assert!(again.resident);
        assert!(Arc::ptr_eq(&again.entry, &outcome.entry));
        // Unknown gate / primary input are bad requests; unknown circuit
        // keeps its own code.
        assert_eq!(
            registry
                .patch("tiny", None, &[set_delay("zzz", 1)])
                .unwrap_err()
                .code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            registry
                .patch("tiny", None, &[set_delay("a", 1)])
                .unwrap_err()
                .code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            registry
                .patch("nope", None, &[set_delay("y", 1)])
                .unwrap_err()
                .code,
            ErrorCode::UnknownCircuit
        );
    }

    #[test]
    fn patch_transplants_reports_for_untouched_cones() {
        // Two independent cones: y = NAND(a,b), z = NOT(c). Editing y's
        // gate must carry z's cached exact report over to the patched
        // entry — and leave y's behind.
        let two =
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\ny = NAND(a, b)\nz = NOT(c)\n";
        let registry = CircuitRegistry::new(8);
        let (parent, _) = registry.register("two", "bench", two, 10).unwrap();
        let y = parent.circuit.outputs()[0];
        let z = parent.circuit.outputs()[1];
        let ry = parent.session.verify(y, 11);
        let rz = parent.session.verify(z, 11);
        parent.cache_reports([&ry, &rz]);
        assert_eq!(parent.cached_results(), 2);
        let outcome = registry
            .patch("two", Some("two-v2"), &[set_delay("y", 25)])
            .unwrap();
        assert_eq!(outcome.transplanted, 1);
        let cached = outcome.entry.cached_report(z, 11).expect("z transplanted");
        assert_eq!(cached.verdict, rz.verdict);
        assert_eq!(cached.effort, rz.effort);
        assert!(outcome.entry.cached_report(y, 11).is_none());
        // The transplanted report is bit-identical to a fresh run on the
        // patched entry (the §14 contract the transplant leans on).
        let fresh = outcome.entry.session.verify(z, 11);
        assert_eq!(cached.verdict, fresh.verdict);
        assert_eq!(cached.effort, fresh.effort);
        assert_eq!(cached.backtracks, fresh.backtracks);
        // The alias name resolves to the patched revision.
        assert_eq!(registry.lookup("two-v2").unwrap().id, outcome.entry.id);
        // A structural rewire transplants nothing.
        let rewired = registry
            .patch(
                "two",
                None,
                &[EditSpec::Rewire {
                    gate: "y".into(),
                    inputs: vec!["b".into(), "a".into()],
                }],
            )
            .unwrap();
        assert!(rewired.structural);
        assert_eq!(rewired.transplanted, 0);
    }

    #[test]
    fn stats_and_hit_rate() {
        let registry = CircuitRegistry::new(2);
        assert_eq!(registry.stats().hit_rate(), None);
        registry.register("a", "bench", TINY, 10).unwrap(); // miss
        registry.lookup("a").unwrap(); // hit
        registry.lookup("a").unwrap(); // hit
        let _ = registry.lookup("zzz"); // miss
        let stats = registry.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hit_rate(), Some(0.5));
    }
}
