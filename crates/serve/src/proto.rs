//! The request/response grammar of the serving protocol.
//!
//! One request object per line, one response object per line. Every
//! request has an `"op"` field naming the operation and may carry an
//! `"id"` (any JSON value) that the server echoes back verbatim in the
//! response — the client-side correlation handle for pipelined requests.
//!
//! Operations:
//!
//! ```text
//! {"op":"register","name":N,"format":"bench"|"verilog","source":S,"delay":D?}
//! {"op":"check","circuit":C,"output":O,"delta":δ,"opts":{..}?}
//! {"op":"batch_check","circuit":C,"delta":δ,"opts":{..}?}            # every output
//! {"op":"batch_check","circuit":C,"checks":[{"output":O,"delta":δ},..],"opts":{..}?}
//! {"op":"delay","circuit":C,"output":O?,"opts":{..}?}                # omit O: every output
//! {"op":"patch","circuit":C,"name":N?,"edits":[E,..],"checks":[..]?,"opts":{..}?}
//! {"op":"patch","circuit":C,"name":N?,"edits":[E,..],"delta":δ,"opts":{..}?}
//! {"op":"status"}
//! {"op":"metrics"}
//! {"op":"shutdown"}
//! ```
//!
//! `circuit` names a registry entry either by the content hash `register`
//! returned or by the `name` it was registered under. The optional
//! `opts` object carries per-request execution controls ([`RunOpts`]).
//!
//! Every response is `{"ok":true,...}` or
//! `{"ok":false,"error":{"code":K,"message":M}}` with `K` one of the
//! [`ErrorCode`] strings. Success payloads embed check reports in the
//! shape produced by [`report_json`] — and because every request runs
//! through the same deterministic batch engine as the CLI, those reports
//! are bit-identical to an in-process serial run.

use crate::wire::Json;
use ltt_core::{
    BatchCheck, BatchOutcome, Completeness, DelaySearch, Engine, Stage, Verdict, VerifyReport,
};

/// Machine-readable failure classes of the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not valid JSON or not a valid request shape.
    BadRequest,
    /// `circuit` names no registry entry (never registered, or evicted).
    UnknownCircuit,
    /// `output` names no primary output of the circuit.
    UnknownOutput,
    /// `register` received a netlist that failed to parse.
    InvalidNetlist,
    /// Admission control refused the request: the work queue is full.
    /// Retry later — nothing was enqueued.
    Overloaded,
    /// The server is draining after a `shutdown` request; no new work is
    /// admitted.
    ShuttingDown,
    /// The request line exceeded the server's line-length cap. The rest of
    /// the oversize line is discarded; the connection stays usable.
    TooLarge,
    /// A client-side or router-side timeout expired before the peer
    /// answered.
    Timeout,
    /// The router exhausted every candidate backend (connect refused,
    /// timeouts, open breakers) without obtaining a reply. Nothing may
    /// have executed, or an executed reply was lost — the request is safe
    /// to retry.
    Unavailable,
    /// The server failed internally (a panicking worker, a lost reply).
    Internal,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownCircuit => "unknown_circuit",
            ErrorCode::UnknownOutput => "unknown_output",
            ErrorCode::InvalidNetlist => "invalid_netlist",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A structured protocol failure (the payload of an `"ok":false` reply).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError {
    /// The failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    /// A new error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ProtoError {
            code,
            message: message.into(),
        }
    }

    fn bad(message: impl Into<String>) -> Self {
        ProtoError::new(ErrorCode::BadRequest, message)
    }
}

/// Per-request execution controls, all optional on the wire.
///
/// `jobs` defaults to 1: a server interleaves many requests, so the
/// parallelism budget belongs to the worker pool, not to any single
/// request — and `jobs: 1` is the configuration whose reports the
/// determinism contract is stated against (higher values produce the
/// same reports anyway; see [`BatchRunner`](ltt_core::BatchRunner)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOpts {
    /// Worker threads for this one request's batch (default 1).
    pub jobs: usize,
    /// Whole-request deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Extra case-analysis backtrack cap (min-combined with the session
    /// config's own).
    pub max_backtracks: Option<u64>,
    /// Cancel the rest of the batch once one violation is found.
    pub fail_fast: bool,
    /// Verification backend: `"narrow"` (default), `"sat"`, or
    /// `"hybrid"` (narrowing with SAT fallback on budget exhaustion).
    pub engine: Engine,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            jobs: 1,
            deadline_ms: None,
            max_backtracks: None,
            fail_fast: false,
            engine: Engine::Narrow,
        }
    }
}

impl RunOpts {
    fn parse(json: Option<&Json>) -> Result<RunOpts, ProtoError> {
        let mut opts = RunOpts::default();
        let Some(json) = json else {
            return Ok(opts);
        };
        if !matches!(json, Json::Obj(_)) {
            return Err(ProtoError::bad("`opts` must be an object"));
        }
        if let Some(j) = json.get("jobs") {
            opts.jobs = j
                .as_u64()
                .ok_or_else(|| ProtoError::bad("`opts.jobs` must be a non-negative integer"))?
                .min(256) as usize;
        }
        if let Some(d) = json.get("deadline_ms") {
            opts.deadline_ms = Some(
                d.as_u64()
                    .ok_or_else(|| ProtoError::bad("`opts.deadline_ms` must be non-negative"))?,
            );
        }
        if let Some(b) = json.get("max_backtracks") {
            opts.max_backtracks =
                Some(b.as_u64().ok_or_else(|| {
                    ProtoError::bad("`opts.max_backtracks` must be non-negative")
                })?);
        }
        if let Some(f) = json.get("fail_fast") {
            opts.fail_fast = f
                .as_bool()
                .ok_or_else(|| ProtoError::bad("`opts.fail_fast` must be a boolean"))?;
        }
        if let Some(e) = json.get("engine") {
            let name = e
                .as_str()
                .ok_or_else(|| ProtoError::bad("`opts.engine` must be a string"))?;
            opts.engine = Engine::parse(name).ok_or_else(|| {
                ProtoError::bad("`opts.engine` must be `narrow`, `sat`, or `hybrid`")
            })?;
        }
        Ok(opts)
    }
}

/// One ECO edit inside a `patch` request. Gates are addressed by the name
/// of the net they drive (the `G = NAND(..)` left-hand side); resolution
/// happens at execution time, like output names in [`CheckSet`].
///
/// Wire shapes: `{"gate":G,"delay":D}` or `{"gate":G,"delay":[LO,HI]}`
/// (delay re-annotation) and `{"gate":G,"inputs":[A,B,..]}` (rewire).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditSpec {
    /// Re-annotate a gate's delay interval (`min == max` for fixed).
    SetDelay {
        /// Output-net name of the gate to edit.
        gate: String,
        /// New minimum delay.
        min: u32,
        /// New maximum delay (`>= min`, enforced at parse time).
        max: u32,
    },
    /// Reconnect a gate's input list (same arity not required, but the
    /// executor rejects empty lists and unknown nets).
    Rewire {
        /// Output-net name of the gate to edit.
        gate: String,
        /// New input-net names, in order.
        inputs: Vec<String>,
    },
}

impl EditSpec {
    /// Whether this edit changes connectivity (a rewire) rather than just
    /// timing annotations.
    pub fn is_structural(&self) -> bool {
        matches!(self, EditSpec::Rewire { .. })
    }

    /// The canonical wire object for this edit — used by the router to
    /// replay patch chains verbatim onto a failed-over backend.
    pub fn to_json(&self) -> Json {
        match self {
            EditSpec::SetDelay { gate, min, max } => Json::obj([
                ("gate", Json::str(gate.clone())),
                (
                    "delay",
                    if min == max {
                        Json::Int(i64::from(*min))
                    } else {
                        Json::Arr(vec![Json::Int(i64::from(*min)), Json::Int(i64::from(*max))])
                    },
                ),
            ]),
            EditSpec::Rewire { gate, inputs } => Json::obj([
                ("gate", Json::str(gate.clone())),
                (
                    "inputs",
                    Json::Arr(inputs.iter().map(|i| Json::str(i.clone())).collect()),
                ),
            ]),
        }
    }

    fn parse(item: &Json) -> Result<EditSpec, ProtoError> {
        let gate = required_str(item, "gate")?;
        match (item.get("delay"), item.get("inputs")) {
            (Some(d), None) => {
                let small = |j: &Json| j.as_u64().and_then(|v| u32::try_from(v).ok());
                let (min, max) = match d {
                    Json::Arr(pair) if pair.len() == 2 => {
                        let lo = small(&pair[0]);
                        let hi = small(&pair[1]);
                        match (lo, hi) {
                            (Some(lo), Some(hi)) if lo <= hi => (lo, hi),
                            _ => {
                                return Err(ProtoError::bad(
                                    "`delay` interval must be [lo, hi] with 0 <= lo <= hi",
                                ))
                            }
                        }
                    }
                    other => {
                        let d = small(other).ok_or_else(|| {
                            ProtoError::bad("`delay` must be an integer or [lo, hi]")
                        })?;
                        (d, d)
                    }
                };
                Ok(EditSpec::SetDelay { gate, min, max })
            }
            (None, Some(list)) => {
                let items = list
                    .as_array()
                    .ok_or_else(|| ProtoError::bad("`inputs` must be an array of net names"))?;
                let mut inputs = Vec::with_capacity(items.len());
                for i in items {
                    inputs.push(
                        i.as_str()
                            .ok_or_else(|| {
                                ProtoError::bad("`inputs` must be an array of net names")
                            })?
                            .to_string(),
                    );
                }
                if inputs.is_empty() {
                    return Err(ProtoError::bad("`inputs` must not be empty"));
                }
                Ok(EditSpec::Rewire { gate, inputs })
            }
            _ => Err(ProtoError::bad(
                "each edit needs exactly one of `delay` or `inputs`",
            )),
        }
    }
}

/// The work a request names: one `(output, δ)` pair or every output at one
/// δ. Outputs are named; resolution against the circuit happens at
/// execution time (the registry entry is not in scope while parsing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckSet {
    /// Explicit `(output name, δ)` pairs, in request order.
    Explicit(Vec<(String, i64)>),
    /// Every primary output at one δ (the Table 1 semantics).
    AllOutputs(i64),
}

/// A parsed request body.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestBody {
    /// Upload a netlist into the circuit registry.
    Register {
        /// Name to register under (also a lookup alias).
        name: String,
        /// `"bench"` or `"verilog"`.
        format: String,
        /// The netlist text.
        source: String,
        /// Per-gate delay when the format carries none (default 10).
        delay: u32,
    },
    /// One timing check `(output, δ)`.
    Check {
        /// Registry key (content hash or registered name).
        circuit: String,
        /// Primary-output name.
        output: String,
        /// The delay bound δ.
        delta: i64,
        /// Execution controls.
        opts: RunOpts,
    },
    /// A batch of checks against one circuit.
    BatchCheck {
        /// Registry key.
        circuit: String,
        /// The checks to run.
        checks: CheckSet,
        /// Execution controls.
        opts: RunOpts,
    },
    /// Exact-delay search on one output (or all, when `output` is `None`).
    Delay {
        /// Registry key.
        circuit: String,
        /// Primary-output name; `None` means every output.
        output: Option<String>,
        /// Execution controls.
        opts: RunOpts,
    },
    /// Apply ECO edits to a registered circuit, producing (and
    /// registering) a patched revision whose session is rebased from the
    /// parent's — per-output analyses and cached reports for outputs whose
    /// fanin cone the edit cannot reach are transplanted instead of
    /// recomputed. Optionally runs checks against the patched revision in
    /// the same request.
    Patch {
        /// Registry key of the circuit to edit (content hash or name).
        circuit: String,
        /// Optional alias to register the patched revision under.
        name: Option<String>,
        /// The edits, applied atomically in order.
        edits: Vec<EditSpec>,
        /// Checks to run against the patched revision (optional).
        checks: Option<CheckSet>,
        /// Execution controls.
        opts: RunOpts,
    },
    /// Server counters snapshot.
    Status,
    /// The same counters in Prometheus text exposition format (plus the
    /// request-latency histogram), wrapped in a JSON envelope.
    Metrics,
    /// Begin graceful drain: finish queued and in-flight work, refuse new
    /// work, then exit.
    Shutdown,
}

/// One parsed request: the body plus the client's correlation `id` (echoed
/// verbatim in the response).
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// The client's correlation handle, if any.
    pub id: Option<Json>,
    /// The operation.
    pub body: RequestBody,
}

impl Request {
    /// Parses one request line (already decoded to [`Json`]).
    pub fn parse(json: &Json) -> Result<Request, ProtoError> {
        if !matches!(json, Json::Obj(_)) {
            return Err(ProtoError::bad("request must be a JSON object"));
        }
        let id = json.get("id").cloned();
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::bad("missing string field `op`"))?;
        let body = match op {
            "register" => RequestBody::Register {
                name: required_str(json, "name")?,
                format: match json.get("format").map(|f| f.as_str()) {
                    None => "bench".to_string(),
                    Some(Some(f @ ("bench" | "verilog"))) => f.to_string(),
                    Some(_) => {
                        return Err(ProtoError::bad("`format` must be \"bench\" or \"verilog\""))
                    }
                },
                source: required_str(json, "source")?,
                delay: match json.get("delay") {
                    None => 10,
                    Some(d) => d
                        .as_u64()
                        .and_then(|d| u32::try_from(d).ok())
                        .ok_or_else(|| ProtoError::bad("`delay` must be a small integer"))?,
                },
            },
            "check" => RequestBody::Check {
                circuit: required_str(json, "circuit")?,
                output: required_str(json, "output")?,
                delta: required_i64(json, "delta")?,
                opts: RunOpts::parse(json.get("opts"))?,
            },
            "batch_check" => {
                let checks = match (json.get("checks"), json.get("delta")) {
                    (Some(list), None) => {
                        let items = list
                            .as_array()
                            .ok_or_else(|| ProtoError::bad("`checks` must be an array"))?;
                        let mut pairs = Vec::with_capacity(items.len());
                        for item in items {
                            pairs.push((
                                required_str(item, "output")?,
                                required_i64(item, "delta")?,
                            ));
                        }
                        if pairs.is_empty() {
                            return Err(ProtoError::bad("`checks` must not be empty"));
                        }
                        CheckSet::Explicit(pairs)
                    }
                    (None, Some(_)) => CheckSet::AllOutputs(required_i64(json, "delta")?),
                    _ => {
                        return Err(ProtoError::bad(
                            "`batch_check` needs exactly one of `checks` or `delta`",
                        ))
                    }
                };
                RequestBody::BatchCheck {
                    circuit: required_str(json, "circuit")?,
                    checks,
                    opts: RunOpts::parse(json.get("opts"))?,
                }
            }
            "delay" => RequestBody::Delay {
                circuit: required_str(json, "circuit")?,
                output: match json.get("output") {
                    None => None,
                    Some(o) => Some(
                        o.as_str()
                            .ok_or_else(|| ProtoError::bad("`output` must be a string"))?
                            .to_string(),
                    ),
                },
                opts: RunOpts::parse(json.get("opts"))?,
            },
            "patch" => {
                let list = json
                    .get("edits")
                    .and_then(Json::as_array)
                    .ok_or_else(|| ProtoError::bad("`patch` needs an `edits` array"))?;
                let mut edits = Vec::with_capacity(list.len());
                for item in list {
                    edits.push(EditSpec::parse(item)?);
                }
                if edits.is_empty() {
                    return Err(ProtoError::bad("`edits` must not be empty"));
                }
                let checks = match (json.get("checks"), json.get("delta")) {
                    (None, None) => None,
                    (Some(list), None) => {
                        let items = list
                            .as_array()
                            .ok_or_else(|| ProtoError::bad("`checks` must be an array"))?;
                        let mut pairs = Vec::with_capacity(items.len());
                        for item in items {
                            pairs.push((
                                required_str(item, "output")?,
                                required_i64(item, "delta")?,
                            ));
                        }
                        if pairs.is_empty() {
                            return Err(ProtoError::bad("`checks` must not be empty"));
                        }
                        Some(CheckSet::Explicit(pairs))
                    }
                    (None, Some(_)) => Some(CheckSet::AllOutputs(required_i64(json, "delta")?)),
                    _ => {
                        return Err(ProtoError::bad(
                            "`patch` takes at most one of `checks` or `delta`",
                        ))
                    }
                };
                RequestBody::Patch {
                    circuit: required_str(json, "circuit")?,
                    name: match json.get("name") {
                        None => None,
                        Some(n) => Some(
                            n.as_str()
                                .ok_or_else(|| ProtoError::bad("`name` must be a string"))?
                                .to_string(),
                        ),
                    },
                    edits,
                    checks,
                    opts: RunOpts::parse(json.get("opts"))?,
                }
            }
            "status" => RequestBody::Status,
            "metrics" => RequestBody::Metrics,
            "shutdown" => RequestBody::Shutdown,
            other => return Err(ProtoError::bad(format!("unknown op `{other}`"))),
        };
        Ok(Request { id, body })
    }
}

fn required_str(json: &Json, field: &str) -> Result<String, ProtoError> {
    json.get(field)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtoError::bad(format!("missing string field `{field}`")))
}

fn required_i64(json: &Json, field: &str) -> Result<i64, ProtoError> {
    json.get(field)
        .and_then(Json::as_i64)
        .ok_or_else(|| ProtoError::bad(format!("missing integer field `{field}`")))
}

/// Wraps a success payload: sets `"ok":true`, prepends `"op"`, echoes `id`.
pub fn ok_response(op: &str, id: Option<&Json>, mut fields: Vec<(String, Json)>) -> Json {
    let mut obj = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("op".to_string(), Json::str(op)),
    ];
    if let Some(id) = id {
        obj.push(("id".to_string(), id.clone()));
    }
    obj.append(&mut fields);
    Json::Obj(obj)
}

/// An `"ok":false` reply carrying the structured error, echoing `id`.
pub fn error_response(id: Option<&Json>, error: &ProtoError) -> Json {
    let mut obj = vec![("ok".to_string(), Json::Bool(false))];
    if let Some(id) = id {
        obj.push(("id".to_string(), id.clone()));
    }
    obj.push((
        "error".to_string(),
        Json::obj([
            ("code", Json::str(error.code.as_str())),
            ("message", Json::str(error.message.clone())),
        ]),
    ));
    Json::Obj(obj)
}

/// A primary-input vector as a bitstring in input-declaration order
/// (`"10110"`), matching the CLI's `--v1`/`--v2` spelling.
pub fn vector_bits(vector: &[bool]) -> String {
    vector.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

fn stage_str(stage: Stage) -> &'static str {
    match stage {
        Stage::Narrowing => "narrowing",
        Stage::Dominators => "dominators",
        Stage::StemCorrelation => "stem_correlation",
        Stage::CaseAnalysis => "case_analysis",
        Stage::Sat => "sat",
    }
}

/// Serializes one check report. The verdict spelling matches Table 1's
/// vocabulary: `"no_violation"` (N), `"violation"` (V), `"possible"` (P),
/// `"abandoned"` (A).
pub fn report_json(report: &VerifyReport, output_name: &str) -> Json {
    let mut fields = vec![
        ("output", Json::str(output_name)),
        ("delta", Json::Int(report.delta)),
    ];
    match &report.verdict {
        Verdict::NoViolation { stage } => {
            fields.push(("verdict", Json::str("no_violation")));
            fields.push(("stage", Json::str(stage_str(*stage))));
        }
        Verdict::Violation { vector } => {
            fields.push(("verdict", Json::str("violation")));
            fields.push(("vector", Json::str(vector_bits(vector))));
        }
        Verdict::Possible => fields.push(("verdict", Json::str("possible"))),
        Verdict::Abandoned => fields.push(("verdict", Json::str("abandoned"))),
    }
    match &report.completeness {
        Completeness::Exact => fields.push(("exact", Json::Bool(true))),
        Completeness::BudgetExhausted { stage, reason } => {
            fields.push(("exact", Json::Bool(false)));
            fields.push(("tripped_stage", Json::str(stage_str(*stage))));
            fields.push((
                "trip_reason",
                Json::str(format!("{reason:?}").to_lowercase()),
            ));
        }
    }
    fields.push(("backtracks", int_u64(report.backtracks)));
    fields.push(("elapsed_us", int_u64(micros_u64(report.elapsed))));
    fields.push((
        "stage_us",
        Json::obj([
            (
                "narrowing",
                int_u64(micros_u64(report.stage_times.narrowing)),
            ),
            (
                "dominators",
                int_u64(micros_u64(report.stage_times.dominators)),
            ),
            ("stems", int_u64(micros_u64(report.stage_times.stems))),
            (
                "case_analysis",
                int_u64(micros_u64(report.stage_times.case_analysis)),
            ),
        ]),
    ));
    Json::obj(fields)
}

/// [`report_json`] plus a `"reused"` flag: `true` marks a report
/// transplanted from the parent revision's result cache during a `patch`
/// (bit-identical to a fresh run by the cone contract of DESIGN.md §14),
/// `false` marks a freshly executed check.
pub fn reused_report_json(report: &VerifyReport, output_name: &str, reused: bool) -> Json {
    let mut json = report_json(report, output_name);
    if let Json::Obj(fields) = &mut json {
        fields.push(("reused".to_string(), Json::Bool(reused)));
    }
    json
}

/// Serializes one exact-delay search result.
pub fn delay_json(search: &DelaySearch, output_name: &str) -> Json {
    let mut fields = vec![
        ("output", Json::str(output_name)),
        ("delay", Json::Int(search.delay)),
        ("exact", Json::Bool(search.proven_exact)),
        ("upper_bound", Json::Int(search.upper_bound)),
    ];
    if let Some(vector) = &search.vector {
        fields.push(("vector", Json::str(vector_bits(vector))));
    }
    fields.push(("backtracks", int_u64(search.backtracks)));
    fields.push(("probes", Json::Int(search.probes.len() as i64)));
    Json::obj(fields)
}

/// Serializes a whole batch result: collapsed outcome, per-check reports
/// in request order, failed slots, and the summary counters.
///
/// `check_names` is the output name of every *requested* check, in request
/// order (`reports` covers the completed subset; the failed slots carry
/// their own index, so both sides stay attributable).
pub fn batch_json(batch: &BatchCheck, check_names: &[String]) -> Vec<(String, Json)> {
    let outcome = match batch.outcome() {
        BatchOutcome::AllSafe => "all_safe",
        BatchOutcome::Violation => "violation",
        BatchOutcome::Undecided => "undecided",
    };
    let failed = |i: usize| batch.errors.iter().any(|e| e.index == i);
    let report_names = check_names
        .iter()
        .enumerate()
        .filter(|&(i, _)| !failed(i))
        .map(|(_, name)| name);
    let reports: Vec<Json> = batch
        .reports
        .iter()
        .zip(report_names)
        .map(|(r, name)| report_json(r, name))
        .collect();
    let errors: Vec<Json> = batch
        .errors
        .iter()
        .map(|e| {
            Json::obj([
                ("index", Json::Int(e.index as i64)),
                (
                    "output",
                    check_names
                        .get(e.index)
                        .map_or(Json::Null, |n| Json::str(n.clone())),
                ),
                ("delta", Json::Int(e.delta)),
                ("error", Json::str(e.error.to_string())),
            ])
        })
        .collect();
    let s = &batch.summary;
    vec![
        ("outcome".to_string(), Json::str(outcome)),
        ("complete".to_string(), Json::Bool(batch.is_complete())),
        ("reports".to_string(), Json::Arr(reports)),
        ("errors".to_string(), Json::Arr(errors)),
        (
            "summary".to_string(),
            Json::obj([
                ("checks", int_u64(s.checks)),
                ("no_violation", int_u64(s.no_violation)),
                ("violations", int_u64(s.violations)),
                ("undecided", int_u64(s.undecided)),
                ("failed", int_u64(s.failed)),
                ("skipped", int_u64(s.skipped)),
                ("backtracks", int_u64(s.backtracks)),
            ]),
        ),
        ("wall_us".to_string(), int_u64(micros_u64(batch.wall))),
    ]
}

/// A `u64` counter on the wire, exactly: values past `i64::MAX` become
/// [`Json::Uint`] rather than saturating — a content hash or a cumulative
/// `elapsed_us` above 2^63 must round-trip bit-for-bit, not pin to a
/// ceiling (and certainly not degrade through `f64`, which only holds
/// 53 bits).
fn int_u64(value: u64) -> Json {
    Json::uint(value)
}

/// A [`Duration`](std::time::Duration) in whole microseconds, saturating
/// at `u64::MAX` — `as_micros()` yields a `u128`, and a plain `as u64`
/// cast would wrap absurd-but-representable durations into small positive
/// numbers on the wire.
fn micros_u64(duration: std::time::Duration) -> u64 {
    u64::try_from(duration.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::decode;

    fn parse(line: &str) -> Result<Request, ProtoError> {
        Request::parse(&decode(line).expect(line))
    }

    #[test]
    fn register_parses_with_defaults() {
        let r = parse(r#"{"op":"register","name":"c17","source":"INPUT(a)"}"#).unwrap();
        assert!(r.id.is_none());
        match r.body {
            RequestBody::Register {
                name,
                format,
                source,
                delay,
            } => {
                assert_eq!(name, "c17");
                assert_eq!(format, "bench");
                assert_eq!(source, "INPUT(a)");
                assert_eq!(delay, 10);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn check_parses_with_opts_and_id() {
        let r = parse(
            r#"{"op":"check","id":7,"circuit":"c17","output":"n22","delta":30,
                "opts":{"jobs":2,"deadline_ms":500,"max_backtracks":10,"fail_fast":true}}"#,
        )
        .unwrap();
        assert_eq!(r.id, Some(Json::Int(7)));
        match r.body {
            RequestBody::Check {
                circuit,
                output,
                delta,
                opts,
            } => {
                assert_eq!(
                    (circuit.as_str(), output.as_str(), delta),
                    ("c17", "n22", 30)
                );
                assert_eq!(opts.jobs, 2);
                assert_eq!(opts.deadline_ms, Some(500));
                assert_eq!(opts.max_backtracks, Some(10));
                assert!(opts.fail_fast);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn batch_check_parses_both_shapes() {
        let all = parse(r#"{"op":"batch_check","circuit":"c","delta":30}"#).unwrap();
        assert!(matches!(
            all.body,
            RequestBody::BatchCheck {
                checks: CheckSet::AllOutputs(30),
                ..
            }
        ));
        let explicit = parse(
            r#"{"op":"batch_check","circuit":"c","checks":[{"output":"a","delta":1},{"output":"b","delta":2}]}"#,
        )
        .unwrap();
        match explicit.body {
            RequestBody::BatchCheck {
                checks: CheckSet::Explicit(pairs),
                ..
            } => assert_eq!(pairs, vec![("a".into(), 1), ("b".into(), 2)]),
            other => panic!("{other:?}"),
        }
        // Both or neither of checks/delta is an error.
        assert!(parse(r#"{"op":"batch_check","circuit":"c"}"#).is_err());
        assert!(parse(r#"{"op":"batch_check","circuit":"c","delta":1,"checks":[]}"#).is_err());
        assert!(parse(r#"{"op":"batch_check","circuit":"c","checks":[]}"#).is_err());
    }

    #[test]
    fn delay_output_is_optional() {
        let one = parse(r#"{"op":"delay","circuit":"c","output":"s"}"#).unwrap();
        assert!(matches!(
            one.body,
            RequestBody::Delay {
                output: Some(_),
                ..
            }
        ));
        let all = parse(r#"{"op":"delay","circuit":"c"}"#).unwrap();
        assert!(matches!(all.body, RequestBody::Delay { output: None, .. }));
    }

    #[test]
    fn patch_parses_edit_shapes() {
        let r = parse(
            r#"{"op":"patch","circuit":"c17","name":"c17v2",
                "edits":[{"gate":"n22","delay":35},
                         {"gate":"n23","delay":[3,7]},
                         {"gate":"n16","inputs":["n2","n11"]}],
                "delta":30}"#,
        )
        .unwrap();
        match r.body {
            RequestBody::Patch {
                circuit,
                name,
                edits,
                checks,
                ..
            } => {
                assert_eq!(circuit, "c17");
                assert_eq!(name.as_deref(), Some("c17v2"));
                assert_eq!(
                    edits,
                    vec![
                        EditSpec::SetDelay {
                            gate: "n22".into(),
                            min: 35,
                            max: 35
                        },
                        EditSpec::SetDelay {
                            gate: "n23".into(),
                            min: 3,
                            max: 7
                        },
                        EditSpec::Rewire {
                            gate: "n16".into(),
                            inputs: vec!["n2".into(), "n11".into()]
                        },
                    ]
                );
                assert!(!edits[0].is_structural());
                assert!(edits[2].is_structural());
                assert_eq!(checks, Some(CheckSet::AllOutputs(30)));
            }
            other => panic!("{other:?}"),
        }
        // Checks are optional; explicit list also accepted.
        let bare =
            parse(r#"{"op":"patch","circuit":"c","edits":[{"gate":"g","delay":1}]}"#).unwrap();
        assert!(matches!(
            bare.body,
            RequestBody::Patch {
                checks: None,
                name: None,
                ..
            }
        ));
        let explicit = parse(
            r#"{"op":"patch","circuit":"c","edits":[{"gate":"g","delay":1}],
                "checks":[{"output":"y","delta":9}]}"#,
        )
        .unwrap();
        assert!(matches!(
            explicit.body,
            RequestBody::Patch {
                checks: Some(CheckSet::Explicit(_)),
                ..
            }
        ));
    }

    #[test]
    fn patch_rejects_malformed_edits() {
        for line in [
            // No edits at all / empty edits.
            r#"{"op":"patch","circuit":"c"}"#,
            r#"{"op":"patch","circuit":"c","edits":[]}"#,
            // Both delay and inputs on one edit; neither on another.
            r#"{"op":"patch","circuit":"c","edits":[{"gate":"g","delay":1,"inputs":["a"]}]}"#,
            r#"{"op":"patch","circuit":"c","edits":[{"gate":"g"}]}"#,
            // Bad interval (lo > hi), bad type, empty rewire.
            r#"{"op":"patch","circuit":"c","edits":[{"gate":"g","delay":[7,3]}]}"#,
            r#"{"op":"patch","circuit":"c","edits":[{"gate":"g","delay":"ten"}]}"#,
            r#"{"op":"patch","circuit":"c","edits":[{"gate":"g","inputs":[]}]}"#,
            // Both checks and delta.
            r#"{"op":"patch","circuit":"c","edits":[{"gate":"g","delay":1}],"delta":1,"checks":[{"output":"y","delta":1}]}"#,
        ] {
            let err = parse(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
        }
    }

    #[test]
    fn edit_spec_round_trips_through_its_wire_form() {
        for edit in [
            EditSpec::SetDelay {
                gate: "g1".into(),
                min: 12,
                max: 12,
            },
            EditSpec::SetDelay {
                gate: "g2".into(),
                min: 3,
                max: 9,
            },
            EditSpec::Rewire {
                gate: "g3".into(),
                inputs: vec!["a".into(), "b".into()],
            },
        ] {
            let reparsed = EditSpec::parse(&edit.to_json()).unwrap();
            assert_eq!(reparsed, edit);
        }
    }

    #[test]
    fn bad_requests_are_classified() {
        for line in [
            r#"{"no_op":1}"#,
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"check","circuit":"c"}"#,
            r#"{"op":"check","circuit":"c","output":"s","delta":"thirty"}"#,
            r#"{"op":"register","name":"x","source":"s","format":"vhdl"}"#,
            r#"{"op":"check","circuit":"c","output":"s","delta":1,"opts":{"jobs":-1}}"#,
            r#"[1,2]"#,
        ] {
            let err = parse(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
        }
    }

    #[test]
    fn status_and_metrics_parse_bare() {
        assert!(matches!(
            parse(r#"{"op":"status"}"#).unwrap().body,
            RequestBody::Status
        ));
        assert!(matches!(
            parse(r#"{"op":"metrics"}"#).unwrap().body,
            RequestBody::Metrics
        ));
    }

    #[test]
    fn micros_saturate_instead_of_wrapping() {
        use std::time::Duration;
        // u64::MAX seconds is ~5.8e25 µs — far past u64::MAX µs. The old
        // `as_micros() as u64` cast wrapped this into a meaningless small
        // number; the duration pins at the u64 ceiling, and the wire value
        // carries the full u64 exactly (as `Json::Uint`, not a clamped
        // i64 and not a 53-bit-mantissa float).
        let absurd = Duration::from_secs(u64::MAX);
        assert_eq!(micros_u64(absurd), u64::MAX);
        assert_eq!(int_u64(micros_u64(absurd)), Json::Uint(u64::MAX));
        assert_eq!(int_u64(micros_u64(absurd)).as_u64(), Some(u64::MAX));
        // Sane values round-trip unchanged, staying canonical `Int`.
        assert_eq!(micros_u64(Duration::from_micros(1234)), 1234);
        assert_eq!(int_u64(1234), Json::Int(1234));
    }

    #[test]
    fn responses_echo_the_id() {
        let id = Json::str("req-1");
        let ok = ok_response("status", Some(&id), vec![]);
        assert_eq!(ok.get("id"), Some(&id));
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
        let err = error_response(Some(&id), &ProtoError::new(ErrorCode::Overloaded, "full"));
        assert_eq!(err.get("id"), Some(&id));
        assert_eq!(err.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            err.get("error").unwrap().get("code").unwrap().as_str(),
            Some("overloaded")
        );
    }

    #[test]
    fn vector_bits_spelling() {
        assert_eq!(vector_bits(&[true, false, true, true]), "1011");
        assert_eq!(vector_bits(&[]), "");
    }
}
