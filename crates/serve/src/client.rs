//! A small blocking client for the serving protocol.
//!
//! Used by `ltt client`, the `loadgen` load generator, the router's
//! health checker, and the integration tests. One [`Client`] is one
//! connection; requests can be pipelined ([`Client::send`] several lines,
//! then [`Client::recv`] the replies) or issued RPC-style with
//! [`Client::call`].
//!
//! By default every operation blocks indefinitely — correct for a trusted
//! local daemon, wrong for a fleet where a backend can wedge. Use
//! [`Client::connect_timeout`] and [`Client::set_read_timeout`] (or the
//! CLI's `--timeout-ms`) to bound the wait: an expired timeout surfaces
//! as an [`io::Error`](std::io::Error) of kind
//! [`TimedOut`](std::io::ErrorKind::TimedOut) /
//! [`WouldBlock`](std::io::ErrorKind::WouldBlock), which callers can map
//! to a structured `timeout` error instead of hanging forever.

use crate::wire::{decode, Json};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to an `ltt-serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server, waiting as long as the OS allows.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Client::from_stream(TcpStream::connect(addr)?)
    }

    /// Connects with a bound on the connection-establishment wait. Each
    /// resolved address gets up to `timeout`; the first success wins.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Client> {
        let mut last_err = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, timeout) {
                Ok(stream) => return Client::from_stream(stream),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    fn from_stream(stream: TcpStream) -> std::io::Result<Client> {
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Bounds every subsequent [`recv`](Client::recv) (and the read half
    /// of [`call`](Client::call)): a server silent for `timeout` yields a
    /// `TimedOut`/`WouldBlock` error instead of blocking forever. `None`
    /// restores the unbounded default.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// The peer address of the underlying connection.
    pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.writer.peer_addr()
    }

    /// Sends one request line without waiting for the reply.
    pub fn send(&mut self, request: &Json) -> std::io::Result<()> {
        writeln!(self.writer, "{}", request.encode())?;
        self.writer.flush()
    }

    /// Receives the next response line; `Ok(None)` on a clean EOF (the
    /// server closed the connection).
    ///
    /// With a read timeout armed, a mid-line timeout is an error — the
    /// connection's framing can no longer be trusted for pipelining, so
    /// callers should drop the client rather than retry the read.
    pub fn recv(&mut self) -> std::io::Result<Option<Json>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            if line.trim().is_empty() {
                continue;
            }
            return decode(line.trim())
                .map(Some)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e));
        }
    }

    /// One request, one reply (the RPC shape).
    pub fn call(&mut self, request: &Json) -> std::io::Result<Json> {
        self.send(request)?;
        self.recv()?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            )
        })
    }
}

/// Whether an I/O error is a timeout expiring (as opposed to a transport
/// failure) — the read-timeout kinds differ across platforms.
pub fn is_timeout(error: &std::io::Error) -> bool {
    matches!(error.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock)
}
