//! A small blocking client for the serving protocol.
//!
//! Used by `ltt client`, the `loadgen` load generator, and the
//! integration tests. One [`Client`] is one connection; requests can be
//! pipelined ([`Client::send`] several lines, then [`Client::recv`] the
//! replies) or issued RPC-style with [`Client::call`].

use crate::wire::{decode, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking connection to an `ltt-serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line without waiting for the reply.
    pub fn send(&mut self, request: &Json) -> std::io::Result<()> {
        writeln!(self.writer, "{}", request.encode())?;
        self.writer.flush()
    }

    /// Receives the next response line; `Ok(None)` on a clean EOF (the
    /// server closed the connection).
    pub fn recv(&mut self) -> std::io::Result<Option<Json>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            if line.trim().is_empty() {
                continue;
            }
            return decode(line.trim())
                .map(Some)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e));
        }
    }

    /// One request, one reply (the RPC shape).
    pub fn call(&mut self, request: &Json) -> std::io::Result<Json> {
        self.send(request)?;
        self.recv()?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            )
        })
    }
}
