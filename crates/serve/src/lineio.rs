//! Length-capped newline-delimited line reading.
//!
//! Every socket in the serving tier — daemon readers, the router's
//! client-facing readers, and the router's backend RPC connections —
//! frames messages as one line of JSON. A plain
//! [`read_line`](std::io::BufRead::read_line) buffers without bound, so a
//! single malicious or buggy peer that never sends `\n` balloons the
//! process until the allocator gives out. [`CappedLineReader`] enforces a
//! byte budget per line: the first byte past the cap yields
//! [`LineRead::TooLarge`] exactly once, the remainder of the oversize
//! line is *discarded* (streamed, never stored) until its newline, and
//! the connection then continues with the next line — one bad request
//! costs one structured error, not the process.
//!
//! The reader also folds the read-timeout plumbing the serve tier relies
//! on: a `WouldBlock`/`TimedOut` error surfaces as [`LineRead::TimedOut`]
//! with all partial data preserved inside the `BufRead` buffer and the
//! accumulator, so callers can poll a drain flag and resume mid-line.

use std::io::{BufRead, ErrorKind};

/// Outcome of one [`CappedLineReader::read_line`] call.
#[derive(Debug)]
pub enum LineRead {
    /// One complete line, without its trailing newline.
    Line(String),
    /// The current line exceeded the cap. Reported once per oversize
    /// line; subsequent calls silently discard until the line ends, then
    /// resume with the next line.
    TooLarge,
    /// The underlying read timed out mid-line (the socket has a read
    /// timeout). Nothing is lost; call again to continue.
    TimedOut,
    /// Clean end of stream.
    Eof,
}

/// A line reader that never buffers more than `cap` bytes per line (see
/// the module docs).
pub struct CappedLineReader<R> {
    inner: R,
    buf: Vec<u8>,
    cap: usize,
    /// Inside an oversize line whose `TooLarge` has already been
    /// reported: drop bytes until the next newline.
    discarding: bool,
}

impl<R: BufRead> CappedLineReader<R> {
    /// Wraps `inner`, capping every line at `cap` bytes (minimum 1).
    pub fn new(inner: R, cap: usize) -> Self {
        CappedLineReader {
            inner,
            buf: Vec::new(),
            cap: cap.max(1),
            discarding: false,
        }
    }

    /// Reads until the next newline, the cap, a timeout, or EOF.
    pub fn read_line(&mut self) -> std::io::Result<LineRead> {
        loop {
            // Copy out what the buffer holds, then consume outside the
            // borrow; `fill_buf` is not re-called until the chunk is used.
            let (consumed, newline_at) = {
                let available = match self.inner.fill_buf() {
                    Ok(bytes) => bytes,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                        return Ok(LineRead::TimedOut)
                    }
                    Err(e) => return Err(e),
                };
                if available.is_empty() {
                    // EOF. An unterminated final line still counts as a
                    // line (like `BufRead::read_line`); a second call
                    // then yields `Eof` from the now-empty buffer.
                    if self.buf.is_empty() || self.discarding {
                        return Ok(LineRead::Eof);
                    }
                    let text = String::from_utf8_lossy(&self.buf).into_owned();
                    self.buf.clear();
                    return Ok(LineRead::Line(text));
                }
                match available.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        if !self.discarding {
                            self.buf.extend_from_slice(&available[..pos]);
                        }
                        (pos + 1, true)
                    }
                    None => {
                        if !self.discarding {
                            self.buf.extend_from_slice(available);
                        }
                        (available.len(), false)
                    }
                }
            };
            self.inner.consume(consumed);
            if self.discarding {
                if newline_at {
                    // The oversize line (already reported) ends here.
                    self.discarding = false;
                }
                continue;
            }
            if self.buf.len() > self.cap {
                self.buf.clear();
                // If the newline already arrived the line is over;
                // otherwise keep discarding its remainder silently.
                self.discarding = !newline_at;
                return Ok(LineRead::TooLarge);
            }
            if newline_at {
                let text = String::from_utf8_lossy(&self.buf).into_owned();
                self.buf.clear();
                return Ok(LineRead::Line(text));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn reader(text: &str, cap: usize) -> CappedLineReader<BufReader<&[u8]>> {
        // A 3-byte BufReader forces every code path to handle lines
        // spanning many fill_buf chunks.
        CappedLineReader::new(BufReader::with_capacity(3, text.as_bytes()), cap)
    }

    fn lines(r: &mut CappedLineReader<BufReader<&[u8]>>) -> Vec<String> {
        let mut out = Vec::new();
        loop {
            match r.read_line().expect("read") {
                LineRead::Line(l) => out.push(l),
                LineRead::TooLarge => out.push("<too large>".to_string()),
                LineRead::TimedOut => unreachable!("in-memory reader"),
                LineRead::Eof => return out,
            }
        }
    }

    #[test]
    fn reads_lines_within_cap() {
        let mut r = reader("alpha\nbeta\n\ngamma", 64);
        assert_eq!(lines(&mut r), ["alpha", "beta", "", "gamma"]);
    }

    #[test]
    fn oversize_line_reported_once_and_skipped() {
        let mut r = reader("ok\n0123456789abcdef\nafter\n", 8);
        assert_eq!(lines(&mut r), ["ok", "<too large>", "after"]);
    }

    #[test]
    fn oversize_line_with_late_newline_is_streamed_not_stored() {
        // 1 MiB of junk against an 8-byte cap: the reader must discard,
        // not accumulate.
        let mut big = "x".repeat(1 << 20);
        big.push('\n');
        big.push_str("tail\n");
        let mut r = CappedLineReader::new(BufReader::with_capacity(512, big.as_bytes()), 8);
        assert!(matches!(r.read_line().unwrap(), LineRead::TooLarge));
        assert!(r.buf.len() <= 8, "accumulator stayed bounded");
        match r.read_line().unwrap() {
            LineRead::Line(l) => assert_eq!(l, "tail"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exactly_cap_sized_line_is_fine() {
        let mut r = reader("12345678\n", 8);
        assert_eq!(lines(&mut r), ["12345678"]);
    }

    #[test]
    fn consecutive_oversize_lines_each_report() {
        let mut r = reader("aaaaaaaaaaaa\nbbbbbbbbbbbb\nok\n", 4);
        assert_eq!(lines(&mut r), ["<too large>", "<too large>", "ok"]);
    }

    #[test]
    fn unterminated_final_line_surfaces_before_eof() {
        // No trailing newline: the fragment still comes out as a line
        // (matching `BufRead::read_line`), then EOF.
        let mut r = reader("whole\npartial", 64);
        match r.read_line().unwrap() {
            LineRead::Line(l) => assert_eq!(l, "whole"),
            other => panic!("{other:?}"),
        }
        match r.read_line().unwrap() {
            LineRead::Line(l) => assert_eq!(l, "partial"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(r.read_line().unwrap(), LineRead::Eof));
    }
}
