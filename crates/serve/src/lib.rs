//! `ltt-serve` — a persistent timing-verification service.
//!
//! Every CLI invocation re-parses the netlist and re-derives all
//! per-circuit analyses before answering a single check `σ = (ξ, s, δ)`.
//! A serving workload inverts the ratio: the circuit is uploaded **once**
//! and then queried thousands of times, so the expensive part
//! (implication tables, SCOAP, arrival times, dominators, the base
//! fixpoint — everything [`ltt_core::PreparedCircuit`] caches) should be
//! paid once per circuit, not once per request.
//!
//! The service is a std-only TCP daemon speaking a **newline-delimited
//! JSON** protocol (one request object per line, one response object per
//! line; see [`wire`] for the hand-rolled encoder/decoder and [`proto`]
//! for the request grammar):
//!
//! * [`registry`] — a content-hashed, LRU-bounded **circuit registry**.
//!   `register` uploads a `.bench`/`.v` netlist; the entry owns a shared
//!   [`CheckSession`](ltt_core::CheckSession) so every later request
//!   reuses the same prepared analyses. Re-registering identical content
//!   is a cache hit (no re-parse, no re-prepare).
//! * [`server`] — connection handling on a bounded worker pool with
//!   **admission control**: a full queue yields a structured
//!   `overloaded` reply instead of unbounded buffering; a client that
//!   disconnects mid-request has its in-flight work cancelled through
//!   the [`CancelToken`](ltt_core::CancelToken) plumbing; a `shutdown`
//!   request drains gracefully (in-flight and queued work completes, new
//!   work is refused).
//! * [`client`] — a small blocking client used by `ltt client`, the
//!   `loadgen` load generator, and the integration tests.
//! * [`router`] — a fault-tolerant **sharded-fleet front tier**:
//!   consistent-hash placement over N backends, per-backend circuit
//!   breakers and health probes, backoff retry with failover
//!   re-registration, and graceful drain — speaking the same wire
//!   protocol, forwarding backend replies verbatim so the bit-identity
//!   contract survives the extra hop ([`backend`] holds the pooled
//!   per-backend transport).
//! * [`metrics`] — Prometheus-text exposition primitives: the lock-free
//!   latency [`Histogram`] behind the daemon's `metrics` operation and
//!   the shared [`percentile`] helper.
//!
//! Verdicts served over the socket are **bit-identical** to running the
//! same checks in-process with [`BatchRunner`](ltt_core::BatchRunner):
//! each request executes on the shared session through the same
//! deterministic batch engine, so serving changes latency and throughput,
//! never answers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod client;
mod lineio;
pub mod metrics;
pub mod proto;
pub mod registry;
pub mod router;
pub mod server;
pub mod wire;

pub use backend::{Backend, BackendOpts, Breaker, RpcError};
pub use client::{is_timeout, Client};
pub use metrics::{percentile, Histogram};
pub use proto::{CheckSet, EditSpec, ErrorCode, ProtoError, Request, RequestBody, RunOpts};
pub use registry::{
    content_id, patched_id, session_config, CircuitEntry, CircuitRegistry, PatchOutcome,
    RegistryStats,
};
pub use router::{route, Router, RouterConfig, RouterHandle};
pub use server::{serve, ServeConfig, Server, ServerHandle};
pub use wire::{decode, Json, WireError};
