//! The TCP daemon: accept loop, per-connection readers, bounded worker
//! pool, admission control, and graceful drain.
//!
//! # Architecture
//!
//! One thread per connection **reads**; a fixed pool of worker threads
//! **computes**; replies are written through a shared, mutex-guarded
//! clone of the connection's stream, so workers answer while the reader
//! is already blocked on the next line (requests pipeline naturally).
//!
//! Cheap operations (`register`, `status`, `metrics`, `shutdown`) execute
//! inline on the reader thread. Check work (`check`, `batch_check`, `delay`) goes
//! through one bounded queue shared by every connection — the admission
//! point. A full queue yields an immediate structured `overloaded` reply:
//! the server sheds load explicitly instead of buffering unboundedly and
//! timing everyone out.
//!
//! Every connection owns a [`CancelToken`]. When the peer disconnects
//! (EOF or a read error) the token fires, and because each of the
//! connection's queued/running jobs executes under a
//! [`BatchRunner::with_cancel`] carrying that token, in-flight analysis
//! degrades to sound partial results and unstarted checks are skipped —
//! a dead client stops costing CPU within one budget-poll interval.
//!
//! A `shutdown` request (or [`ServerHandle::shutdown`]) begins a drain:
//! queued and in-flight work completes and is answered, new connections
//! and new work are refused, and [`Server::run`] returns once the pool is
//! idle. The readers poll the drain flag at their 100 ms read-timeout
//! cadence, so a drain completes promptly even with idle connections
//! open.

use crate::lineio::{CappedLineReader, LineRead};
use crate::metrics::Histogram;
use crate::proto::{
    batch_json, delay_json, error_response, ok_response, reused_report_json, CheckSet, EditSpec,
    ErrorCode, ProtoError, Request, RequestBody, RunOpts,
};
use crate::registry::{CircuitEntry, CircuitRegistry, RegistryStats};
use crate::wire::{decode, Json};
use ltt_core::{
    available_jobs, BatchCheck, BatchRunner, Budget, CancelToken, CheckSession, Engine, Verdict,
    VerifyReport,
};
use ltt_netlist::NetId;
use std::collections::VecDeque;
use std::io::{BufReader, ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How often blocked readers and the accept loop re-check the drain flag.
const POLL: Duration = Duration::from_millis(100);

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker-pool size; `0` means one per available hardware thread.
    pub jobs: usize,
    /// Admission bound: queued (not yet running) requests beyond this are
    /// refused with `overloaded`.
    pub queue_cap: usize,
    /// Maximum circuits resident in the registry (LRU beyond this).
    pub registry_cap: usize,
    /// Maximum accepted request-line length in bytes; longer lines are
    /// answered with a structured `too_large` error and discarded without
    /// ever being buffered whole (default 16 MiB).
    pub max_line_bytes: usize,
}

/// The default request-line cap: generous enough for any realistic
/// netlist upload, small enough that one hostile peer cannot balloon the
/// process.
pub const DEFAULT_MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 0,
            queue_cap: 64,
            registry_cap: 16,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
        }
    }
}

/// Monotonic counters exposed by `status` and `metrics`.
///
/// Admission-side counters (`submitted`, `overloaded`) are only ever
/// incremented while the queue lock is held, so a snapshot taken under
/// that lock sees a frozen admission frontier; completion-side counters
/// (`completed_ok`, `panicked`) advance freely but only ever for jobs the
/// frozen frontier already admitted. That makes
/// `submitted == overloaded + queued + in_flight + completed_ok + panicked`
/// an invariant of every snapshot, with `in_flight` derived rather than
/// tracked (a separately-updated atomic could disagree with the others).
#[derive(Debug, Default)]
struct Counters {
    connections_total: AtomicU64,
    connections_open: AtomicU64,
    /// Requests that reached admission control: enqueued or shed.
    submitted: AtomicU64,
    /// Jobs whose handler returned normally (a panicking handler counts
    /// under `panicked` only, never here).
    completed_ok: AtomicU64,
    overloaded: AtomicU64,
    budget_tripped: AtomicU64,
    panicked: AtomicU64,
    disconnect_cancels: AtomicU64,
    /// Request lines refused (before parsing) for exceeding the line cap.
    /// Never admitted, so outside the accounting identity above.
    too_large: AtomicU64,
}

/// A coherent point-in-time view of the server's counters: taken under
/// the queue lock, so the accounting identity documented on [`Counters`]
/// holds exactly in every snapshot.
#[derive(Debug, Clone, Copy)]
struct Snapshot {
    submitted: u64,
    completed_ok: u64,
    panicked: u64,
    overloaded: u64,
    budget_tripped: u64,
    queued: u64,
    in_flight: u64,
    connections_total: u64,
    connections_open: u64,
    disconnect_cancels: u64,
    too_large: u64,
}

/// One unit of admitted work: executed by a worker, replied through the
/// originating connection's shared writer.
struct Job {
    /// The computation; returns the reply to send.
    work: Box<dyn FnOnce() -> Json + Send>,
    /// Where to send the reply.
    reply: ReplyHandle,
    /// Correlation id for the last-resort internal-error reply.
    id: Option<Json>,
}

/// Chaos-relevant identity and state shared by [`Shared`] and every
/// [`ReplyHandle`] (a separate `Arc` so reply handles sitting in queued
/// jobs never keep the whole server state alive).
struct ChaosCtx {
    /// Abrupt-death flag (see [`ServerHandle::kill`]): suppress replies,
    /// tear connections down, drop pending work unanswered.
    killed: AtomicBool,
    /// The bound address as a string — the failpoint *context* for this
    /// process's chaos sites, so a test can target one backend of an
    /// in-process fleet.
    self_addr: String,
}

/// State shared by the accept loop, readers, workers, and handles.
struct Shared {
    registry: CircuitRegistry,
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    draining: AtomicBool,
    chaos: Arc<ChaosCtx>,
    queue_cap: usize,
    max_line_bytes: usize,
    counters: Counters,
    /// Wall-clock latency of every finished job (queued-to-replied is the
    /// worker's concern; this measures handler execution).
    latency: Histogram,
    started: Instant,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    fn killed(&self) -> bool {
        self.chaos.killed.load(Ordering::Acquire)
    }

    fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
        self.job_ready.notify_all();
    }

    /// Takes a coherent counter snapshot (see [`Counters`] for why the
    /// queue lock makes the accounting identity exact).
    fn snapshot(&self) -> Snapshot {
        let queue = self.queue.lock().expect("queue lock poisoned");
        let queued = queue.len() as u64;
        let c = &self.counters;
        let submitted = c.submitted.load(Ordering::Relaxed);
        let overloaded = c.overloaded.load(Ordering::Relaxed);
        let completed_ok = c.completed_ok.load(Ordering::Relaxed);
        let panicked = c.panicked.load(Ordering::Relaxed);
        // Everything admitted but neither queued nor finished is on a
        // worker right now. The saturation is belt-and-braces: with the
        // frontier frozen by the lock the subtraction cannot go negative.
        let in_flight = submitted
            .saturating_sub(overloaded)
            .saturating_sub(queued)
            .saturating_sub(completed_ok)
            .saturating_sub(panicked);
        drop(queue);
        Snapshot {
            submitted,
            completed_ok,
            panicked,
            overloaded,
            budget_tripped: c.budget_tripped.load(Ordering::Relaxed),
            queued,
            in_flight,
            connections_total: c.connections_total.load(Ordering::Relaxed),
            connections_open: c.connections_open.load(Ordering::Relaxed),
            disconnect_cancels: c.disconnect_cancels.load(Ordering::Relaxed),
            too_large: c.too_large.load(Ordering::Relaxed),
        }
    }
}

/// A writer half shared between the reader thread and the workers; every
/// reply is one locked `write + flush`, so concurrent replies interleave
/// at line granularity, never within a line.
#[derive(Clone)]
struct ReplyHandle {
    stream: Arc<Mutex<TcpStream>>,
    chaos: Arc<ChaosCtx>,
}

impl ReplyHandle {
    /// Sends one response line. Write errors are swallowed: a reply that
    /// cannot be delivered means the client is gone, and the connection's
    /// cancel token (driven by the reader's EOF) already handles that.
    ///
    /// Two chaos paths simulate a crashed backend at the worst possible
    /// moment — *after* the work executed, *instead of* replying: a
    /// [`kill`](ServerHandle::kill) in progress, and the
    /// `serve::drop_reply` failpoint (context = this server's address).
    /// Both tear the connection down so the peer sees a reset, never a
    /// silent hang and never a wrong answer.
    fn send(&self, response: &Json) {
        if self.chaos.killed.load(Ordering::Acquire)
            || ltt_core::failpoint::hit_flagged("serve::drop_reply", &self.chaos.self_addr)
        {
            let stream = self.stream.lock().expect("reply lock poisoned");
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let mut stream = self.stream.lock().expect("reply lock poisoned");
        let _ = writeln!(stream, "{}", response.encode());
        let _ = stream.flush();
    }
}

/// A control handle onto a running server (shutdown from tests or a
/// supervising thread; `status`-style introspection).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` requested `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins a graceful drain, exactly like a `shutdown` request.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Kills the server abruptly — the chaos counterpart of
    /// [`shutdown`](ServerHandle::shutdown). Pending and in-flight work is
    /// dropped *unanswered*, every connection is torn down, and no further
    /// reply ever leaves the process, exactly as if the backend crashed.
    /// Peers observe connection resets or timeouts, never a wrong answer.
    pub fn kill(&self) {
        self.shared.chaos.killed.store(true, Ordering::Release);
        // Reuse the drain machinery to wake blocked workers and stop the
        // accept loop; the killed flag turns that "drain" into a crash.
        self.shared.begin_drain();
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }

    /// Registry counters (for tests and supervisors; clients use the
    /// `status` request).
    pub fn registry_stats(&self) -> RegistryStats {
        self.shared.registry.stats()
    }
}

/// The daemon. [`Server::bind`] claims the socket; [`Server::run`] serves
/// until a drain completes.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    jobs: usize,
}

impl Server {
    /// Binds the listening socket and builds the shared state. No threads
    /// run until [`Server::run`].
    pub fn bind(config: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let self_addr = listener.local_addr()?.to_string();
        let shared = Arc::new(Shared {
            registry: CircuitRegistry::new(config.registry_cap),
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            draining: AtomicBool::new(false),
            chaos: Arc::new(ChaosCtx {
                killed: AtomicBool::new(false),
                self_addr,
            }),
            queue_cap: config.queue_cap.max(1),
            max_line_bytes: config.max_line_bytes.max(1024),
            counters: Counters::default(),
            latency: Histogram::new(),
            started: Instant::now(),
        });
        Ok(Server {
            listener,
            shared,
            jobs: if config.jobs == 0 {
                available_jobs()
            } else {
                config.jobs
            },
        })
    }

    /// The bound address (the real ephemeral port after binding `:0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A control handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: self.shared.clone(),
            addr: self
                .listener
                .local_addr()
                .expect("bound listener has an address"),
        }
    }

    /// Serves until a `shutdown` request (or [`ServerHandle::shutdown`])
    /// drains the server: accepts connections, spawns one reader per
    /// connection, runs the worker pool, and returns once every queued and
    /// in-flight job has been answered.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            shared,
            jobs,
        } = self;
        let workers: Vec<_> = (0..jobs.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        listener.set_nonblocking(true)?;
        let mut readers = Vec::new();
        loop {
            if shared.draining() {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    // One-line replies must leave now, not after Nagle and
                    // the peer's delayed ACK agree (a ~40 ms tax per RPC).
                    stream.set_nodelay(true).ok();
                    let shared = shared.clone();
                    readers.push(std::thread::spawn(move || {
                        serve_connection(stream, &shared);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
        // Close the listening socket immediately: from here on a connection
        // attempt is refused at the OS level, not parked in a backlog the
        // drain will never answer.
        drop(listener);
        // Drain: workers exit once the queue is empty; readers notice the
        // flag within one read-timeout tick.
        for worker in workers {
            let _ = worker.join();
        }
        for reader in readers {
            let _ = reader.join();
        }
        Ok(())
    }
}

/// Runs a daemon with the given config, printing the bound address to
/// stdout (`listening on ADDR`) before serving — the line scripts and the
/// smoke test parse to discover an ephemeral port.
pub fn serve(config: &ServeConfig) -> std::io::Result<()> {
    let server = Server::bind(config)?;
    println!("listening on {}", server.local_addr()?);
    std::io::stdout().flush()?;
    server.run()
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock poisoned");
            loop {
                if shared.killed() {
                    // Crash semantics: everything still queued dies
                    // unanswered (the peers' connections are being torn
                    // down; they will observe resets, not replies).
                    queue.clear();
                    break None;
                }
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.draining() {
                    break None;
                }
                queue = shared
                    .job_ready
                    .wait_timeout(queue, POLL)
                    .expect("queue lock poisoned")
                    .0;
            }
        };
        let Some(job) = job else { return };
        let started = Instant::now();
        // Last-resort isolation: the batch engine already catches per-check
        // panics, so tripping this means a harness bug — count it, answer
        // with a structured internal error, keep the worker alive. A
        // panicked job counts under `panicked` ONLY; `completed_ok` means
        // the handler returned normally, and the two partition every job
        // a worker finishes (the accounting identity on `Counters` needs
        // exactly-once attribution, not double counting).
        let work = job.work;
        let chaos = shared.chaos.clone();
        let (response, panicked) = match catch_unwind(AssertUnwindSafe(move || {
            // Chaos site: a `Stall` here simulates a wedged backend (the
            // router's rpc timeout must fire); a `Panic` exercises the
            // structured internal-error path. Context = this server's
            // address, so one backend of an in-process fleet can be hit.
            ltt_core::failpoint::hit("serve::worker", &chaos.self_addr);
            work()
        })) {
            Ok(response) => (response, false),
            Err(_) => (
                error_response(
                    job.id.as_ref(),
                    &ProtoError::new(ErrorCode::Internal, "request handler panicked"),
                ),
                true,
            ),
        };
        shared.latency.observe(started.elapsed());
        // Count before replying: a client that receives the reply and
        // immediately asks for `status` must already see this job counted.
        if panicked {
            shared.counters.panicked.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.counters.completed_ok.fetch_add(1, Ordering::Relaxed);
        }
        job.reply.send(&response);
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    shared
        .counters
        .connections_total
        .fetch_add(1, Ordering::Relaxed);
    shared
        .counters
        .connections_open
        .fetch_add(1, Ordering::Relaxed);
    let cancel = CancelToken::new();
    let disconnected = read_loop(stream, shared, &cancel);
    if disconnected {
        // The peer vanished: abort everything this connection still has
        // queued or running. (A drain-triggered exit is NOT a disconnect —
        // pending work must complete and be answered.)
        cancel.cancel();
        shared
            .counters
            .disconnect_cancels
            .fetch_add(1, Ordering::Relaxed);
    }
    shared
        .counters
        .connections_open
        .fetch_sub(1, Ordering::Relaxed);
}

/// Reads and dispatches request lines until EOF, a read error, or a drain.
/// Returns whether the peer disconnected (as opposed to a drain exit).
fn read_loop(stream: TcpStream, shared: &Arc<Shared>, cancel: &CancelToken) -> bool {
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return true;
    }
    let reply = match stream.try_clone() {
        Ok(w) => ReplyHandle {
            stream: Arc::new(Mutex::new(w)),
            chaos: shared.chaos.clone(),
        },
        Err(_) => return true,
    };
    let mut reader = CappedLineReader::new(BufReader::new(stream), shared.max_line_bytes);
    loop {
        match reader.read_line() {
            Ok(LineRead::Line(text)) => {
                let text = text.trim();
                if !text.is_empty() {
                    dispatch(text, shared, cancel, &reply);
                }
            }
            Ok(LineRead::TooLarge) => {
                // The oversize line never parsed, so no correlation id is
                // recoverable. Its remainder is being discarded (never
                // buffered); the connection stays usable for what follows.
                shared.counters.too_large.fetch_add(1, Ordering::Relaxed);
                reply.send(&error_response(
                    None,
                    &ProtoError::new(
                        ErrorCode::TooLarge,
                        format!(
                            "request line exceeds the {}-byte limit",
                            shared.max_line_bytes
                        ),
                    ),
                ));
            }
            // Timeout mid-wait: any partial line stays buffered inside the
            // reader; the next call resumes where this one stopped.
            Ok(LineRead::TimedOut) => {
                if shared.killed() {
                    return true;
                }
                if shared.draining() {
                    return false;
                }
            }
            Ok(LineRead::Eof) | Err(_) => return true,
        }
    }
}

/// Parses and executes one request line: inline for control operations,
/// through the admission queue for check work.
fn dispatch(text: &str, shared: &Arc<Shared>, cancel: &CancelToken, reply: &ReplyHandle) {
    let json = match decode(text) {
        Ok(json) => json,
        Err(e) => {
            // The line never parsed, so no correlation id is recoverable.
            reply.send(&error_response(
                None,
                &ProtoError::new(ErrorCode::BadRequest, format!("invalid JSON: {e}")),
            ));
            return;
        }
    };
    let request = match Request::parse(&json) {
        Ok(request) => request,
        Err(e) => {
            reply.send(&error_response(json.get("id"), &e));
            return;
        }
    };
    let id = request.id;
    let refuse_if_draining = |op: &str| -> bool {
        if shared.draining() {
            reply.send(&error_response(
                id.as_ref(),
                &ProtoError::new(
                    ErrorCode::ShuttingDown,
                    format!("server is draining; `{op}` refused"),
                ),
            ));
            true
        } else {
            false
        }
    };
    match request.body {
        RequestBody::Status => reply.send(&status_response(shared, id.as_ref())),
        RequestBody::Metrics => reply.send(&metrics_response(shared, id.as_ref())),
        RequestBody::Shutdown => {
            shared.begin_drain();
            reply.send(&ok_response("shutdown", id.as_ref(), vec![]));
        }
        RequestBody::Register {
            name,
            format,
            source,
            delay,
        } => {
            if refuse_if_draining("register") {
                return;
            }
            match shared.registry.register(&name, &format, &source, delay) {
                Ok((entry, cached)) => {
                    let outputs: Vec<Json> = entry
                        .circuit
                        .outputs()
                        .iter()
                        .map(|&o| Json::str(entry.circuit.net(o).name()))
                        .collect();
                    reply.send(&ok_response(
                        "register",
                        id.as_ref(),
                        vec![
                            ("circuit".to_string(), Json::str(entry.id.clone())),
                            ("name".to_string(), Json::str(name)),
                            ("cached".to_string(), Json::Bool(cached)),
                            (
                                "inputs".to_string(),
                                Json::Int(entry.circuit.inputs().len() as i64),
                            ),
                            ("outputs".to_string(), Json::Arr(outputs)),
                            (
                                "gates".to_string(),
                                Json::Int(entry.circuit.num_gates() as i64),
                            ),
                        ],
                    ));
                }
                Err(e) => reply.send(&error_response(id.as_ref(), &e)),
            }
        }
        RequestBody::Check {
            circuit,
            output,
            delta,
            opts,
        } => {
            if refuse_if_draining("check") {
                return;
            }
            submit_checks(
                shared,
                cancel,
                reply,
                id,
                "check",
                &circuit,
                NamedChecks::Explicit(vec![(output, delta)]),
                opts,
            );
        }
        RequestBody::BatchCheck {
            circuit,
            checks,
            opts,
        } => {
            if refuse_if_draining("batch_check") {
                return;
            }
            let named = match checks {
                crate::proto::CheckSet::Explicit(pairs) => NamedChecks::Explicit(pairs),
                crate::proto::CheckSet::AllOutputs(delta) => NamedChecks::AllOutputs(delta),
            };
            submit_checks(
                shared,
                cancel,
                reply,
                id,
                "batch_check",
                &circuit,
                named,
                opts,
            );
        }
        RequestBody::Delay {
            circuit,
            output,
            opts,
        } => {
            if refuse_if_draining("delay") {
                return;
            }
            submit_delay(shared, cancel, reply, id, &circuit, output, opts);
        }
        RequestBody::Patch {
            circuit,
            name,
            edits,
            checks,
            opts,
        } => {
            if refuse_if_draining("patch") {
                return;
            }
            submit_patch(
                shared, cancel, reply, id, &circuit, name, edits, checks, opts,
            );
        }
    }
}

/// The checks of one request, outputs still by name.
enum NamedChecks {
    Explicit(Vec<(String, i64)>),
    AllOutputs(i64),
}

/// Resolves one output name to its [`NetId`], requiring a primary output.
fn resolve_output(session: &CheckSession<'static>, name: &str) -> Result<NetId, ProtoError> {
    session
        .circuit()
        .net_by_name(name)
        .filter(|n| session.circuit().outputs().contains(n))
        .ok_or_else(|| {
            ProtoError::new(
                ErrorCode::UnknownOutput,
                format!("`{name}` is not a primary output of the circuit"),
            )
        })
}

/// Builds the per-request batch engine: the connection's cancel token
/// always rides along; the request's opts add deadline, backtrack cap, and
/// fail-fast on top.
fn build_runner(opts: &RunOpts, cancel: &CancelToken) -> BatchRunner {
    let mut runner = BatchRunner::new(opts.jobs.max(1))
        .with_cancel(cancel.clone())
        .with_fail_fast(opts.fail_fast);
    if let Some(ms) = opts.deadline_ms {
        runner = runner.with_deadline(Duration::from_millis(ms));
    }
    if let Some(max) = opts.max_backtracks {
        runner = runner.with_budget(Budget::unlimited().with_backtracks(max));
    }
    runner
}

/// Admission control: enqueue `job` or refuse with `overloaded`.
///
/// `submitted` and `overloaded` advance while the queue lock is still
/// held: a snapshot taken under that lock must see the admission frontier
/// and the queue depth agree (incrementing after `drop(queue)` opens a
/// window where a shed request is visible in neither counter nor queue,
/// breaking the accounting identity documented on [`Counters`]).
fn admit(shared: &Arc<Shared>, reply: &ReplyHandle, job: Job) {
    let mut queue = shared.queue.lock().expect("queue lock poisoned");
    shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
    if queue.len() >= shared.queue_cap {
        shared.counters.overloaded.fetch_add(1, Ordering::Relaxed);
        drop(queue);
        reply.send(&error_response(
            job.id.as_ref(),
            &ProtoError::new(
                ErrorCode::Overloaded,
                format!(
                    "work queue is full ({} pending); retry later",
                    shared.queue_cap
                ),
            ),
        ));
        return;
    }
    queue.push_back(job);
    drop(queue);
    shared.job_ready.notify_one();
}

#[allow(clippy::too_many_arguments)]
fn submit_checks(
    shared: &Arc<Shared>,
    cancel: &CancelToken,
    reply: &ReplyHandle,
    id: Option<Json>,
    op: &'static str,
    circuit_key: &str,
    named: NamedChecks,
    opts: RunOpts,
) {
    // Resolve the registry entry and the outputs inline: lookup failures
    // answer immediately instead of consuming a queue slot.
    let entry = match shared.registry.lookup(circuit_key) {
        Ok(entry) => entry,
        Err(e) => {
            reply.send(&error_response(id.as_ref(), &e));
            return;
        }
    };
    let (names, checks): (Vec<String>, Vec<(NetId, i64)>) = match named {
        NamedChecks::Explicit(pairs) => {
            let mut names = Vec::with_capacity(pairs.len());
            let mut checks = Vec::with_capacity(pairs.len());
            for (name, delta) in pairs {
                match resolve_output(&entry.session, &name) {
                    Ok(net) => {
                        names.push(name);
                        checks.push((net, delta));
                    }
                    Err(e) => {
                        reply.send(&error_response(id.as_ref(), &e));
                        return;
                    }
                }
            }
            (names, checks)
        }
        NamedChecks::AllOutputs(delta) => entry
            .circuit
            .outputs()
            .iter()
            .map(|&o| (entry.circuit.net(o).name().to_string(), (o, delta)))
            .unzip(),
    };
    let runner = build_runner(&opts, cancel);
    let shared_for_job = shared.clone();
    let job_id = id.clone();
    admit(
        shared,
        reply,
        Job {
            reply: reply.clone(),
            id,
            work: Box::new(move || {
                let batch = if opts.engine == Engine::Narrow {
                    runner.run(&entry.session, &checks)
                } else {
                    // The registered session is engine-agnostic; the
                    // request's `opts.engine` picks the backend per call.
                    ltt_sat::run_checks(
                        &entry.session,
                        opts.engine,
                        &checks,
                        &runner_budget(&runner),
                        opts.fail_fast,
                    )
                };
                // Feed the entry's result cache: a later `patch` transplants
                // these for outputs its edits cannot reach.
                entry.cache_reports(&batch.reports);
                let tripped = batch
                    .reports
                    .iter()
                    .filter(|r| !r.completeness.is_exact())
                    .count() as u64;
                if tripped > 0 {
                    shared_for_job
                        .counters
                        .budget_tripped
                        .fetch_add(tripped, Ordering::Relaxed);
                }
                ok_response(op, job_id.as_ref(), batch_json(&batch, &names))
            }),
        },
    );
}

fn submit_delay(
    shared: &Arc<Shared>,
    cancel: &CancelToken,
    reply: &ReplyHandle,
    id: Option<Json>,
    circuit_key: &str,
    output: Option<String>,
    opts: RunOpts,
) {
    let entry = match shared.registry.lookup(circuit_key) {
        Ok(entry) => entry,
        Err(e) => {
            reply.send(&error_response(id.as_ref(), &e));
            return;
        }
    };
    let targets: Vec<NetId> = match &output {
        Some(name) => match resolve_output(&entry.session, name) {
            Ok(net) => vec![net],
            Err(e) => {
                reply.send(&error_response(id.as_ref(), &e));
                return;
            }
        },
        None => entry.circuit.outputs().to_vec(),
    };
    let runner = build_runner(&opts, cancel);
    let shared_for_job = shared.clone();
    let job_id = id.clone();
    admit(
        shared,
        reply,
        Job {
            reply: reply.clone(),
            id,
            work: Box::new(move || {
                // A whole-circuit request uses the batch engine's isolated
                // all-outputs search; a single output runs the search
                // directly under the same merged budget.
                let results: Vec<Json> = if opts.engine != Engine::Narrow {
                    // SAT/hybrid searches run in place, sequentially: the
                    // backend is the cross-check path, not the throughput
                    // path, and every probe already shares the merged
                    // budget (deadline, cancel, backtrack cap).
                    let budget = runner_budget(&runner);
                    targets
                        .iter()
                        .map(|&o| {
                            let search = ltt_sat::exact_delay_with_engine(
                                &entry.session,
                                opts.engine,
                                o,
                                &budget,
                            );
                            if !search.proven_exact {
                                shared_for_job
                                    .counters
                                    .budget_tripped
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            delay_json(&search, entry.circuit.net(o).name())
                        })
                        .collect()
                } else if output.is_some() {
                    let budget = runner_budget(&runner);
                    let search = entry.session.exact_delay_budgeted(targets[0], &budget);
                    let name = entry.circuit.net(targets[0]).name().to_string();
                    if !search.proven_exact {
                        shared_for_job
                            .counters
                            .budget_tripped
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    vec![delay_json(&search, &name)]
                } else {
                    entry
                        .session
                        .circuit()
                        .outputs()
                        .iter()
                        .zip(runner.try_exact_delays(&entry.session))
                        .map(|(&o, result)| {
                            let name = entry.circuit.net(o).name();
                            match result {
                                Ok(search) => {
                                    if !search.proven_exact {
                                        shared_for_job
                                            .counters
                                            .budget_tripped
                                            .fetch_add(1, Ordering::Relaxed);
                                    }
                                    delay_json(&search, name)
                                }
                                Err(e) => Json::obj([
                                    ("output", Json::str(name)),
                                    ("error", Json::str(e.to_string())),
                                ]),
                            }
                        })
                        .collect()
                };
                ok_response(
                    "delay",
                    job_id.as_ref(),
                    vec![("results".to_string(), Json::Arr(results))],
                )
            }),
        },
    );
}

/// Executes a `patch`: applies the edits through the registry (which
/// rebases the parent's session and transplants clean-cone state), then —
/// when the request bundles checks — runs them against the patched entry,
/// serving cached transplanted reports without re-execution.
///
/// The patch itself runs inline on the reader thread, like `register`:
/// that keeps pipelined follow-up requests naming the patched id ordered
/// after its registration. Only the bundled checks go through admission.
#[allow(clippy::too_many_arguments)]
fn submit_patch(
    shared: &Arc<Shared>,
    cancel: &CancelToken,
    reply: &ReplyHandle,
    id: Option<Json>,
    circuit_key: &str,
    name: Option<String>,
    edits: Vec<EditSpec>,
    checks: Option<CheckSet>,
    opts: RunOpts,
) {
    let outcome = match shared.registry.patch(circuit_key, name.as_deref(), &edits) {
        Ok(outcome) => outcome,
        Err(e) => {
            reply.send(&error_response(id.as_ref(), &e));
            return;
        }
    };
    let entry = outcome.entry.clone();
    let patch_fields = vec![
        ("circuit".to_string(), Json::str(entry.id.clone())),
        ("name".to_string(), Json::str(entry.name.clone())),
        ("cached".to_string(), Json::Bool(outcome.resident)),
        ("structural".to_string(), Json::Bool(outcome.structural)),
        (
            "dirty".to_string(),
            Json::Arr(outcome.dirty.iter().map(|d| Json::str(d.clone())).collect()),
        ),
        (
            "transplanted".to_string(),
            Json::Int(outcome.transplanted as i64),
        ),
    ];
    let Some(checks) = checks else {
        reply.send(&ok_response("patch", id.as_ref(), patch_fields));
        return;
    };
    let (names, checks): (Vec<String>, Vec<(NetId, i64)>) = match checks {
        CheckSet::Explicit(pairs) => {
            let mut names = Vec::with_capacity(pairs.len());
            let mut resolved = Vec::with_capacity(pairs.len());
            for (name, delta) in pairs {
                match resolve_output(&entry.session, &name) {
                    Ok(net) => {
                        names.push(name);
                        resolved.push((net, delta));
                    }
                    Err(e) => {
                        reply.send(&error_response(id.as_ref(), &e));
                        return;
                    }
                }
            }
            (names, resolved)
        }
        CheckSet::AllOutputs(delta) => entry
            .circuit
            .outputs()
            .iter()
            .map(|&o| (entry.circuit.net(o).name().to_string(), (o, delta)))
            .unzip(),
    };
    let runner = build_runner(&opts, cancel);
    let shared_for_job = shared.clone();
    let job_id = id.clone();
    admit(
        shared,
        reply,
        Job {
            reply: reply.clone(),
            id,
            work: Box::new(move || {
                let (batch, reused) = run_with_reuse(&runner, &entry, &checks);
                let tripped = batch
                    .reports
                    .iter()
                    .filter(|r| !r.completeness.is_exact())
                    .count() as u64;
                if tripped > 0 {
                    shared_for_job
                        .counters
                        .budget_tripped
                        .fetch_add(tripped, Ordering::Relaxed);
                }
                let mut fields = patch_fields;
                fields.append(&mut batch_json_with_reuse(&batch, &names, &reused));
                ok_response("patch", job_id.as_ref(), fields)
            }),
        },
    );
}

/// Runs `checks` against `entry`, serving any check whose exact report is
/// already cached (transplanted across a patch, or produced by an earlier
/// request) without re-executing it. Returns the merged batch — reports
/// and errors in *request* order — plus the per-report reuse flags.
fn run_with_reuse(
    runner: &BatchRunner,
    entry: &Arc<CircuitEntry>,
    checks: &[(NetId, i64)],
) -> (BatchCheck, Vec<bool>) {
    let cached: Vec<Option<VerifyReport>> = checks
        .iter()
        .map(|&(output, delta)| entry.cached_report(output, delta))
        .collect();
    // Positions (in request order) of the checks that must actually run.
    let to_run_pos: Vec<usize> = (0..checks.len()).filter(|&i| cached[i].is_none()).collect();
    let to_run: Vec<(NetId, i64)> = to_run_pos.iter().map(|&i| checks[i]).collect();
    let mut batch = runner.run(&entry.session, &to_run);
    entry.cache_reports(&batch.reports);
    // Remap the fresh slots back to request-order indices.
    for error in &mut batch.errors {
        error.index = to_run_pos[error.index];
    }
    let mut fresh = batch.reports.drain(..);
    let mut reports = Vec::with_capacity(checks.len());
    let mut reused = Vec::with_capacity(checks.len());
    let errored = |i: usize| batch.errors.iter().any(|e| e.index == i);
    for (i, slot) in cached.into_iter().enumerate() {
        match slot {
            Some(report) => {
                reports.push(report);
                reused.push(true);
            }
            None => {
                if !errored(i) {
                    reports.push(fresh.next().expect("one fresh report per clean run slot"));
                    reused.push(false);
                }
            }
        }
    }
    drop(fresh);
    batch.reports = reports;
    // Fold the served-from-cache checks into the summary so the outcome
    // and the counters describe the whole request, not just the rerun.
    for (report, &was_reused) in batch.reports.iter().zip(&reused) {
        if !was_reused {
            continue;
        }
        batch.summary.checks += 1;
        batch.summary.backtracks = batch.summary.backtracks.saturating_add(report.backtracks);
        match &report.verdict {
            Verdict::NoViolation { .. } => batch.summary.no_violation += 1,
            Verdict::Violation { .. } => batch.summary.violations += 1,
            Verdict::Possible | Verdict::Abandoned => batch.summary.undecided += 1,
        }
    }
    (batch, reused)
}

/// [`batch_json`] with the merged reports re-serialized to carry their
/// `"reused"` flags (`reused[i]` belongs to `reports[i]`).
fn batch_json_with_reuse(
    batch: &BatchCheck,
    check_names: &[String],
    reused: &[bool],
) -> Vec<(String, Json)> {
    let mut fields = batch_json(batch, check_names);
    let failed = |i: usize| batch.errors.iter().any(|e| e.index == i);
    let report_names = check_names
        .iter()
        .enumerate()
        .filter(|&(i, _)| !failed(i))
        .map(|(_, name)| name);
    let reports: Vec<Json> = batch
        .reports
        .iter()
        .zip(report_names)
        .zip(reused)
        .map(|((r, name), &was_reused)| reused_report_json(r, name, was_reused))
        .collect();
    for (key, value) in &mut fields {
        if key == "reports" {
            *value = Json::Arr(reports);
            break;
        }
    }
    fields
}

/// The per-request budget equivalent to what `runner` would apply per
/// check — used for the single-output delay search, which runs on the
/// session directly rather than through the batch map.
fn runner_budget(runner: &BatchRunner) -> Budget {
    // The runner was built by `build_runner`, so its controls are exactly:
    // external cancel token(s), optional deadline, optional backtrack cap.
    // Re-deriving the merged budget through a 1-item batch would work too,
    // but the search API takes a Budget, so expose the same combination.
    runner.per_check_budget()
}

fn status_response(shared: &Shared, id: Option<&Json>) -> Json {
    let registry = shared.registry.stats();
    let snap = shared.snapshot();
    let int = |v: u64| Json::Int(v.min(i64::MAX as u64) as i64);
    ok_response(
        "status",
        id,
        vec![
            (
                "uptime_ms".to_string(),
                Json::Int(shared.started.elapsed().as_millis().min(i64::MAX as u128) as i64),
            ),
            ("draining".to_string(), Json::Bool(shared.draining())),
            (
                "registry".to_string(),
                Json::obj([
                    // try_from + clamp, not `as`: a pathological
                    // `--registry-cap`/`--queue-cap` above `i64::MAX` must
                    // saturate in the report, not wrap negative.
                    (
                        "entries",
                        Json::Int(i64::try_from(registry.entries).unwrap_or(i64::MAX)),
                    ),
                    (
                        "capacity",
                        Json::Int(i64::try_from(registry.capacity).unwrap_or(i64::MAX)),
                    ),
                    ("hits", int(registry.hits)),
                    ("misses", int(registry.misses)),
                    ("evictions", int(registry.evictions)),
                    (
                        "hit_rate",
                        registry.hit_rate().map_or(Json::Null, Json::Float),
                    ),
                ]),
            ),
            (
                "queue".to_string(),
                Json::obj([
                    ("depth", int(snap.queued)),
                    (
                        "capacity",
                        Json::Int(i64::try_from(shared.queue_cap).unwrap_or(i64::MAX)),
                    ),
                ]),
            ),
            (
                "requests".to_string(),
                Json::obj([
                    ("submitted", int(snap.submitted)),
                    ("completed_ok", int(snap.completed_ok)),
                    ("in_flight", int(snap.in_flight)),
                    ("overloaded", int(snap.overloaded)),
                    ("budget_tripped", int(snap.budget_tripped)),
                    ("panicked", int(snap.panicked)),
                    ("too_large", int(snap.too_large)),
                ]),
            ),
            (
                "connections".to_string(),
                Json::obj([
                    ("total", int(snap.connections_total)),
                    ("open", int(snap.connections_open)),
                    ("disconnect_cancels", int(snap.disconnect_cancels)),
                ]),
            ),
        ],
    )
}

/// The `metrics` reply: the same coherent snapshot as `status`, rendered
/// in Prometheus text exposition format 0.0.4 inside a JSON envelope
/// (`content_type` + `body`). Scrapers unwrap `body`; everything before
/// the envelope is plain `NAME VALUE` samples plus the request-latency
/// histogram, from which p50/p90/p99 are derivable.
fn metrics_response(shared: &Shared, id: Option<&Json>) -> Json {
    use crate::metrics::{render_gauge_f64, render_sample};
    let registry = shared.registry.stats();
    let snap = shared.snapshot();
    let mut body = String::new();
    render_gauge_f64(
        &mut body,
        "ltt_uptime_seconds",
        "seconds since the daemon started",
        shared.started.elapsed().as_secs_f64(),
    );
    render_sample(
        &mut body,
        "ltt_draining",
        "gauge",
        "1 while the server is draining after shutdown",
        u64::from(shared.draining()),
    );
    render_sample(
        &mut body,
        "ltt_requests_submitted_total",
        "counter",
        "requests that reached admission control (enqueued or shed)",
        snap.submitted,
    );
    render_sample(
        &mut body,
        "ltt_requests_completed_total",
        "counter",
        "jobs whose handler returned normally",
        snap.completed_ok,
    );
    render_sample(
        &mut body,
        "ltt_requests_panicked_total",
        "counter",
        "jobs whose handler panicked (answered with an internal error)",
        snap.panicked,
    );
    render_sample(
        &mut body,
        "ltt_requests_shed_total",
        "counter",
        "requests refused at admission because the queue was full",
        snap.overloaded,
    );
    render_sample(
        &mut body,
        "ltt_requests_budget_tripped_total",
        "counter",
        "checks cut short by a deadline, backtrack cap, or cancellation",
        snap.budget_tripped,
    );
    render_sample(
        &mut body,
        "ltt_requests_too_large_total",
        "counter",
        "request lines refused for exceeding the line-length cap",
        snap.too_large,
    );
    render_sample(
        &mut body,
        "ltt_requests_in_flight",
        "gauge",
        "jobs currently executing on workers",
        snap.in_flight,
    );
    render_sample(
        &mut body,
        "ltt_queue_depth",
        "gauge",
        "admitted jobs waiting for a worker",
        snap.queued,
    );
    render_sample(
        &mut body,
        "ltt_queue_capacity",
        "gauge",
        "admission bound beyond which requests are shed",
        shared.queue_cap as u64,
    );
    render_sample(
        &mut body,
        "ltt_connections_total",
        "counter",
        "connections accepted since start",
        snap.connections_total,
    );
    render_sample(
        &mut body,
        "ltt_connections_open",
        "gauge",
        "connections currently open",
        snap.connections_open,
    );
    render_sample(
        &mut body,
        "ltt_disconnect_cancels_total",
        "counter",
        "in-flight requests cancelled by a client disconnect",
        snap.disconnect_cancels,
    );
    render_sample(
        &mut body,
        "ltt_registry_entries",
        "gauge",
        "circuits resident in the registry",
        registry.entries as u64,
    );
    render_sample(
        &mut body,
        "ltt_registry_capacity",
        "gauge",
        "registry LRU capacity",
        registry.capacity as u64,
    );
    render_sample(
        &mut body,
        "ltt_registry_hits_total",
        "counter",
        "registry lookups served from cache",
        registry.hits,
    );
    render_sample(
        &mut body,
        "ltt_registry_misses_total",
        "counter",
        "registry lookups that parsed and prepared a circuit",
        registry.misses,
    );
    render_sample(
        &mut body,
        "ltt_registry_evictions_total",
        "counter",
        "circuits evicted by the LRU bound",
        registry.evictions,
    );
    if let Some(rate) = registry.hit_rate() {
        render_gauge_f64(
            &mut body,
            "ltt_registry_hit_ratio",
            "hits / (hits + misses); absent before any traffic",
            rate,
        );
    }
    shared.latency.render(
        &mut body,
        "ltt_request_duration_seconds",
        "handler execution latency of finished jobs",
    );
    ok_response(
        "metrics",
        id,
        vec![
            (
                "content_type".to_string(),
                Json::str("text/plain; version=0.0.4"),
            ),
            ("body".to_string(), Json::str(body)),
        ],
    )
}
