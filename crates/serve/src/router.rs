//! `ltt-router` — the fault-tolerant front tier of a sharded serve fleet.
//!
//! The router speaks the exact same newline-delimited JSON protocol as a
//! single `ltt-serve` daemon, so clients cannot tell (and need not care)
//! whether they are talking to one process or a fleet. Behind it, N
//! backends each run the full single-daemon stack; the router owns
//! placement, retry, and failure handling:
//!
//! * **Placement** — circuits are consistent-hashed (FNV over virtual
//!   nodes) onto backends by *content id*, so the same circuit always
//!   lands on the same owner and re-registration after a backend death
//!   converges instead of scattering. `register` fans out to the owner
//!   plus `replicas - 1` successors, giving hot circuits more than one
//!   home before anything fails.
//! * **Retry** — check traffic walks the owner's candidate list (the
//!   whole ring, in ring order) with per-backend circuit breakers and
//!   exponential backoff with deterministic jitter between rounds. An
//!   `overloaded` reply moves to the next candidate immediately (the
//!   backend is healthy, just full); a transport failure feeds the
//!   breaker.
//! * **Failover** — a backend that answers `unknown_circuit` (it died
//!   and came back empty, or it never held the circuit) is re-registered
//!   on the spot from the router's registration cache, then retried.
//! * **The exactly-one-reply invariant** — every accepted request line
//!   gets exactly one reply: a backend reply forwarded **verbatim**
//!   (hence bit-identical to a direct [`BatchRunner`](ltt_core::BatchRunner)
//!   run, by the single-daemon contract), or a structured error
//!   (`overloaded` when every live candidate is shedding, `unavailable`
//!   when no candidate could answer at all). Never a hang, never a
//!   wrong answer, never two replies.
//!
//! Health checking reuses the protocol's own `status` op: a background
//! thread probes every backend each interval, flips the health gauge,
//! and — because probes run through the same transport accounting as
//! requests — heals an open breaker as soon as its backend answers
//! again. Graceful drain reuses `shutdown`: the router stops accepting,
//! answers everything admitted, then (for in-process fleets) drains its
//! backends.

use crate::backend::{Backend, BackendOpts};
use crate::lineio::{CappedLineReader, LineRead};
use crate::metrics::{render_family, render_gauge_f64, render_labeled, render_sample, Histogram};
use crate::proto::{
    error_response, ok_response, EditSpec, ErrorCode, ProtoError, Request, RequestBody,
};
use crate::registry::{content_id, patched_id};
use crate::server::{ServeConfig, Server, ServerHandle, DEFAULT_MAX_LINE_BYTES};
use crate::wire::{decode, Json};
use ltt_core::available_jobs;
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked readers, idle workers, the accept loop, and the
/// health thread re-check the drain flag.
const POLL: Duration = Duration::from_millis(100);

/// Virtual nodes per backend on the hash ring. 64 vnodes keep the load
/// split within a few percent of even for small fleets while the ring
/// stays tiny (N × 64 entries).
const VNODES: usize = 64;

/// Router configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Addresses of externally-managed backends. Ignored when `spawn` is
    /// non-zero.
    pub backends: Vec<String>,
    /// Spawn this many in-process backends on ephemeral ports instead of
    /// connecting to `backends` (the test/bench topology; production
    /// points at external daemons).
    pub spawn: usize,
    /// Worker threads per spawned backend (0 = one per hardware thread).
    pub backend_jobs: usize,
    /// Admission bound per spawned backend.
    pub backend_queue_cap: usize,
    /// Registry capacity per spawned backend.
    pub backend_registry_cap: usize,
    /// Backends each circuit is registered on (owner + successors).
    pub replicas: usize,
    /// Router forwarding threads (0 = one per hardware thread, min 4).
    pub jobs: usize,
    /// Router admission bound: queued forwards beyond this are shed with
    /// `overloaded`.
    pub queue_cap: usize,
    /// Full passes over the candidate list before giving up (the first
    /// pass plus `max_retries` backed-off retry rounds).
    pub max_retries: u32,
    /// First-round retry backoff (doubles per round, jittered).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Bound on backend connection establishment.
    pub connect_timeout: Duration,
    /// Bound on one backend round trip.
    pub rpc_timeout: Duration,
    /// Consecutive transport failures that open a backend's breaker.
    pub breaker_threshold: u32,
    /// Open-breaker cooldown before a half-open probe.
    pub breaker_cooldown: Duration,
    /// Health-probe period.
    pub health_interval: Duration,
    /// Request/reply line-length cap.
    pub max_line_bytes: usize,
    /// Registrations remembered for failover re-registration.
    pub reg_cache_cap: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            spawn: 0,
            backend_jobs: 0,
            backend_queue_cap: 64,
            backend_registry_cap: 16,
            replicas: 2,
            jobs: 0,
            queue_cap: 256,
            max_retries: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            connect_timeout: Duration::from_secs(1),
            rpc_timeout: Duration::from_secs(30),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
            health_interval: Duration::from_secs(1),
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            reg_cache_cap: 64,
        }
    }
}

/// A cached registration: everything needed to replay a circuit — the
/// root `register` plus any chain of `patch` lines — on a backend that
/// answered `unknown_circuit`.
#[derive(Clone)]
struct RegEntry {
    name: String,
    format: String,
    source: String,
    delay: u32,
    /// The *root* content id of this entry's patch chain — the ring
    /// placement key. A patched revision routes where its root lives, so
    /// incremental re-verification lands on the backend already holding
    /// the warm parent session.
    route: String,
    /// Canonical `patch` request lines (no ids, no checks) from the root
    /// to this revision, in application order.
    patches: Vec<String>,
}

impl RegEntry {
    /// The replayable `register` request line (no `id`: the replay is
    /// internal, its reply is consumed by the router).
    fn register_line(&self) -> String {
        Json::obj([
            ("op", Json::str("register")),
            ("name", Json::str(self.name.clone())),
            ("format", Json::str(self.format.clone())),
            ("source", Json::str(self.source.clone())),
            ("delay", Json::Int(i64::from(self.delay))),
        ])
        .encode()
    }

    /// Every line needed to reconstruct this revision from nothing: the
    /// root registration, then the patch chain.
    fn replay_lines(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(1 + self.patches.len());
        lines.push(self.register_line());
        lines.extend(self.patches.iter().cloned());
        lines
    }
}

/// Registration cache: keyed by content id, with registered names as
/// aliases, FIFO-bounded.
#[derive(Default)]
struct RegCache {
    by_id: HashMap<String, Arc<RegEntry>>,
    alias: HashMap<String, String>,
    order: VecDeque<String>,
}

impl RegCache {
    fn insert(&mut self, id: String, entry: RegEntry, cap: usize) {
        self.insert_full(id, entry, Some(true), cap);
    }

    /// Records a patched revision derived from `parent_id`: same netlist
    /// provenance, the parent's patch chain plus `patch_line`, routed at
    /// the parent's root. `alias_name` (the patch's optional new name)
    /// aliases the child when given — a nameless patch must not rebind
    /// the parent's name away from the parent.
    fn insert_patched(
        &mut self,
        parent_id: &str,
        child_id: String,
        alias_name: Option<&str>,
        patch_line: String,
        cap: usize,
    ) {
        let Some(parent) = self.by_id.get(parent_id).cloned() else {
            return;
        };
        let mut child = (*parent).clone();
        child.route = parent.route.clone();
        child.patches.push(patch_line);
        if let Some(name) = alias_name {
            child.name = name.to_string();
        }
        self.insert_full(child_id, child, alias_name.map(|_| true), cap);
    }

    /// The shared insert: `alias` says whether to bind the entry's name
    /// as an alias (`None`/`Some(false)` leaves existing bindings alone).
    fn insert_full(&mut self, id: String, entry: RegEntry, alias: Option<bool>, cap: usize) {
        if !self.by_id.contains_key(&id) {
            self.order.push_back(id.clone());
            while self.order.len() > cap.max(1) {
                if let Some(evicted) = self.order.pop_front() {
                    self.by_id.remove(&evicted);
                    self.alias.retain(|_, v| *v != evicted);
                }
            }
        }
        if alias == Some(true) {
            self.alias.insert(entry.name.clone(), id.clone());
        }
        self.by_id.insert(id, Arc::new(entry));
    }

    /// Resolves a circuit key (content id or registered name) to the
    /// canonical content id plus the cached registration, if known.
    fn resolve(&self, key: &str) -> Option<(String, Arc<RegEntry>)> {
        let id = if self.by_id.contains_key(key) {
            key.to_string()
        } else {
            self.alias.get(key)?.clone()
        };
        let entry = self.by_id.get(&id)?.clone();
        Some((id, entry))
    }
}

/// Monotonic router counters (all relaxed; no cross-counter identity is
/// claimed — forwarding outcomes are attributed exactly once each).
#[derive(Default)]
struct RouterCounters {
    /// Request lines that parsed (any op).
    requests_total: AtomicU64,
    /// Check-work replies obtained from a backend and forwarded verbatim.
    forwarded_total: AtomicU64,
    /// Requests answered `unavailable` after exhausting every candidate.
    unavailable_total: AtomicU64,
    /// Requests shed at the *router's* admission queue.
    shed_total: AtomicU64,
    /// Extra attempts after the first (next candidate or next round).
    retries_total: AtomicU64,
    /// Attempts abandoned because a transport error moved the request to
    /// another backend.
    failovers_total: AtomicU64,
    /// `unknown_circuit` failovers repaired by replaying a cached
    /// registration.
    reregister_total: AtomicU64,
    /// Request lines refused for exceeding the line cap.
    too_large_total: AtomicU64,
    /// Request lines that failed to parse.
    bad_request_total: AtomicU64,
}

/// What the router must record about a `patch` once a backend accepts
/// it — enough to route and replay the patched revision later.
struct PatchMeta {
    /// Canonical content id of the parent revision.
    parent_id: String,
    /// The (router-computed) content id of the patched revision.
    child_id: String,
    /// The optional new alias the patch binds.
    alias: Option<String>,
    /// The canonical replayable patch line (id-addressed, no checks).
    replay_line: String,
}

/// One queued forward: the raw request line plus routing metadata.
struct RouterJob {
    /// The raw request text, forwarded to backends byte-for-byte.
    line: String,
    /// The repair key (canonical content id when resolvable): what the
    /// `unknown_circuit` replay resolves in the registration cache.
    key: String,
    /// The ring-placement key: the root id of the circuit's patch chain
    /// (equal to `key` for unpatched circuits), so a whole chain —
    /// parent, patches, and their checks — colocates on one owner set.
    route: String,
    /// Set on `patch` forwards: cached on success so later requests can
    /// route to and replay the patched revision.
    patch: Option<PatchMeta>,
    /// Correlation id for router-generated error replies.
    id: Option<Json>,
    reply: ClientReply,
}

/// The client-side writer half (same locked line-granularity discipline
/// as the single daemon).
#[derive(Clone)]
struct ClientReply(Arc<Mutex<TcpStream>>);

impl ClientReply {
    fn send_line(&self, line: &str) {
        let mut stream = self.0.lock().expect("reply lock poisoned");
        let _ = writeln!(stream, "{line}");
        let _ = stream.flush();
    }

    fn send(&self, response: &Json) {
        self.send_line(&response.encode());
    }
}

/// State shared by the router's accept loop, readers, workers, health
/// thread, and handles.
struct RouterShared {
    backends: Vec<Arc<Backend>>,
    /// Sorted (hash, backend index) ring.
    ring: Vec<(u64, usize)>,
    reg_cache: Mutex<RegCache>,
    queue: Mutex<VecDeque<RouterJob>>,
    job_ready: Condvar,
    draining: AtomicBool,
    counters: RouterCounters,
    /// Admission-to-reply latency of forwarded requests.
    latency: Histogram,
    /// Monotonic per-request salt for backoff jitter.
    jitter_salt: AtomicU64,
    config: RouterConfig,
    started: Instant,
}

impl RouterShared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
        self.job_ready.notify_all();
    }

    /// The candidate backends for `key`: every distinct backend, in ring
    /// order starting at the owner. The first `replicas` are the
    /// registration fan-out set; retry walks the whole list.
    fn candidates(&self, key: &str) -> Vec<usize> {
        let point = fnv64(key.as_bytes());
        let start = self
            .ring
            .partition_point(|&(hash, _)| hash < point)
            .checked_rem(self.ring.len())
            .unwrap_or(0);
        let mut seen = vec![false; self.backends.len()];
        let mut order = Vec::with_capacity(self.backends.len());
        for i in 0..self.ring.len() {
            let (_, backend) = self.ring[(start + i) % self.ring.len()];
            if !seen[backend] {
                seen[backend] = true;
                order.push(backend);
                if order.len() == self.backends.len() {
                    break;
                }
            }
        }
        order
    }
}

/// Ring-placement hash: 64-bit FNV-1a (the same function the registry's
/// content ids use) pushed through a murmur-style finalizer. Raw FNV of
/// short, similar keys (`addr#vnode`) leaves the high bits — which drive
/// the ring's sort order — badly clustered; the finalizer's avalanche
/// spreads the vnodes evenly.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^ (hash >> 33)
}

/// Builds the consistent-hash ring: `VNODES` points per backend, keyed
/// by `addr#vnode`, sorted by hash. Ties (astronomically unlikely) break
/// by backend index, deterministically.
fn build_ring(backends: &[Arc<Backend>]) -> Vec<(u64, usize)> {
    let mut ring = Vec::with_capacity(backends.len() * VNODES);
    for (index, backend) in backends.iter().enumerate() {
        for vnode in 0..VNODES {
            let key = format!("{}#{vnode}", backend.addr());
            ring.push((fnv64(key.as_bytes()), index));
        }
    }
    ring.sort_unstable();
    ring
}

/// XorShift64 — deterministic jitter without pulling in a PRNG crate.
fn xorshift64(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// A control handle onto a running router.
#[derive(Clone)]
pub struct RouterHandle {
    shared: Arc<RouterShared>,
    addr: SocketAddr,
    /// Handles of in-process backends (empty for external fleets) — the
    /// chaos surface: tests kill or drain individual backends through
    /// these.
    spawned: Arc<Vec<ServerHandle>>,
}

impl RouterHandle {
    /// The router's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins a graceful drain, exactly like a `shutdown` request.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// The backend addresses, in ring-index order.
    pub fn backend_addrs(&self) -> Vec<String> {
        self.shared
            .backends
            .iter()
            .map(|b| b.addr().to_string())
            .collect()
    }

    /// Kills spawned backend `index` abruptly (see [`ServerHandle::kill`]).
    /// Panics for external fleets or an out-of-range index — this is a
    /// chaos-test surface, not production API.
    pub fn kill_backend(&self, index: usize) {
        self.spawned[index].kill();
    }

    /// Control handles of the spawned in-process backends.
    pub fn spawned_backends(&self) -> &[ServerHandle] {
        &self.spawned
    }
}

/// The router daemon. [`Router::bind`] claims sockets (and spawns the
/// in-process fleet when asked); [`Router::run`] serves until a drain
/// completes.
pub struct Router {
    listener: TcpListener,
    shared: Arc<RouterShared>,
    spawned: Arc<Vec<ServerHandle>>,
    backend_threads: Vec<JoinHandle<std::io::Result<()>>>,
}

impl Router {
    /// Binds the router (and, with `config.spawn > 0`, an in-process
    /// fleet of backends on ephemeral ports). No router threads run
    /// until [`Router::run`].
    pub fn bind(mut config: RouterConfig) -> std::io::Result<Router> {
        let mut spawned = Vec::new();
        let mut backend_threads = Vec::new();
        if config.spawn > 0 {
            config.backends.clear();
            for _ in 0..config.spawn {
                let server = Server::bind(&ServeConfig {
                    addr: "127.0.0.1:0".to_string(),
                    jobs: config.backend_jobs,
                    queue_cap: config.backend_queue_cap,
                    registry_cap: config.backend_registry_cap,
                    max_line_bytes: config.max_line_bytes,
                })?;
                config.backends.push(server.local_addr()?.to_string());
                spawned.push(server.handle());
                backend_threads.push(std::thread::spawn(move || server.run()));
            }
        }
        if config.backends.is_empty() {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "router needs at least one backend (`backends` or `spawn`)",
            ));
        }
        let opts = BackendOpts {
            connect_timeout: config.connect_timeout,
            rpc_timeout: config.rpc_timeout,
            max_line_bytes: config.max_line_bytes,
            breaker_threshold: config.breaker_threshold,
            breaker_cooldown: config.breaker_cooldown,
        };
        let backends: Vec<Arc<Backend>> = config
            .backends
            .iter()
            .map(|addr| Arc::new(Backend::new(addr.clone(), opts)))
            .collect();
        let ring = build_ring(&backends);
        let listener = TcpListener::bind(&config.addr)?;
        let shared = Arc::new(RouterShared {
            backends,
            ring,
            reg_cache: Mutex::new(RegCache::default()),
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            draining: AtomicBool::new(false),
            counters: RouterCounters::default(),
            latency: Histogram::new(),
            jitter_salt: AtomicU64::new(0x9e37_79b9_7f4a_7c15),
            config,
            started: Instant::now(),
        });
        Ok(Router {
            listener,
            shared,
            spawned: Arc::new(spawned),
            backend_threads,
        })
    }

    /// The bound address (the real ephemeral port after binding `:0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A control handle usable from other threads.
    pub fn handle(&self) -> RouterHandle {
        RouterHandle {
            shared: self.shared.clone(),
            addr: self
                .listener
                .local_addr()
                .expect("bound listener has an address"),
            spawned: self.spawned.clone(),
        }
    }

    /// Serves until a `shutdown` request (or [`RouterHandle::shutdown`])
    /// drains the router. Every admitted request is answered before this
    /// returns; for in-process fleets the backends are then drained too.
    pub fn run(self) -> std::io::Result<()> {
        let Router {
            listener,
            shared,
            spawned,
            backend_threads,
        } = self;
        let worker_count = if shared.config.jobs == 0 {
            available_jobs().max(4)
        } else {
            shared.config.jobs
        };
        let workers: Vec<_> = (0..worker_count)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || router_worker_loop(&shared))
            })
            .collect();
        let health = {
            let shared = shared.clone();
            std::thread::spawn(move || health_loop(&shared))
        };
        listener.set_nonblocking(true)?;
        let mut readers = Vec::new();
        loop {
            if shared.draining() {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nodelay(true).ok();
                    let shared = shared.clone();
                    readers.push(std::thread::spawn(move || {
                        router_connection(stream, &shared);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
        // Refuse new connections at the OS level from here on.
        drop(listener);
        for worker in workers {
            let _ = worker.join();
        }
        for reader in readers {
            let _ = reader.join();
        }
        let _ = health.join();
        // The router's own clients are all answered; now drain the
        // in-process fleet (killed backends just return immediately).
        for handle in spawned.iter() {
            handle.shutdown();
        }
        for thread in backend_threads {
            let _ = thread.join();
        }
        Ok(())
    }
}

/// Runs a router with the given config, printing `listening on ADDR` and
/// the backend list to stdout before serving.
pub fn route(config: RouterConfig) -> std::io::Result<()> {
    let router = Router::bind(config)?;
    println!("listening on {}", router.local_addr()?);
    for addr in router.handle().backend_addrs() {
        println!("backend {addr}");
    }
    std::io::stdout().flush()?;
    router.run()
}

/// The health thread: probes every backend with a `status` rpc each
/// interval. Probes share the request path's transport accounting, so a
/// recovered backend's first good probe closes its breaker.
fn health_loop(shared: &RouterShared) {
    let probe = Json::obj([
        ("op", Json::str("status")),
        ("id", Json::str("__ltt_router_health")),
    ])
    .encode();
    let mut last = Instant::now() - shared.config.health_interval;
    while !shared.draining() {
        if last.elapsed() < shared.config.health_interval {
            std::thread::sleep(POLL.min(shared.config.health_interval));
            continue;
        }
        last = Instant::now();
        for backend in &shared.backends {
            let healthy = backend.rpc(&probe).is_ok();
            backend.set_healthy(healthy);
            if shared.draining() {
                return;
            }
        }
    }
}

fn router_worker_loop(shared: &Arc<RouterShared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.draining() {
                    break None;
                }
                queue = shared
                    .job_ready
                    .wait_timeout(queue, POLL)
                    .expect("queue lock poisoned")
                    .0;
            }
        };
        let Some(job) = job else { return };
        let started = Instant::now();
        let reply_line =
            forward_with_retry(shared, &job.line, &job.key, &job.route, job.id.as_ref());
        shared.latency.observe(started.elapsed());
        // A patch a backend accepted becomes routable and replayable: the
        // cache learns the child id (ring-placed at the chain's root) and
        // the replay chain grows by one line.
        if let Some(meta) = &job.patch {
            if reply_is_ok(&reply_line) {
                shared
                    .reg_cache
                    .lock()
                    .expect("reg cache lock poisoned")
                    .insert_patched(
                        &meta.parent_id,
                        meta.child_id.clone(),
                        meta.alias.as_deref(),
                        meta.replay_line.clone(),
                        shared.config.reg_cache_cap,
                    );
            }
        }
        job.reply.send_line(&reply_line);
    }
}

/// Whether a backend reply line is an `"ok":true` response.
fn reply_is_ok(reply: &str) -> bool {
    decode(reply.trim())
        .ok()
        .and_then(|json| json.get("ok").and_then(Json::as_bool))
        == Some(true)
}

/// The reply classification a forwarding attempt can produce.
enum Attempt {
    /// A reply to forward verbatim.
    Done(String),
    /// The backend shed the request (`overloaded`) — try elsewhere, and
    /// if everyone sheds, forward the last such reply honestly.
    Overloaded(String),
    /// The transport failed — feed the failover path.
    Failed,
}

/// One rpc to one backend, including the `unknown_circuit` re-register
/// repair.
fn attempt(shared: &RouterShared, backend: &Backend, line: &str, key: &str) -> Attempt {
    match backend.rpc(line) {
        Err(_) => Attempt::Failed,
        Ok(reply) => match classify(&reply) {
            ReplyKind::Overloaded => Attempt::Overloaded(reply),
            ReplyKind::UnknownCircuit => {
                // The backend is alive but empty-handed (typically: it
                // died and restarted, or it is a fresh failover target).
                // Replay the cached registration — the root `register`
                // plus any patch chain — and retry once, on this same
                // backend.
                let cached = shared
                    .reg_cache
                    .lock()
                    .expect("reg cache lock poisoned")
                    .resolve(key);
                let Some((_, entry)) = cached else {
                    return Attempt::Done(reply);
                };
                shared
                    .counters
                    .reregister_total
                    .fetch_add(1, Ordering::Relaxed);
                for replay in entry.replay_lines() {
                    if backend.rpc(&replay).is_err() {
                        return Attempt::Failed;
                    }
                }
                match backend.rpc(line) {
                    Err(_) => Attempt::Failed,
                    Ok(retry) => match classify(&retry) {
                        ReplyKind::Overloaded => Attempt::Overloaded(retry),
                        _ => Attempt::Done(retry),
                    },
                }
            }
            ReplyKind::Other => Attempt::Done(reply),
        },
    }
}

enum ReplyKind {
    Overloaded,
    UnknownCircuit,
    Other,
}

/// Inspects a backend reply's error code without disturbing the raw text
/// (which is what actually gets forwarded).
fn classify(reply: &str) -> ReplyKind {
    let Ok(json) = decode(reply.trim()) else {
        return ReplyKind::Other;
    };
    if json.get("ok").and_then(Json::as_bool) != Some(false) {
        return ReplyKind::Other;
    }
    match json
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
    {
        Some("overloaded") => ReplyKind::Overloaded,
        Some("unknown_circuit") => ReplyKind::UnknownCircuit,
        _ => ReplyKind::Other,
    }
}

/// Walks the candidate list with breaker gating, backing off between
/// rounds, until a reply is obtained or every option is exhausted.
/// Always returns exactly one reply line. `key` drives the
/// `unknown_circuit` replay; `route` drives ring placement (they differ
/// only for patched revisions, which colocate with their root).
fn forward_with_retry(
    shared: &Arc<RouterShared>,
    line: &str,
    key: &str,
    route: &str,
    id: Option<&Json>,
) -> String {
    let candidates = shared.candidates(route);
    let config = &shared.config;
    let mut last_overloaded: Option<String> = None;
    let mut seed = fnv64(line.as_bytes())
        ^ shared
            .jitter_salt
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    let mut attempts = 0u64;
    for round in 0..=config.max_retries {
        if round > 0 {
            // Exponential backoff with jitter in [base/2, backoff): the
            // deterministic xorshift stream keeps the serve tier free of
            // clock- or PRNG-dependent behavior differences under test.
            let exp = config
                .backoff_base
                .saturating_mul(1u32 << (round - 1).min(16));
            let backoff = exp.min(config.backoff_cap);
            seed = xorshift64(seed);
            let half = backoff / 2;
            let jittered = half + Duration::from_nanos(seed % half.as_nanos().max(1) as u64);
            std::thread::sleep(jittered);
        }
        for &index in &candidates {
            let backend = &shared.backends[index];
            if !backend.breaker().admit() {
                continue;
            }
            attempts += 1;
            if attempts > 1 {
                shared
                    .counters
                    .retries_total
                    .fetch_add(1, Ordering::Relaxed);
            }
            match attempt(shared, backend, line, key) {
                Attempt::Done(reply) => {
                    shared
                        .counters
                        .forwarded_total
                        .fetch_add(1, Ordering::Relaxed);
                    return reply;
                }
                Attempt::Overloaded(reply) => {
                    last_overloaded = Some(reply);
                }
                Attempt::Failed => {
                    shared
                        .counters
                        .failovers_total
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            if shared.draining() && round > 0 {
                // Draining: stop the backoff dance after the current
                // sweep so shutdown is not held up by a dead backend.
                break;
            }
        }
    }
    // Exhausted. If some live backend answered `overloaded`, forward
    // that — it is the truthful state of the fleet and tells the client
    // to retry later. Otherwise nobody answered at all: `unavailable`.
    if let Some(reply) = last_overloaded {
        shared
            .counters
            .forwarded_total
            .fetch_add(1, Ordering::Relaxed);
        return reply;
    }
    shared
        .counters
        .unavailable_total
        .fetch_add(1, Ordering::Relaxed);
    error_response(
        id,
        &ProtoError::new(
            ErrorCode::Unavailable,
            format!(
                "no backend could answer after {} round(s) over {} candidate(s)",
                config.max_retries + 1,
                candidates.len()
            ),
        ),
    )
    .encode()
}

fn router_connection(stream: TcpStream, shared: &Arc<RouterShared>) {
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let reply = match stream.try_clone() {
        Ok(w) => ClientReply(Arc::new(Mutex::new(w))),
        Err(_) => return,
    };
    let mut reader = CappedLineReader::new(BufReader::new(stream), shared.config.max_line_bytes);
    loop {
        match reader.read_line() {
            Ok(LineRead::Line(text)) => {
                let text = text.trim();
                if !text.is_empty() {
                    router_dispatch(text, shared, &reply);
                }
            }
            Ok(LineRead::TooLarge) => {
                shared
                    .counters
                    .too_large_total
                    .fetch_add(1, Ordering::Relaxed);
                reply.send(&error_response(
                    None,
                    &ProtoError::new(
                        ErrorCode::TooLarge,
                        format!(
                            "request line exceeds the {}-byte limit",
                            shared.config.max_line_bytes
                        ),
                    ),
                ));
            }
            Ok(LineRead::TimedOut) => {
                if shared.draining() {
                    return;
                }
            }
            Ok(LineRead::Eof) | Err(_) => return,
        }
    }
}

/// Parses one request line and routes it: control ops answered by the
/// router itself, `register` fanned out inline, check work queued for
/// the forwarding pool.
fn router_dispatch(text: &str, shared: &Arc<RouterShared>, reply: &ClientReply) {
    let json = match decode(text) {
        Ok(json) => json,
        Err(e) => {
            shared
                .counters
                .bad_request_total
                .fetch_add(1, Ordering::Relaxed);
            reply.send(&error_response(
                None,
                &ProtoError::new(ErrorCode::BadRequest, format!("invalid JSON: {e}")),
            ));
            return;
        }
    };
    let request = match Request::parse(&json) {
        Ok(request) => request,
        Err(e) => {
            shared
                .counters
                .bad_request_total
                .fetch_add(1, Ordering::Relaxed);
            reply.send(&error_response(json.get("id"), &e));
            return;
        }
    };
    shared
        .counters
        .requests_total
        .fetch_add(1, Ordering::Relaxed);
    let id = request.id;
    match request.body {
        RequestBody::Status => reply.send(&router_status(shared, id.as_ref())),
        RequestBody::Metrics => reply.send(&router_metrics(shared, id.as_ref())),
        RequestBody::Shutdown => {
            shared.begin_drain();
            reply.send(&ok_response("shutdown", id.as_ref(), vec![]));
        }
        RequestBody::Register {
            name,
            format,
            source,
            delay,
        } => {
            if refuse_if_draining(shared, reply, id.as_ref(), "register") {
                return;
            }
            register_fanout(
                shared,
                reply,
                id.as_ref(),
                name,
                format,
                source,
                delay,
                text,
            );
        }
        RequestBody::Check { ref circuit, .. }
        | RequestBody::BatchCheck { ref circuit, .. }
        | RequestBody::Delay { ref circuit, .. } => {
            if refuse_if_draining(shared, reply, id.as_ref(), "check work") {
                return;
            }
            // Canonicalize the routing key: a name known to the cache
            // hashes as its content id, so by-name and by-hash requests
            // for the same circuit land on the same owner — and a patched
            // revision rides its chain's root placement.
            let resolved = shared
                .reg_cache
                .lock()
                .expect("reg cache lock poisoned")
                .resolve(circuit);
            let (key, route) = match resolved {
                Some((canonical, entry)) => (canonical, entry.route.clone()),
                None => (circuit.clone(), circuit.clone()),
            };
            enqueue_forward(shared, reply, text, key, route, None, id);
        }
        RequestBody::Patch {
            ref circuit,
            ref name,
            ref edits,
            ..
        } => {
            if refuse_if_draining(shared, reply, id.as_ref(), "patch work") {
                return;
            }
            // A patch routes where its parent lives (the chain's root
            // owner set), so the backend applying it holds the warm
            // session the rebase transplants from. The child id is
            // computed router-side with the same incremental fold the
            // backend uses, so both sides agree before the reply lands.
            let resolved = shared
                .reg_cache
                .lock()
                .expect("reg cache lock poisoned")
                .resolve(circuit);
            let (key, route, patch) = match resolved {
                Some((canonical, entry)) => {
                    let child_id = patched_id(&canonical, edits);
                    let mut fields = vec![
                        ("op", Json::str("patch")),
                        ("circuit", Json::str(canonical.clone())),
                    ];
                    if let Some(n) = name {
                        fields.push(("name", Json::str(n.clone())));
                    }
                    fields.push((
                        "edits",
                        Json::Arr(edits.iter().map(EditSpec::to_json).collect()),
                    ));
                    let meta = PatchMeta {
                        parent_id: canonical.clone(),
                        child_id,
                        alias: name.clone(),
                        replay_line: Json::obj(fields).encode(),
                    };
                    (canonical, entry.route.clone(), Some(meta))
                }
                // Unknown parent: forward anyway (the backend may still
                // know it); nothing to cache or re-route.
                None => (circuit.clone(), circuit.clone(), None),
            };
            enqueue_forward(shared, reply, text, key, route, patch, id);
        }
    }
}

/// Admits one forward into the router queue (or sheds it).
fn enqueue_forward(
    shared: &Arc<RouterShared>,
    reply: &ClientReply,
    text: &str,
    key: String,
    route: String,
    patch: Option<PatchMeta>,
    id: Option<Json>,
) {
    let job = RouterJob {
        line: text.to_string(),
        key,
        route,
        patch,
        id,
        reply: reply.clone(),
    };
    let mut queue = shared.queue.lock().expect("queue lock poisoned");
    if queue.len() >= shared.config.queue_cap.max(1) {
        shared.counters.shed_total.fetch_add(1, Ordering::Relaxed);
        drop(queue);
        reply.send(&error_response(
            job.id.as_ref(),
            &ProtoError::new(
                ErrorCode::Overloaded,
                format!(
                    "router queue is full ({} pending); retry later",
                    shared.config.queue_cap
                ),
            ),
        ));
        return;
    }
    queue.push_back(job);
    drop(queue);
    shared.job_ready.notify_one();
}

fn refuse_if_draining(
    shared: &RouterShared,
    reply: &ClientReply,
    id: Option<&Json>,
    what: &str,
) -> bool {
    if shared.draining() {
        reply.send(&error_response(
            id,
            &ProtoError::new(
                ErrorCode::ShuttingDown,
                format!("router is draining; {what} refused"),
            ),
        ));
        true
    } else {
        false
    }
}

/// `register`: compute the content id router-side (the same FNV the
/// backends use, so ids agree), cache the registration for failover,
/// then register on the owner plus `replicas - 1` successors. The first
/// successful backend reply is forwarded verbatim.
#[allow(clippy::too_many_arguments)]
fn register_fanout(
    shared: &Arc<RouterShared>,
    reply: &ClientReply,
    id: Option<&Json>,
    name: String,
    format: String,
    source: String,
    delay: u32,
    raw_line: &str,
) {
    let cid = content_id(&format, delay, &source);
    shared
        .reg_cache
        .lock()
        .expect("reg cache lock poisoned")
        .insert(
            cid.clone(),
            RegEntry {
                name,
                format,
                source,
                delay,
                route: cid.clone(),
                patches: Vec::new(),
            },
            shared.config.reg_cache_cap,
        );
    let candidates = shared.candidates(&cid);
    let replicas = shared.config.replicas.clamp(1, candidates.len());
    let mut first_reply: Option<String> = None;
    let mut placed = 0usize;
    for &index in &candidates {
        let backend = &shared.backends[index];
        if !backend.breaker().admit() {
            continue;
        }
        match backend.rpc(raw_line) {
            Ok(line) => {
                if first_reply.is_none() {
                    first_reply = Some(line);
                }
                placed += 1;
                if placed == replicas {
                    break;
                }
            }
            Err(_) => {
                shared
                    .counters
                    .failovers_total
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    match first_reply {
        Some(line) => {
            shared
                .counters
                .forwarded_total
                .fetch_add(1, Ordering::Relaxed);
            reply.send_line(&line);
        }
        None => {
            shared
                .counters
                .unavailable_total
                .fetch_add(1, Ordering::Relaxed);
            reply.send(&error_response(
                id,
                &ProtoError::new(
                    ErrorCode::Unavailable,
                    "no backend accepted the registration",
                ),
            ));
        }
    }
}

fn router_status(shared: &RouterShared, id: Option<&Json>) -> Json {
    let c = &shared.counters;
    let int = |v: u64| Json::Int(v.min(i64::MAX as u64) as i64);
    let backends: Vec<Json> = shared
        .backends
        .iter()
        .map(|b| {
            Json::obj([
                ("addr", Json::str(b.addr())),
                ("healthy", Json::Bool(b.is_healthy())),
                (
                    "breaker",
                    Json::str(match b.breaker().state_code() {
                        0 => "closed",
                        1 => "open",
                        _ => "half_open",
                    }),
                ),
                ("breaker_opened", int(b.breaker().opened_total())),
                ("rpcs", int(b.rpcs_total())),
                ("errors", int(b.errors_total())),
            ])
        })
        .collect();
    let queued = shared.queue.lock().expect("queue lock poisoned").len();
    ok_response(
        "status",
        id,
        vec![
            ("role".to_string(), Json::str("router")),
            (
                "uptime_ms".to_string(),
                Json::Int(shared.started.elapsed().as_millis().min(i64::MAX as u128) as i64),
            ),
            ("draining".to_string(), Json::Bool(shared.draining())),
            ("backends".to_string(), Json::Arr(backends)),
            (
                "queue".to_string(),
                Json::obj([
                    (
                        "depth",
                        Json::Int(i64::try_from(queued).unwrap_or(i64::MAX)),
                    ),
                    // Saturate rather than wrap: a queue cap above
                    // `i64::MAX` must not report as negative capacity.
                    (
                        "capacity",
                        Json::Int(
                            i64::try_from(shared.config.queue_cap.max(1)).unwrap_or(i64::MAX),
                        ),
                    ),
                ]),
            ),
            (
                "requests".to_string(),
                Json::obj([
                    ("total", int(c.requests_total.load(Ordering::Relaxed))),
                    ("forwarded", int(c.forwarded_total.load(Ordering::Relaxed))),
                    (
                        "unavailable",
                        int(c.unavailable_total.load(Ordering::Relaxed)),
                    ),
                    ("shed", int(c.shed_total.load(Ordering::Relaxed))),
                    ("retries", int(c.retries_total.load(Ordering::Relaxed))),
                    ("failovers", int(c.failovers_total.load(Ordering::Relaxed))),
                    (
                        "reregistered",
                        int(c.reregister_total.load(Ordering::Relaxed)),
                    ),
                    ("too_large", int(c.too_large_total.load(Ordering::Relaxed))),
                    (
                        "bad_request",
                        int(c.bad_request_total.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
        ],
    )
}

/// The router's Prometheus exposition: its own counters plus one labeled
/// series per backend for health, breaker state, transport totals, and
/// rpc latency.
fn router_metrics(shared: &RouterShared, id: Option<&Json>) -> Json {
    let c = &shared.counters;
    let mut body = String::new();
    render_gauge_f64(
        &mut body,
        "ltt_router_uptime_seconds",
        "seconds since the router started",
        shared.started.elapsed().as_secs_f64(),
    );
    render_sample(
        &mut body,
        "ltt_router_draining",
        "gauge",
        "1 while the router is draining after shutdown",
        u64::from(shared.draining()),
    );
    render_sample(
        &mut body,
        "ltt_router_backends",
        "gauge",
        "backends on the hash ring",
        shared.backends.len() as u64,
    );
    render_sample(
        &mut body,
        "ltt_router_requests_total",
        "counter",
        "request lines parsed (any op)",
        c.requests_total.load(Ordering::Relaxed),
    );
    render_sample(
        &mut body,
        "ltt_router_forwarded_total",
        "counter",
        "backend replies forwarded verbatim",
        c.forwarded_total.load(Ordering::Relaxed),
    );
    render_sample(
        &mut body,
        "ltt_router_unavailable_total",
        "counter",
        "requests answered `unavailable` after exhausting every candidate",
        c.unavailable_total.load(Ordering::Relaxed),
    );
    render_sample(
        &mut body,
        "ltt_router_shed_total",
        "counter",
        "requests shed at the router's own admission queue",
        c.shed_total.load(Ordering::Relaxed),
    );
    render_sample(
        &mut body,
        "ltt_router_retries_total",
        "counter",
        "forwarding attempts after the first (other candidates or rounds)",
        c.retries_total.load(Ordering::Relaxed),
    );
    render_sample(
        &mut body,
        "ltt_router_failovers_total",
        "counter",
        "attempts abandoned to a transport failure (moved to next backend)",
        c.failovers_total.load(Ordering::Relaxed),
    );
    render_sample(
        &mut body,
        "ltt_router_reregister_total",
        "counter",
        "unknown_circuit failovers repaired from the registration cache",
        c.reregister_total.load(Ordering::Relaxed),
    );
    render_sample(
        &mut body,
        "ltt_router_too_large_total",
        "counter",
        "request lines refused for exceeding the line-length cap",
        c.too_large_total.load(Ordering::Relaxed),
    );
    render_sample(
        &mut body,
        "ltt_router_bad_request_total",
        "counter",
        "request lines that failed to parse",
        c.bad_request_total.load(Ordering::Relaxed),
    );
    render_sample(
        &mut body,
        "ltt_router_queue_depth",
        "gauge",
        "admitted forwards waiting for a worker",
        shared.queue.lock().expect("queue lock poisoned").len() as u64,
    );
    // Per-backend families: one header each, one labeled series per
    // backend.
    render_family(
        &mut body,
        "ltt_backend_healthy",
        "gauge",
        "1 when the last status probe of this backend succeeded",
    );
    for b in &shared.backends {
        render_labeled(
            &mut body,
            "ltt_backend_healthy",
            &[("backend", b.addr())],
            u64::from(b.is_healthy()),
        );
    }
    render_family(
        &mut body,
        "ltt_backend_breaker_state",
        "gauge",
        "circuit-breaker state: 0 closed, 1 open, 2 half-open",
    );
    for b in &shared.backends {
        render_labeled(
            &mut body,
            "ltt_backend_breaker_state",
            &[("backend", b.addr())],
            b.breaker().state_code(),
        );
    }
    render_family(
        &mut body,
        "ltt_backend_breaker_opened_total",
        "counter",
        "times this backend's breaker has opened",
    );
    for b in &shared.backends {
        render_labeled(
            &mut body,
            "ltt_backend_breaker_opened_total",
            &[("backend", b.addr())],
            b.breaker().opened_total(),
        );
    }
    render_family(
        &mut body,
        "ltt_backend_rpcs_total",
        "counter",
        "round trips attempted against this backend",
    );
    for b in &shared.backends {
        render_labeled(
            &mut body,
            "ltt_backend_rpcs_total",
            &[("backend", b.addr())],
            b.rpcs_total(),
        );
    }
    render_family(
        &mut body,
        "ltt_backend_errors_total",
        "counter",
        "round trips that failed at the transport level",
    );
    for b in &shared.backends {
        render_labeled(
            &mut body,
            "ltt_backend_errors_total",
            &[("backend", b.addr())],
            b.errors_total(),
        );
    }
    render_family(
        &mut body,
        "ltt_backend_rpc_duration_seconds",
        "histogram",
        "round-trip latency of successful rpcs per backend",
    );
    for b in &shared.backends {
        b.latency().render_series(
            &mut body,
            "ltt_backend_rpc_duration_seconds",
            &[("backend", b.addr())],
        );
    }
    shared.latency.render(
        &mut body,
        "ltt_router_request_duration_seconds",
        "admission-to-reply latency of forwarded check work",
    );
    ok_response(
        "metrics",
        id,
        vec![
            (
                "content_type".to_string(),
                Json::str("text/plain; version=0.0.4"),
            ),
            ("body".to_string(), Json::str(body)),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_backends(addrs: &[&str]) -> Vec<Arc<Backend>> {
        let opts = BackendOpts {
            connect_timeout: Duration::from_millis(100),
            rpc_timeout: Duration::from_millis(100),
            max_line_bytes: 1 << 16,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
        };
        addrs
            .iter()
            .map(|a| Arc::new(Backend::new(a.to_string(), opts)))
            .collect()
    }

    fn test_shared(addrs: &[&str]) -> RouterShared {
        let backends = test_backends(addrs);
        let ring = build_ring(&backends);
        RouterShared {
            backends,
            ring,
            reg_cache: Mutex::new(RegCache::default()),
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            draining: AtomicBool::new(false),
            counters: RouterCounters::default(),
            latency: Histogram::new(),
            jitter_salt: AtomicU64::new(1),
            config: RouterConfig::default(),
            started: Instant::now(),
        }
    }

    #[test]
    fn candidates_cover_every_backend_exactly_once() {
        let shared = test_shared(&["127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"]);
        for key in ["a", "b", "c17", "0123456789abcdef", ""] {
            let order = shared.candidates(key);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "key {key:?} covers all backends");
        }
    }

    #[test]
    fn placement_is_deterministic_and_key_dependent() {
        let shared = test_shared(&["127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3", "127.0.0.1:4"]);
        let keys: Vec<String> = (0..64).map(|i| format!("circuit-{i}")).collect();
        let first: Vec<usize> = keys.iter().map(|k| shared.candidates(k)[0]).collect();
        let second: Vec<usize> = keys.iter().map(|k| shared.candidates(k)[0]).collect();
        assert_eq!(first, second, "same key, same owner, every time");
        // The 64 keys must not all pile onto one backend.
        let mut load = [0usize; 4];
        for &owner in &first {
            load[owner] += 1;
        }
        assert!(
            load.iter().all(|&n| n > 0),
            "every backend owns something: {load:?}"
        );
    }

    #[test]
    fn ring_is_stable_under_backend_removal() {
        // Consistent hashing's point: keys whose owner survives keep
        // their owner when another backend leaves.
        let four = test_shared(&["127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3", "127.0.0.1:4"]);
        let three = test_shared(&["127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"]);
        let mut moved = 0;
        let mut kept = 0;
        for i in 0..256 {
            let key = format!("net-{i}");
            let owner4 = four.candidates(&key)[0];
            let owner3 = three.candidates(&key)[0];
            if owner4 < 3 {
                if owner3 == owner4 {
                    kept += 1;
                } else {
                    moved += 1;
                }
            }
        }
        assert!(
            kept > moved * 5,
            "surviving owners mostly keep their keys (kept {kept}, moved {moved})"
        );
    }

    /// A root registration entry routed at its own id.
    fn reg(id: &str, name: &str, source: &str) -> RegEntry {
        RegEntry {
            name: name.into(),
            format: "bench".into(),
            source: source.into(),
            delay: 10,
            route: id.into(),
            patches: Vec::new(),
        }
    }

    #[test]
    fn reg_cache_resolves_by_id_and_name_and_evicts_fifo() {
        let mut cache = RegCache::default();
        cache.insert("id-a".into(), reg("id-a", "a", "INPUT(x)"), 2);
        cache.insert("id-b".into(), reg("id-b", "b", "INPUT(y)"), 2);
        assert_eq!(cache.resolve("a").unwrap().0, "id-a");
        assert_eq!(cache.resolve("id-b").unwrap().0, "id-b");
        cache.insert("id-c".into(), reg("id-c", "c", "INPUT(z)"), 2);
        assert!(cache.resolve("id-a").is_none(), "FIFO evicted the oldest");
        assert!(cache.resolve("a").is_none(), "the alias went with it");
        assert!(cache.resolve("b").is_some());
        assert!(cache.resolve("c").is_some());
    }

    #[test]
    fn reg_cache_patch_chains_route_at_the_root_and_replay_in_order() {
        let mut cache = RegCache::default();
        cache.insert("root".into(), reg("root", "c", "INPUT(x)"), 8);
        let p1 = r#"{"op":"patch","circuit":"root","edits":[{"gate":"y","delay":20}]}"#;
        cache.insert_patched("root", "child1".into(), None, p1.into(), 8);
        let (id, entry) = cache.resolve("child1").expect("patched id resolves");
        assert_eq!(id, "child1");
        assert_eq!(entry.route, "root");
        assert_eq!(
            entry.replay_lines().len(),
            2,
            "register + one patch line replay"
        );
        assert!(entry.replay_lines()[1].contains("\"op\":\"patch\""));
        // A nameless patch must not rebind the parent's name alias.
        assert_eq!(cache.resolve("c").unwrap().0, "root");
        // A named patch binds its own alias; the chain keeps growing.
        let p2 = r#"{"op":"patch","circuit":"child1","edits":[{"gate":"y","delay":30}]}"#;
        cache.insert_patched("child1", "child2".into(), Some("c-v2"), p2.into(), 8);
        let (id, entry) = cache.resolve("c-v2").expect("alias resolves");
        assert_eq!(id, "child2");
        assert_eq!(entry.route, "root");
        assert_eq!(entry.replay_lines().len(), 3);
        assert_eq!(cache.resolve("c").unwrap().0, "root", "root alias intact");
        // Patching an unknown parent is a silent no-op (nothing to chain).
        cache.insert_patched("ghost", "childx".into(), None, p1.into(), 8);
        assert!(cache.resolve("childx").is_none());
    }

    #[test]
    fn register_line_round_trips_through_the_parser() {
        let entry = RegEntry {
            delay: 7,
            ..reg("id", "c17", "INPUT(1)\nOUTPUT(2)\n2 = NOT(1)")
        };
        let parsed = Request::parse(&decode(&entry.register_line()).unwrap()).unwrap();
        match parsed.body {
            RequestBody::Register {
                name,
                format,
                source,
                delay,
            } => {
                assert_eq!(name, "c17");
                assert_eq!(format, "bench");
                assert_eq!(source, "INPUT(1)\nOUTPUT(2)\n2 = NOT(1)");
                assert_eq!(delay, 7);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn classify_reads_error_codes_without_touching_the_text() {
        assert!(matches!(
            classify(r#"{"ok":false,"error":{"code":"overloaded","message":"m"}}"#),
            ReplyKind::Overloaded
        ));
        assert!(matches!(
            classify(r#"{"ok":false,"error":{"code":"unknown_circuit","message":"m"}}"#),
            ReplyKind::UnknownCircuit
        ));
        assert!(matches!(
            classify(r#"{"ok":true,"op":"check"}"#),
            ReplyKind::Other
        ));
        assert!(matches!(classify("not json"), ReplyKind::Other));
    }
}
