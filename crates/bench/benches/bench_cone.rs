//! Cone-sliced checking benches: single-output check cost on a warm
//! session, whole-circuit legacy pipeline (`--cone off`) vs the
//! cone-sliced engine (`--cone auto`), on the s6288 multiplier stand-in
//! and the k = 800 false-path blow-up split into 8 parallel chains —
//! plus the ECO rebase itself (the fixed cost every incremental
//! re-verification pays before its checks run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltt_bench::cone::{blowup800, blowup_delta, s6288_standin, smallest_cone_output};
use ltt_core::{CheckSession, ConeMode, VerifyConfig};
use ltt_netlist::{CircuitEdit, DelayInterval};
use std::sync::Arc;

fn config(cone: ConeMode) -> VerifyConfig {
    VerifyConfig {
        cone,
        ..VerifyConfig::default()
    }
}

fn single_output_check(c: &mut Criterion) {
    let s6288 = s6288_standin();
    let (s6288_output, s6288_delta) = smallest_cone_output(&s6288);
    let blowup = blowup800();
    let cases = [
        ("s6288", &s6288, s6288_output, s6288_delta),
        ("blowup800", &blowup, blowup.outputs()[0], blowup_delta()),
    ];
    for (name, circuit, output, delta) in cases {
        let mut group = c.benchmark_group(format!("cone_check_{name}"));
        group.sample_size(10);
        for (label, mode) in [("off", ConeMode::Off), ("auto", ConeMode::Auto)] {
            let session = CheckSession::new(circuit, config(mode));
            // Warm the session so the bench sees steady-state check cost,
            // not one-time preparation.
            assert!(session.verify(output, delta).verdict.is_no_violation());
            group.bench_with_input(BenchmarkId::from_parameter(label), &delta, |b, &d| {
                b.iter(|| {
                    let r = session.verify(output, d);
                    assert!(r.verdict.is_no_violation());
                })
            });
        }
        group.finish();
    }
}

fn eco_rebase(c: &mut Criterion) {
    // The rebase alone: how cheaply a warm session adopts a delay-edited
    // revision (structural analyses shared, clean cones transplanted).
    let circuit = blowup800();
    let output = circuit.outputs()[0];
    let delta = blowup_delta();
    let session = CheckSession::new(&circuit, config(ConeMode::Auto));
    assert!(session.verify(output, delta).verdict.is_no_violation());
    let gate = circuit.net(output).driver().expect("gate-driven output");
    let outcome = circuit
        .apply_edit(&[CircuitEdit::SetDelay {
            gate,
            delay: DelayInterval::fixed(12),
        }])
        .expect("delay edit");
    let edited = Arc::new(outcome.circuit);
    let mut group = c.benchmark_group("eco_rebase_blowup800");
    group.sample_size(10);
    group.bench_function("rebase", |b| {
        b.iter(|| session.rebase(edited.clone(), &outcome.dirty, outcome.structural))
    });
    group.bench_function("cold_prepare", |b| {
        b.iter(|| CheckSession::new(&edited, config(ConeMode::Auto)))
    });
    group.finish();
}

criterion_group!(benches, single_output_check, eco_rebase);
criterion_main!(benches);
