//! Narrowing-core benchmarks (the data-oriented solver rewrite's
//! scoreboard): the event-driven fixpoint on the k=800 `path_blowup`
//! stress instance, the 2-input gate-projection kernels, and the
//! checkpoint/narrow/rollback cycle that the FAN case analysis and stem
//! correlation hammer. Numbers land in EXPERIMENTS.md; the scheduling
//! order of the solver is deterministic, so event counts are identical
//! across implementations and wall-clock ratios are throughput ratios.

use criterion::{criterion_group, criterion_main, Criterion};
use ltt_core::{project, CheckSession, FixpointResult, Narrower, VerifyConfig};
use ltt_netlist::generators::serial_false_path_gadgets;
use ltt_netlist::{Circuit, GateKind};
use ltt_waveform::{Aw, Signal, Time};
use std::hint::black_box;

const K: usize = 800;

fn blowup() -> Circuit {
    serial_false_path_gadgets(K, 10)
}

/// The base fixpoint (floating inputs, no δ) of the blow-up instance.
fn base_domains(c: &Circuit) -> Vec<Signal> {
    let mut nw = Narrower::new(c);
    for &i in c.inputs() {
        nw.narrow_net(i, Signal::floating_input());
    }
    assert_eq!(nw.reach_fixpoint(), FixpointResult::Fixpoint);
    nw.domains().to_vec()
}

fn narrowing_fixpoint(c: &mut Criterion) {
    let circuit = blowup();
    let s = circuit.outputs()[0];
    let exact = 60 * K as i64;
    let base = base_domains(&circuit);

    // Report the (implementation-independent) event count once, so the
    // timings below convert to events/second.
    {
        let mut nw = Narrower::with_domains(&circuit, &base);
        nw.narrow_net(s, Signal::violation(Time::new(exact + 1)));
        nw.reach_fixpoint();
        eprintln!(
            "# narrow_fixpoint/k{K}_delta_check: {} events, {} narrowings per iteration",
            nw.stats().events,
            nw.stats().narrowings
        );
    }

    let mut group = c.benchmark_group("narrow_fixpoint");
    group.sample_size(10);
    // Full base fixpoint from scratch: every gate event at least once.
    group.bench_function(format!("k{K}_base"), |b| {
        b.iter(|| {
            let mut nw = Narrower::new(&circuit);
            for &i in circuit.inputs() {
                nw.narrow_net(i, Signal::floating_input());
            }
            black_box(nw.reach_fixpoint())
        })
    });
    // The δ = exact + 1 check seeded from the base fixpoint — the paper's
    // path-blow-up refutation, dominated by backward narrowing.
    group.bench_function(format!("k{K}_delta_check"), |b| {
        b.iter(|| {
            let mut nw = Narrower::with_domains(&circuit, &base);
            nw.narrow_net(s, Signal::violation(Time::new(exact + 1)));
            black_box(nw.reach_fixpoint())
        })
    });
    // Seeded construction alone, to separate per-check setup cost (domain
    // copy + planes + queue flags) from actual narrowing work above.
    group.bench_function(format!("k{K}_seeded_construction"), |b| {
        b.iter(|| black_box(Narrower::with_domains(&circuit, &base).stats()))
    });
    // The same δ through the batch-session API. Narrowing alone cannot
    // refute exact+1 on this instance (the bound is below the topological
    // delay), so this runs the full proof pipeline — dominators, stems,
    // case analysis — i.e. the rewrite's end-to-end effect on a real
    // check, search-stage rollbacks included.
    let session = CheckSession::new(&circuit, VerifyConfig::default());
    session.warm_up();
    group.bench_function(format!("k{K}_session_check"), |b| {
        b.iter(|| black_box(session.verify(s, exact + 1).verdict))
    });
    group.finish();
}

fn projection_kernel(c: &mut Criterion) {
    let a = Signal::new(
        Aw::new(Time::new(0), Time::new(40)),
        Aw::new(Time::new(5), Time::new(50)),
    );
    let b = Signal::new(
        Aw::before(Time::new(30)),
        Aw::new(Time::new(2), Time::new(45)),
    );
    let s = Signal::new(
        Aw::new(Time::new(20), Time::new(90)),
        Aw::before(Time::new(80)),
    );
    let mut group = c.benchmark_group("projection_kernel");
    // The 2-input AND family — the specialized fast path.
    for kind in [GateKind::And, GateKind::Or, GateKind::Nand, GateKind::Nor] {
        group.bench_function(format!("{}2", kind.name()), |bch| {
            bch.iter(|| black_box(project(kind, 10, black_box(&[a, b]), black_box(s))))
        });
    }
    // A 3-input AND exercises the general path.
    let three = [a, b, a];
    group.bench_function("And3_general", |bch| {
        bch.iter(|| black_box(project(GateKind::And, 10, black_box(&three), black_box(s))))
    });
    group.finish();
}

fn rollback_cycle(c: &mut Criterion) {
    let circuit = blowup();
    let s = circuit.outputs()[0];
    let exact = 60 * K as i64;
    let base = base_domains(&circuit);

    // One persistent narrower: checkpoint → δ constraint → fixpoint →
    // rollback, the exact cycle of a FAN backtrack / stem branch.
    let mut group = c.benchmark_group("rollback");
    group.sample_size(10);
    group.bench_function(format!("k{K}_checkpoint_narrow_rollback"), |b| {
        let mut nw = Narrower::with_domains(&circuit, &base);
        b.iter(|| {
            let mark = nw.checkpoint();
            nw.narrow_net(s, Signal::violation(Time::new(exact + 1)));
            black_box(nw.reach_fixpoint());
            nw.rollback(mark);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    narrowing_fixpoint,
    projection_kernel,
    rollback_cycle
);
criterion_main!(benches);
