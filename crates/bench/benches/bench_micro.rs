//! Micro benchmarks (experiment M1): the kernels of the method —
//! gate-constraint projection, event-driven fixpoint, dominator
//! computation, SCOAP, and the static-learning pre-process.

use criterion::{criterion_group, criterion_main, Criterion};
use ltt_core::carriers::{dynamic_carriers, static_carriers, timing_dominators};
use ltt_core::scoap::Controllability;
use ltt_core::{project, ImplicationTable, Narrower};
use ltt_netlist::generators::{random_circuit, RandomCircuitConfig};
use ltt_netlist::GateKind;
use ltt_waveform::{Aw, Signal, Time};
use std::hint::black_box;

fn projection_kernels(c: &mut Criterion) {
    let a = Signal::new(
        Aw::new(Time::new(0), Time::new(40)),
        Aw::new(Time::new(5), Time::new(50)),
    );
    let b = Signal::new(
        Aw::before(Time::new(30)),
        Aw::new(Time::new(2), Time::new(45)),
    );
    let s = Signal::new(
        Aw::new(Time::new(20), Time::new(90)),
        Aw::before(Time::new(80)),
    );
    let mut group = c.benchmark_group("projection");
    for kind in [GateKind::And, GateKind::Nor, GateKind::Xor] {
        group.bench_function(kind.name(), |bch| {
            bch.iter(|| black_box(project(kind, 10, black_box(&[a, b]), black_box(s))))
        });
    }
    // Wide gate: 8-input NAND.
    let wide = vec![a; 8];
    group.bench_function("NAND8", |bch| {
        bch.iter(|| black_box(project(GateKind::Nand, 10, black_box(&wide), black_box(s))))
    });
    group.finish();
}

fn workload() -> ltt_netlist::Circuit {
    random_circuit(&RandomCircuitConfig {
        num_inputs: 64,
        num_gates: 2_000,
        num_outputs: 8,
        max_fanin: 3,
        depth_bias: 5,
        delay: 10,
        seed: 0xBEEF,
    })
}

fn fixpoint_on_random_dag(c: &mut Criterion) {
    let circuit = workload();
    let s = {
        let arrival = circuit.arrival_times();
        circuit
            .outputs()
            .iter()
            .copied()
            .max_by_key(|o| arrival[o.index()])
            .unwrap()
    };
    let top = circuit.arrival_times()[s.index()];
    c.bench_function("fixpoint_2000_gates", |b| {
        b.iter(|| {
            let mut nw = Narrower::new(&circuit);
            for &i in circuit.inputs() {
                nw.narrow_net(i, Signal::floating_input());
            }
            nw.narrow_net(s, Signal::violation(Time::new(top - 20)));
            black_box(nw.reach_fixpoint())
        })
    });
}

fn graph_kernels(c: &mut Criterion) {
    let circuit = workload();
    let arrival = circuit.arrival_times();
    let s = circuit
        .outputs()
        .iter()
        .copied()
        .max_by_key(|o| arrival[o.index()])
        .unwrap();
    let top = arrival[s.index()];
    c.bench_function("static_carriers_2000", |b| {
        b.iter(|| black_box(static_carriers(&circuit, s, top - 20)))
    });
    let carriers = static_carriers(&circuit, s, top - 20);
    c.bench_function("timing_dominators_2000", |b| {
        b.iter(|| black_box(timing_dominators(&circuit, &carriers, s)))
    });
    let domains = vec![Signal::FULL; circuit.num_nets()];
    c.bench_function("dynamic_carriers_2000", |b| {
        b.iter(|| black_box(dynamic_carriers(&circuit, &domains, s, top - 20)))
    });
    c.bench_function("scoap_2000", |b| {
        b.iter(|| black_box(Controllability::compute(&circuit)))
    });
}

fn learning_preprocess(c: &mut Criterion) {
    let circuit = random_circuit(&RandomCircuitConfig {
        num_inputs: 32,
        num_gates: 400,
        num_outputs: 4,
        max_fanin: 3,
        depth_bias: 5,
        delay: 10,
        seed: 0xFACE,
    });
    let mut group = c.benchmark_group("learning");
    group.sample_size(10);
    group.bench_function("stems_400_gates", |b| {
        b.iter(|| black_box(ImplicationTable::learn_stems(&circuit)))
    });
    group.finish();
}

criterion_group!(
    benches,
    projection_kernels,
    fixpoint_on_random_dag,
    graph_kernels,
    learning_preprocess
);
criterion_main!(benches);
