//! Scaling benches (extension experiment A2): verifier cost as a function
//! of circuit size — carry-skip adder width, false-path chain depth, and
//! the δ-slack sweep (how much cheaper far-from-critical checks are).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltt_bench::table1::critical_output;
use ltt_core::{verify, VerifyConfig};
use ltt_netlist::generators::{carry_skip_adder, false_path_chain};

fn carry_skip_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("carry_skip_width");
    group.sample_size(10);
    for width in [4usize, 8, 16, 24, 32] {
        let circuit = carry_skip_adder(width, 4, 10);
        let cout = critical_output(&circuit);
        let top = circuit.arrival_times()[cout.index()];
        let config = VerifyConfig {
            case_analysis: false,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| {
                // The topological-delay check: always settled without search.
                let r = verify(&circuit, cout, top + 1, &config);
                assert!(r.verdict.is_no_violation());
            })
        });
    }
    group.finish();
}

fn chain_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_depth");
    group.sample_size(10);
    for p in [8usize, 16, 32, 64, 128] {
        let circuit = false_path_chain(p, p / 2, 10);
        let s = circuit.outputs()[0];
        let exact = 10 * (p as i64 + 2);
        let config = VerifyConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| {
                let r = verify(&circuit, s, exact + 1, &config);
                assert!(r.verdict.is_no_violation());
            })
        });
    }
    group.finish();
}

fn delta_slack(c: &mut Criterion) {
    // How does the proof cost change as δ moves away from the critical
    // region? Far-above-top checks die instantly; checks just above the
    // exact delay need the most narrowing.
    let circuit = false_path_chain(32, 16, 10);
    let s = circuit.outputs()[0];
    let exact = 10 * (32 + 2);
    let config = VerifyConfig::default();
    let mut group = c.benchmark_group("delta_slack");
    group.sample_size(10);
    for (label, delta) in [
        ("exact+1", exact + 1),
        ("exact+50", exact + 50),
        ("top", 10 * (32 + 16 + 1)),
        ("top+100", 10 * (32 + 16 + 1) + 100),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &delta, |b, &d| {
            b.iter(|| {
                let r = verify(&circuit, s, d, &config);
                assert!(r.verdict.is_no_violation());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, carry_skip_width, chain_depth, delta_slack);
criterion_main!(benches);
