//! Criterion bench regenerating Table 1 timing points: one benchmark per
//! suite circuit (small half), measuring the δ = exact + 1 proof and the
//! δ = exact vector search — the two CPU columns of the paper's table.

use criterion::{criterion_group, criterion_main, Criterion};
use ltt_bench::table1::critical_output;
use ltt_core::{verify, VerifyConfig};
use ltt_netlist::suite::{iscas85_suite, SuiteEntry};

fn bench_entry(c: &mut Criterion, entry: &SuiteEntry, exact: i64) {
    let circuit = &entry.circuit;
    let s = critical_output(circuit);
    let config = VerifyConfig {
        max_backtracks: 10_000,
        ..Default::default()
    };
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function(format!("{}_proof", entry.name), |b| {
        b.iter(|| {
            let r = verify(circuit, s, exact + 1, &config);
            assert!(r.verdict.is_no_violation());
        })
    });
    group.bench_function(format!("{}_vector", entry.name), |b| {
        b.iter(|| {
            let r = verify(circuit, s, exact, &config);
            assert!(r.verdict.is_violation());
        })
    });
    group.finish();
}

fn table1_benches(c: &mut Criterion) {
    let suite = iscas85_suite(10);
    // The engineered exact delays (levels × 10); c17 = 50.
    let exacts = [
        ("c17", 50),
        ("s432", 190),
        ("s499", 250),
        ("s880", 200),
        ("s1355", 270),
        ("s1908", 310),
        ("s2670", 240),
        ("s3540", 390),
    ];
    for (name, exact) in exacts {
        let entry = suite.iter().find(|e| e.name == name).expect("entry");
        bench_entry(c, entry, exact);
    }
}

criterion_group!(benches, table1_benches);
criterion_main!(benches);
