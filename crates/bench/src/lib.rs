//! Experiment harness: regenerates every table and figure of the paper.
//!
//! * [`table1`] — the Table 1 pipeline (per-circuit stage verdicts,
//!   backtracks, CPU time) over the evaluation suite;
//! * [`cone`] — shared fixtures for the cone-sliced checking and
//!   incremental re-verification experiments;
//! * [`render`] — plain-text table rendering shared by the binaries.
//!
//! The runnable regeneration targets live in `src/bin/`:
//! `table1`, `fig1_example2`, `carry_skip_study`, `dominator_study`,
//! `ablation`, `path_blowup`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cone;
pub mod render;
pub mod table1;
