//! Minimal plain-text table rendering for the experiment binaries.

/// A plain-text table with a header row and aligned columns.
///
/// # Examples
///
/// ```
/// use ltt_bench::render::Table;
///
/// let mut t = Table::new(&["circuit", "top", "exact"]);
/// t.row(&["c17", "50", "50"]);
/// let text = t.render();
/// assert!(text.contains("c17"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        let mut row: Vec<String> = cells.iter().map(|s| s.as_ref().to_string()).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[c]));
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header", "c"]);
        t.row(&["x", "1", "2"]);
        t.row(&["longer-cell", "3", "4"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // Column 2 starts at the same offset in every row.
        let off = lines[0].find("long-header").unwrap();
        assert_eq!(lines[2].find('1'), Some(off));
        assert_eq!(lines[3].find('3'), Some(off));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only"]);
        assert!(t.render().contains("only"));
    }
}
