//! Shared fixtures for the cone-sliced checking experiments: the two
//! benchmark circuits (the s6288 multiplier stand-in and the k = 800
//! false-path blow-up split into parallel chains) and the output each
//! experiment slices to.

use ltt_netlist::generators::{array_multiplier, parallel_false_path_gadgets};
use ltt_netlist::transform::nor_mapping;
use ltt_netlist::{Circuit, ConeView, NetId};

/// The s6288 stand-in used throughout the suite: the NOR-mapped 16×16
/// array multiplier (the paper's hardest Table 1 row).
pub fn s6288_standin() -> Circuit {
    nor_mapping(&array_multiplier(16, 10), 10)
}

/// The "k = 800" exponential blow-up instance, arranged as 8 parallel
/// chains of 100 serial false-path gadgets each. Same total gadget count
/// as the serial `serial_false_path_gadgets(800, 10)` blow-up, but each
/// primary output's fanin cone is one chain — 1/8 of the circuit — so
/// cone slicing has real structure to exploit.
pub fn blowup800() -> Circuit {
    parallel_false_path_gadgets(8, 100, 10)
}

/// The hard δ for one `blowup800` chain: just above the exact floating
/// delay 6·k·d = 6000 and below the topological bound 7·k·d = 7000, so
/// proving it demands the full false-path narrowing argument on every
/// gadget of the chain (no arrival-time shortcut).
pub fn blowup_delta() -> i64 {
    6 * 100 * 10 + 1
}

/// The primary output with the smallest *strict* fanin cone — the
/// sharpest contrast between whole-circuit and cone-sliced checking —
/// paired with the δ just above its own arrival time (a narrowing proof,
/// no case analysis; deterministic across modes).
///
/// Panics if every output's cone covers the whole circuit (slicing would
/// be the identity and the experiment meaningless).
pub fn smallest_cone_output(circuit: &Circuit) -> (NetId, i64) {
    let arrival = circuit.arrival_times();
    let (output, _) = circuit
        .outputs()
        .iter()
        .filter_map(|&o| {
            let view = ConeView::extract(circuit, o);
            (!view.is_complete()).then(|| (o, view.gates().len()))
        })
        .min_by_key(|&(_, gates)| gates)
        .expect("an output with a strict fanin cone");
    (output, arrival[output.index()] + 1)
}
