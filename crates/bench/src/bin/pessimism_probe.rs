//! Pessimism measurement: how tight is the fixpoint abstraction?
//!
//! The paper's central claim is that waveform narrowing gives a good
//! pessimism/efficiency trade-off and that global implications reduce the
//! remaining slack. This probe quantifies it: on small random circuits the
//! *exact* last-transition envelope of each net (maximum last event over
//! exhaustively simulated two-vector runs) is compared with the settle
//! bound the fixpoint computes — with and without the timing-dominator
//! stage active under a near-critical δ constraint.
//!
//! Run with `cargo run --release -p ltt-bench --bin pessimism_probe`.

use ltt_bench::render::Table;
use ltt_core::carriers::fixpoint_with_dominators;
use ltt_core::{exact_delay, FixpointResult, Narrower, VerifyConfig};
use ltt_netlist::generators::{random_circuit, RandomCircuitConfig};
use ltt_netlist::Circuit;
use ltt_sta::{simulate, WaveformTrace};
use ltt_waveform::{Signal, Time};

/// Exact settle envelope: per net, the latest last-event time over all
/// two-vector simulations (v1 anything, v2 anything) — a lower bound on
/// the floating envelope that is exact for the sampled waveform family.
fn exact_envelope(c: &Circuit) -> Option<Vec<i64>> {
    let n = c.inputs().len();
    if n > 12 {
        return None;
    }
    let mut envelope = vec![0i64; c.num_nets()];
    for a in 0u64..(1 << n) {
        for b in 0u64..(1 << n) {
            let inputs: Vec<WaveformTrace> = (0..n)
                .map(|i| WaveformTrace::new((a >> i) & 1 == 1, vec![(1, (b >> i) & 1 == 1)]))
                .collect();
            let traces = simulate(c, &inputs);
            for (slot, tr) in envelope.iter_mut().zip(&traces) {
                *slot = (*slot).max(tr.last_event().unwrap_or(0));
            }
        }
    }
    Some(envelope)
}

/// Per-net fixpoint bounds under the δ check: `(settle_max, lmin)` where
/// `lmin` is the earliest last transition still allowed (the quantity the
/// Corollary 1 dominator narrowing raises).
fn fixpoint_bounds(c: &Circuit, use_dominators: bool, delta: i64) -> Option<(Vec<i64>, Vec<Time>)> {
    let s = {
        let arrival = c.arrival_times();
        c.outputs()
            .iter()
            .copied()
            .max_by_key(|o| arrival[o.index()])
            .unwrap()
    };
    let mut nw = Narrower::new(c);
    for &i in c.inputs() {
        nw.narrow_net(i, Signal::floating_input());
    }
    nw.narrow_net(s, Signal::violation(Time::new(delta)));
    if fixpoint_with_dominators(&mut nw, s, delta, use_dominators) == FixpointResult::Contradiction
    {
        return None;
    }
    let settle = nw
        .domains()
        .iter()
        .map(|d| d.latest_settle().finite().unwrap_or(i64::MAX))
        .collect();
    let lmin = nw
        .domains()
        .iter()
        .map(|d| d.earliest_last_transition())
        .collect();
    Some((settle, lmin))
}

fn main() {
    let mut table = Table::new(&[
        "circuit",
        "gates",
        "top/exact",
        "mean settle slack",
        "lmin raised (plain)",
        "lmin raised (+dominators)",
    ]);
    let mut workloads: Vec<(String, Circuit)> = [11u64, 23, 37, 41, 59, 67]
        .iter()
        .map(|&seed| {
            (
                format!("rand{seed}"),
                random_circuit(&RandomCircuitConfig {
                    num_inputs: 8,
                    num_gates: 40,
                    num_outputs: 2,
                    max_fanin: 3,
                    depth_bias: 5,
                    delay: 10,
                    seed,
                }),
            )
        })
        .collect();
    // The dominator-requiring gadget, where the lmin localization is
    // visible.
    workloads.push((
        "forked(6,4)".into(),
        ltt_netlist::generators::forked_false_path_chain(6, 4, 10),
    ));
    workloads.push((
        "forked(8,4)".into(),
        ltt_netlist::generators::forked_false_path_chain(8, 4, 10),
    ));
    for (name, c) in workloads {
        let top = c.topological_delay();
        // Probe at the exact floating-mode delay (the tightest consistent
        // check), found by the verifier itself.
        let critical = {
            let arrival = c.arrival_times();
            c.outputs()
                .iter()
                .copied()
                .max_by_key(|o| arrival[o.index()])
                .unwrap()
        };
        let search = exact_delay(&c, critical, &VerifyConfig::default());
        if !search.proven_exact {
            continue;
        }
        let delta = search.delay;
        // Probe one past the exact delay when the check at `exact` is
        // trivially satisfiable everywhere — at `exact` the system is
        // consistent, so lmin localization is observable there.
        let envelope = exact_envelope(&c);
        let Some((settle_plain, lmin_plain)) = fixpoint_bounds(&c, false, delta) else {
            continue;
        };
        let Some((_, lmin_dom)) = fixpoint_bounds(&c, true, delta) else {
            continue;
        };
        let mut slack = 0i64;
        let mut counted = 0usize;
        let mut raised_plain = 0usize;
        let mut raised_dom = 0usize;
        for i in 0..c.num_nets() {
            if let Some(env) = &envelope {
                if settle_plain[i] != i64::MAX {
                    counted += 1;
                    slack += settle_plain[i] - env[i];
                }
            }
            if lmin_plain[i] > Time::NEG_INF && lmin_plain[i] < Time::POS_INF {
                raised_plain += 1;
            }
            if lmin_dom[i] > Time::NEG_INF && lmin_dom[i] < Time::POS_INF {
                raised_dom += 1;
            }
        }
        table.row(&[
            name,
            c.num_gates().to_string(),
            format!("{top}/{delta}"),
            if counted == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", slack as f64 / counted as f64)
            },
            raised_plain.to_string(),
            raised_dom.to_string(),
        ]);
    }
    println!("Fixpoint pessimism and dominator localization at δ = exact");
    println!("(settle slack vs. the exact two-vector envelope; `lmin raised`");
    println!("counts nets whose last-transition lower bound became finite —");
    println!("the violation localization the dominator implications add)");
    println!();
    println!("{}", table.render());
}
