//! `cone_speedup` — measures the two headline numbers of cone-sliced
//! checking and ECO-style incremental re-verification:
//!
//! 1. **Sliced vs whole**: a single-output check run with the legacy
//!    whole-circuit pipeline (`--cone off`) and the cone-sliced engine
//!    (`--cone auto`) on a warm session — per-check wall time, inner-loop
//!    batched so sub-microsecond checks measure above timer noise. Two
//!    scenarios: the s6288 stand-in's smallest-cone output at δ just
//!    above its arrival time (the per-check floor: store seeding and
//!    propagation sized to the cone vs the circuit), and the k = 800
//!    false-path blow-up split into 8 parallel chains, checked at
//!    δ = 6·k·d + 1 (a real narrowing proof below the topological bound —
//!    the whole pipeline's case analysis vs the cone's). Verdicts must
//!    agree; the ratio is the slicing speedup.
//! 2. **Incremental vs cold**: one delay ECO, then the full output sweep
//!    re-verified the way `patch` does it — rebase the warm session,
//!    re-check only the outputs whose cones intersect the edit's dirty
//!    set ∪ base divergence, transplant every other report — against a
//!    cold re-registration (prepare from scratch, re-check everything).
//!    Transplanted and recomputed reports must both agree with cold; the
//!    ratio is the re-verification cost relative to cold.
//!
//! ```text
//! cone_speedup [--reps N] [--json FILE]
//! ```
//!
//! `--json FILE` writes the measurements as a machine-readable rollup
//! (the `BENCH_cone.json` CI artifact).

use ltt_bench::cone::{blowup800, blowup_delta, s6288_standin, smallest_cone_output};
use ltt_core::{BatchRunner, CheckSession, ConeMode, Verdict, VerifyConfig};
use ltt_netlist::{Circuit, CircuitEdit, ConeView, DelayInterval, NetId};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

fn config(cone: ConeMode) -> VerifyConfig {
    VerifyConfig {
        cone,
        ..VerifyConfig::default()
    }
}

/// The cross-mode comparable part of a verdict: cone modes agree with
/// the legacy pipeline on the verdict *class* (witness vectors, stages
/// and effort counters may legitimately differ).
fn verdict_class(v: &Verdict) -> &'static str {
    match v {
        Verdict::NoViolation { .. } => "no_violation",
        Verdict::Violation { .. } => "violation",
        Verdict::Possible => "possible",
        Verdict::Abandoned => "abandoned",
    }
}

/// Median per-check wall-clock of one `(output, δ)` check on a warm
/// session. Each rep times an inner loop sized so the measured region is
/// ≥ ~2 ms — a single sliced check can be sub-microsecond, far below
/// timer resolution. Returns (ms per check, verdict class).
fn per_check_ms(
    circuit: &Circuit,
    output: NetId,
    delta: i64,
    cone: ConeMode,
    reps: usize,
) -> (f64, &'static str) {
    let session = CheckSession::new(circuit, config(cone));
    // Warm-up: static learning, base fixpoint, cone extraction — the
    // per-session one-time costs every serving workload amortizes.
    let class = verdict_class(&session.verify(output, delta).verdict);
    let t = Instant::now();
    assert_eq!(verdict_class(&session.verify(output, delta).verdict), class);
    let once = t.elapsed().as_secs_f64();
    let iters = ((2e-3 / once.max(1e-9)) as usize).clamp(1, 4096);
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                let report = session.verify(output, delta);
                assert_eq!(verdict_class(&report.verdict), class);
            }
            t.elapsed().as_secs_f64() * 1e3 / iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    (times[times.len() / 2], class)
}

struct SliceRow {
    name: &'static str,
    cone_gates: usize,
    total_gates: usize,
    whole_ms: f64,
    sliced_ms: f64,
    identical: bool,
}

fn slice_scenario(
    name: &'static str,
    circuit: &Circuit,
    output: NetId,
    delta: i64,
    reps: usize,
) -> SliceRow {
    let cone_gates = ConeView::extract(circuit, output).gates().len();
    let (whole_ms, whole_class) = per_check_ms(circuit, output, delta, ConeMode::Off, reps);
    let (sliced_ms, sliced_class) = per_check_ms(circuit, output, delta, ConeMode::Auto, reps);
    SliceRow {
        name,
        cone_gates,
        total_gates: circuit.num_gates(),
        whole_ms,
        sliced_ms,
        identical: whole_class == sliced_class,
    }
}

struct EcoRow {
    name: &'static str,
    checks: usize,
    reverified: usize,
    transplanted: usize,
    cold_ms: f64,
    incremental_ms: f64,
    identical: bool,
}

/// One delay ECO on `edit_output`'s driver, then the full `checks` sweep
/// re-verified the `patch` way (rebase; re-check intersecting cones;
/// transplant the rest) vs a cold re-registration (prepare the edited
/// circuit from scratch; re-check everything).
fn eco_scenario(
    name: &'static str,
    circuit: &Circuit,
    checks: &[(NetId, i64)],
    edit_output: NetId,
    reps: usize,
) -> EcoRow {
    let runner = BatchRunner::new(1);

    // The warm pre-edit session the ECO flow starts from, its reports the
    // transplant source.
    let base = CheckSession::new(circuit, config(ConeMode::Auto));
    let base_batch = runner.run(&base, checks);

    // The 1-gate SDF re-annotation: the edited gate's delay drops from 10
    // to 9 (post-sizing numbers shrink; a delay increase past δ would turn
    // the dirty cone's re-check into a witness search and measure that
    // search, not the incremental machinery).
    let gate = circuit
        .net(edit_output)
        .driver()
        .expect("outputs are gate-driven");
    let outcome = circuit
        .apply_edit(&[CircuitEdit::SetDelay {
            gate,
            delay: DelayInterval::fixed(9),
        }])
        .expect("delay edit");
    let edited = Arc::new(outcome.circuit);

    let mut cold_times = Vec::with_capacity(reps);
    let mut incr_times = Vec::with_capacity(reps);
    let mut identical = true;
    let mut reverified = 0usize;
    for _ in 0..reps {
        // Incremental: rebase, then split the sweep into dirty cones
        // (re-verify) and clean cones (transplant the pre-edit report) —
        // exactly what the serve layer's `patch` op does with its report
        // cache.
        let t = Instant::now();
        let rebased = base.rebase(edited.clone(), &outcome.dirty, outcome.structural);
        let mut stale = outcome.dirty.clone();
        stale.extend(base.base_divergence(&rebased));
        let all_stale = outcome.structural || base.base_contradictory();
        let dirty_checks: Vec<(NetId, i64)> = checks
            .iter()
            .copied()
            .filter(|&(o, _)| {
                all_stale
                    || match rebased.prepared().cone(o) {
                        Some(ca) => ca.intersects(&stale),
                        None => true, // complete cone: everything affects it
                    }
            })
            .collect();
        let incremental = runner.run(&rebased, &dirty_checks);
        incr_times.push(t.elapsed().as_secs_f64() * 1e3);
        reverified = dirty_checks.len();

        let t = Instant::now();
        let cold_session = CheckSession::new(&edited, config(ConeMode::Auto));
        let cold = runner.run(&cold_session, checks);
        cold_times.push(t.elapsed().as_secs_f64() * 1e3);

        // Every report — recomputed on a dirty cone or transplanted from
        // the pre-edit session — must agree with the cold oracle.
        let mut dirty_iter = incremental.reports.iter();
        for ((check, cold_report), base_report) in
            checks.iter().zip(&cold.reports).zip(&base_batch.reports)
        {
            let served = if dirty_checks.contains(check) {
                dirty_iter.next().expect("one report per dirty check")
            } else {
                base_report
            };
            identical &= verdict_class(&served.verdict) == verdict_class(&cold_report.verdict)
                && served.completeness == cold_report.completeness;
        }
    }
    cold_times.sort_by(|a, b| a.total_cmp(b));
    incr_times.sort_by(|a, b| a.total_cmp(b));
    EcoRow {
        name,
        checks: checks.len(),
        reverified,
        transplanted: checks.len() - reverified,
        cold_ms: cold_times[cold_times.len() / 2],
        incremental_ms: incr_times[incr_times.len() / 2],
        identical,
    }
}

/// Every output at δ just above its arrival time — the registration
/// sweep shape the serve layer runs.
fn arrival_sweep(circuit: &Circuit) -> Vec<(NetId, i64)> {
    let arrival = circuit.arrival_times();
    circuit
        .outputs()
        .iter()
        .map(|&o| (o, arrival[o.index()] + 1))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut reps = 5usize;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs an integer")
            }
            "--json" => json_path = Some(it.next().expect("--json needs a file").clone()),
            other => {
                eprintln!("cone_speedup: unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }

    let s6288 = s6288_standin();
    let blowup = blowup800();
    let (s6288_output, s6288_delta) = smallest_cone_output(&s6288);
    let (blowup_output, blowup_arrival_delta) = smallest_cone_output(&blowup);
    // Both slice rows measure the per-check floor (δ just above the
    // output's arrival time): the cost of seeding, propagating and
    // reporting sized to the cone vs the whole circuit. At the blow-up's
    // hard δ = 6·k·d + 1 the narrowing proof itself dominates and is
    // cone-local in every mode, so whole and sliced converge — that row
    // is printed for context, not gated.
    let slices = vec![
        slice_scenario(
            "s6288_single_output",
            &s6288,
            s6288_output,
            s6288_delta,
            reps,
        ),
        slice_scenario(
            "blowup800_single_output",
            &blowup,
            blowup_output,
            blowup_arrival_delta,
            reps,
        ),
    ];
    let hard_row = slice_scenario(
        "blowup800_hard_delta",
        &blowup,
        blowup.outputs()[0],
        blowup_delta(),
        1.max(reps / 2),
    );

    // ECO sweeps: s6288 re-checks every output at arrival + 1; the blow-up
    // re-proves every chain's hard δ (the expensive sweep slicing pays for).
    let blowup_checks: Vec<(NetId, i64)> = blowup
        .outputs()
        .iter()
        .map(|&o| (o, blowup_delta()))
        .collect();
    let ecos = vec![
        eco_scenario(
            "eco_s6288",
            &s6288,
            &arrival_sweep(&s6288),
            s6288_output,
            reps,
        ),
        eco_scenario(
            "eco_blowup800",
            &blowup,
            &blowup_checks,
            blowup_output,
            reps,
        ),
    ];

    println!("cone-sliced vs whole-circuit, per check (median of {reps}, warm session):");
    for row in &slices {
        println!(
            "  {:<24} cone {:>5}/{:<5} gates  whole {:>10.4} ms  sliced {:>10.4} ms  speedup {:>6.1}x  verdicts {}",
            row.name,
            row.cone_gates,
            row.total_gates,
            row.whole_ms,
            row.sliced_ms,
            row.whole_ms / row.sliced_ms.max(1e-9),
            if row.identical { "identical" } else { "MISMATCHED" }
        );
    }
    println!(
        "  {:<24} cone {:>5}/{:<5} gates  whole {:>10.4} ms  sliced {:>10.4} ms  speedup {:>6.1}x  verdicts {}  (context: proof-bound, not gated)",
        hard_row.name,
        hard_row.cone_gates,
        hard_row.total_gates,
        hard_row.whole_ms,
        hard_row.sliced_ms,
        hard_row.whole_ms / hard_row.sliced_ms.max(1e-9),
        if hard_row.identical { "identical" } else { "MISMATCHED" }
    );
    println!("ECO re-verification, rebase + intersecting cones vs cold (median of {reps}):");
    for row in &ecos {
        println!(
            "  {:<24} {:>3} checks ({} re-run, {} transplanted)  cold {:>9.3} ms  incremental {:>9.3} ms  ratio {:>6.3}  verdicts {}",
            row.name,
            row.checks,
            row.reverified,
            row.transplanted,
            row.cold_ms,
            row.incremental_ms,
            row.incremental_ms / row.cold_ms.max(1e-9),
            if row.identical { "identical" } else { "MISMATCHED" }
        );
    }

    if let Some(path) = &json_path {
        let mut json = String::new();
        let _ = writeln!(json, "{{\n  \"suite\": \"cone\",\n  \"reps\": {reps},");
        let _ = writeln!(json, "  \"sliced_vs_whole\": [");
        for (i, row) in slices.iter().enumerate() {
            let _ = writeln!(
                json,
                "    {{ \"name\": \"{}\", \"cone_gates\": {}, \"total_gates\": {}, \"whole_ms\": {:.6}, \"sliced_ms\": {:.6}, \"speedup\": {:.2}, \"identical\": {} }}{}",
                row.name,
                row.cone_gates,
                row.total_gates,
                row.whole_ms,
                row.sliced_ms,
                row.whole_ms / row.sliced_ms.max(1e-9),
                row.identical,
                if i + 1 == slices.len() { "" } else { "," }
            );
        }
        let _ = writeln!(
            json,
            "  ],\n  \"context\": [\n    {{ \"name\": \"{}\", \"cone_gates\": {}, \"total_gates\": {}, \"whole_ms\": {:.6}, \"sliced_ms\": {:.6}, \"speedup\": {:.2}, \"identical\": {} }}",
            hard_row.name,
            hard_row.cone_gates,
            hard_row.total_gates,
            hard_row.whole_ms,
            hard_row.sliced_ms,
            hard_row.whole_ms / hard_row.sliced_ms.max(1e-9),
            hard_row.identical
        );
        let _ = writeln!(json, "  ],\n  \"eco_incremental\": [");
        for (i, row) in ecos.iter().enumerate() {
            let _ = writeln!(
                json,
                "    {{ \"name\": \"{}\", \"checks\": {}, \"reverified\": {}, \"transplanted\": {}, \"cold_ms\": {:.4}, \"incremental_ms\": {:.4}, \"ratio\": {:.4}, \"identical\": {} }}{}",
                row.name,
                row.checks,
                row.reverified,
                row.transplanted,
                row.cold_ms,
                row.incremental_ms,
                row.incremental_ms / row.cold_ms.max(1e-9),
                row.identical,
                if i + 1 == ecos.len() { "" } else { "," }
            );
        }
        let _ = writeln!(json, "  ]\n}}");
        std::fs::write(path, json).expect("write json file");
        eprintln!("[json] cone rollup -> {path}");
    }

    if slices.iter().any(|r| !r.identical)
        || !hard_row.identical
        || ecos.iter().any(|r| !r.identical)
    {
        eprintln!("cone_speedup: VERDICT MISMATCH — sliced or incremental diverged");
        std::process::exit(1);
    }
}
