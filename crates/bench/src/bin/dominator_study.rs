//! Regenerates the **c1908 dominator case study** (§6, last paragraph):
//! "the use of timing dominators was very effective on the traditionally
//! difficult c1908 circuit. It proved that output 57_912 (topological delay
//! of 340) cannot have a delay greater than 200 in 0.76 seconds. This
//! particular case has 5 timing dominators, and no narrowing was performed
//! on 3 of them by the original method."
//!
//! On the s1908 stand-in we sweep δ and report, for each check, the number
//! of dynamic timing dominators, whether the dominator narrowing was needed
//! (vs. plain narrowing), and the CPU time.
//!
//! Run with `cargo run --release -p ltt-bench --bin dominator_study`.

use ltt_bench::render::Table;
use ltt_bench::table1::critical_output;
use ltt_core::carriers::{dynamic_carriers, timing_dominators};
use ltt_core::{verify, Narrower, Stage, Verdict, VerifyConfig};
use ltt_netlist::suite::{standin, standin_specs};
use ltt_waveform::{Signal, Time};

fn main() {
    let spec = standin_specs()
        .into_iter()
        .find(|s| s.name == "s1908")
        .expect("s1908 spec exists");
    let c = standin(&spec, 10);
    let s = critical_output(&c);
    let top = c.arrival_times()[s.index()];
    println!(
        "s1908 stand-in: {} gates, critical output top = {top} (paper c1908: 340)",
        c.num_gates()
    );

    let mut table = Table::new(&["delta", "dominators", "verdict", "stage", "cpu (ms)"]);
    for delta in [
        top - 60,
        top - 30,
        top - 29,
        top - 20,
        top - 10,
        top,
        top + 1,
    ] {
        // Count the dynamic timing dominators at the plain-narrowing
        // fixpoint (the state in which the G.I.T.D. stage starts).
        let mut nw = Narrower::new(&c);
        for &i in c.inputs() {
            nw.narrow_net(i, Signal::floating_input());
        }
        nw.narrow_net(s, Signal::violation(Time::new(delta)));
        let doms = if nw.reach_fixpoint() == ltt_core::FixpointResult::Fixpoint {
            let carriers = dynamic_carriers(&c, nw.domains(), s, delta);
            timing_dominators(&c, &carriers, s).len()
        } else {
            0
        };

        let config = VerifyConfig {
            case_analysis: false,
            ..Default::default()
        };
        let r = verify(&c, s, delta, &config);
        let (verdict, stage) = match &r.verdict {
            Verdict::NoViolation { stage } => (
                "N",
                match stage {
                    Stage::Narrowing => "narrowing",
                    Stage::Dominators => "dominators",
                    Stage::StemCorrelation => "stems",
                    Stage::CaseAnalysis => "case analysis",
                    Stage::Sat => "sat",
                },
            ),
            _ => ("P", "-"),
        };
        table.row(&[
            delta.to_string(),
            doms.to_string(),
            verdict.to_string(),
            stage.to_string(),
            format!("{:.2}", r.elapsed.as_secs_f64() * 1e3),
        ]);
    }
    println!("{}", table.render());
    println!("(paper: 5 timing dominators on the studied check; dominator");
    println!("narrowing proves δ > 200 impossible where plain narrowing cannot)");
}
