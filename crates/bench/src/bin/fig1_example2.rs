//! Regenerates **Figure 1 / Example 2**: the Hrapcenko false-path circuit,
//! the narrowing trace outcome at δ = 61, and the exact-delay bracketing.
//!
//! Run with `cargo run --release -p ltt-bench --bin fig1_example2`.

use ltt_core::{exact_delay, verify, Verdict, VerifyConfig};
use ltt_netlist::generators::figure1;
use ltt_sta::{describe_vector, exhaustive_floating_delay, path_analysis};

fn main() {
    let c = figure1(10);
    let s = c.outputs()[0];
    println!(
        "Figure 1 circuit: {} gates, {} inputs",
        c.num_gates(),
        c.inputs().len()
    );
    println!("Topological delay (top): {}", c.topological_delay());

    let oracle = exhaustive_floating_delay(&c, s).expect("7 inputs");
    println!("Exhaustive floating-mode delay (oracle): {}", oracle.delay);

    let config = VerifyConfig::default();
    let r61 = verify(&c, s, 61, &config);
    println!(
        "verify(ξ, s, 61): {:?}  [before G.I.T.D.: {:?}] in {:.3} ms",
        r61.verdict,
        r61.before_gitd,
        r61.elapsed.as_secs_f64() * 1e3
    );
    let r60 = verify(&c, s, 60, &config);
    match &r60.verdict {
        Verdict::Violation { vector } => {
            println!("verify(ξ, s, 60): test vector found:");
            for (name, level) in describe_vector(&c, vector) {
                print!("  {name}={level}");
            }
            println!();
        }
        other => println!("verify(ξ, s, 60): {other:?}"),
    }

    let search = exact_delay(&c, s, &config);
    println!(
        "exact_delay search: {} (proven: {}), {} backtracks",
        search.delay, search.proven_exact, search.backtracks
    );

    // The path-enumeration baseline sees the false path explicitly.
    let paths = path_analysis(&c, s, 100, 10);
    println!(
        "path-enumeration baseline: {} paths examined before a sensitizable one of length {:?}",
        paths.paths_examined, paths.delay_estimate
    );
    assert_eq!(
        search.delay, oracle.delay,
        "verifier must agree with oracle"
    );
    println!("OK: verifier and oracle agree (exact = {}).", search.delay);
}
