//! Development probe: which pipeline stage settles each gadget at
//! δ = exact + 1? Used to tune the suite stand-ins so that each Table 1
//! row exercises the stage the paper reports.

use ltt_core::{exact_delay, verify, Stage, Verdict, VerifyConfig};
use ltt_netlist::generators::{
    array_multiplier, carry_skip_adder, false_path_chain, stem_conflict_circuit,
};
use ltt_netlist::transform::nor_mapping;
use ltt_netlist::{Circuit, CircuitBuilder, DelayInterval, GateKind, NetId};

fn d10() -> DelayInterval {
    DelayInterval::fixed(10)
}

/// Forked false-path chain: the long branch splits into two parallel
/// chains (both falsified by the shared stem) that reconverge before the
/// final OR — ambiguity that stalls local narrowing at the merge.
fn forked_chain(p: usize, q: usize) -> Circuit {
    let mut b = CircuitBuilder::new("forked");
    let x0 = b.input("x0");
    let x1 = b.input("x1");
    let shared = b.input("shared");
    let mut n = b.gate("n1", GateKind::And, &[x0, x1], d10());
    for i in 2..p {
        let side = b.input(format!("p{i}"));
        let kind = if i % 2 == 1 {
            GateKind::Or
        } else {
            GateKind::And
        };
        n = b.gate(format!("n{i}"), kind, &[n, side], d10());
    }
    n = b.gate(format!("n{p}"), GateKind::And, &[n, shared], d10());
    let sb = b.input("sb");
    let short = b.gate("short", GateKind::And, &[n, sb], d10());
    // Two parallel falsified branches of length q−1, merged by an OR.
    let mut arms: Vec<NetId> = Vec::new();
    for arm in ["a", "b"] {
        let mut a = b.gate(format!("{arm}1"), GateKind::Or, &[n, shared], d10());
        for j in 2..q {
            let side = b.input(format!("{arm}side{j}"));
            a = b.gate(format!("{arm}{j}"), GateKind::And, &[a, side], d10());
        }
        arms.push(a);
    }
    let merge = b.gate("merge", GateKind::Or, &[arms[0], arms[1]], d10());
    let s = b.gate("s", GateKind::Or, &[merge, short], d10());
    b.mark_output(s);
    b.build().unwrap()
}

/// Mux-conflict cone: s = OR(AND(y, A), AND(¬y, B)) where the A-chain is
/// transparent only when y settles 0 and the B-chain only when y settles 1.
fn conflict_mux(chain: usize) -> Circuit {
    let mut b = CircuitBuilder::new("mux");
    let y = b.input("y");
    let ny = b.gate("ny", GateKind::Not, &[y], d10());
    let xa = b.input("xa");
    let xb = b.input("xb");
    let mut a = xa;
    let mut bb = xb;
    for j in 0..chain {
        let (ka, kb) = if j % 2 == 0 {
            (GateKind::Or, GateKind::Or)
        } else {
            (GateKind::And, GateKind::And)
        };
        let (sa, sb): (NetId, NetId) = if j % 2 == 0 {
            (y, ny) // OR side: must settle 0 ⇒ A needs y=0, B needs y=1
        } else {
            let fa = b.input(format!("fa{j}"));
            let fb = b.input(format!("fb{j}"));
            (fa, fb)
        };
        a = b.gate(format!("a{j}"), ka, &[a, sa], d10());
        bb = b.gate(format!("b{j}"), kb, &[bb, sb], d10());
    }
    let m1 = b.gate("m1", GateKind::And, &[a, y], d10());
    let m2 = b.gate("m2", GateKind::And, &[bb, ny], d10());
    let s = b.gate("s", GateKind::Or, &[m1, m2], d10());
    b.mark_output(s);
    b.build().unwrap()
}

fn probe(name: &str, c: &Circuit) {
    let s = c.outputs()[0];
    let config = VerifyConfig::default();
    let search = exact_delay(c, s, &config);
    let top = c.arrival_times()[s.index()];
    let exact = search.delay;
    // Cross-check with the oracle when feasible.
    let oracle = ltt_sta::exhaustive_floating_delay(c, s).map(|f| f.delay);
    let r = verify(c, s, exact + 1, &config);
    let stage = match &r.verdict {
        Verdict::NoViolation { stage } => match stage {
            Stage::Narrowing => "narrowing",
            Stage::Dominators => "dominators",
            Stage::StemCorrelation => "stems",
            Stage::CaseAnalysis => "case-analysis",
            Stage::Sat => "sat",
        },
        other => {
            println!("{name}: UNEXPECTED verdict at exact+1: {other:?}");
            return;
        }
    };
    println!(
        "{name}: top={top} exact={exact} (oracle {oracle:?}, proven={}) stage@exact+1={stage} backtracks={}",
        search.proven_exact, search.backtracks
    );
}

fn probe_critical(name: &str, c: &Circuit) {
    // Probe using the critical (max-arrival) output.
    let arrival = c.arrival_times();
    let s = c
        .outputs()
        .iter()
        .copied()
        .max_by_key(|o| arrival[o.index()])
        .unwrap();
    let config = ltt_core::VerifyConfig {
        max_backtracks: 20_000,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let search = exact_delay(c, s, &config);
    let top = arrival[s.index()];
    if search.proven_exact {
        let r = verify(c, s, search.delay + 1, &config);
        let stage = match &r.verdict {
            Verdict::NoViolation { stage } => format!("{stage:?}"),
            other => format!("{other:?}"),
        };
        println!(
            "{name}: top={top} exact={} stage@exact+1={stage} backtracks={} ({} ms)",
            search.delay,
            search.backtracks,
            t0.elapsed().as_millis()
        );
    } else {
        println!(
            "{name}: top={top} ABANDONED, bounds [{}, {}], backtracks={} ({} ms)",
            search.delay,
            search.upper_bound,
            search.backtracks,
            t0.elapsed().as_millis()
        );
    }
}

fn main() {
    probe("chain(6,3)", &false_path_chain(6, 3, 10));
    probe("forked(6,3)", &forked_chain(6, 3));
    probe("forked(8,4)", &forked_chain(8, 4));
    probe("forked(12,5)", &forked_chain(12, 5));
    probe("mux(4)", &conflict_mux(4));
    probe("mux(6)", &conflict_mux(6));
    probe("stemlib(8)", &stem_conflict_circuit(8, 10));
    probe("stemlib(12)", &stem_conflict_circuit(12, 10));
    probe_critical("carry_skip(8,4)", &carry_skip_adder(8, 4, 10));
    probe_critical("carry_skip(16,4)x50", &carry_skip_adder(16, 4, 50));
    probe_critical("mul8_nor", &nor_mapping(&array_multiplier(8, 10), 10));
}
