//! The path-enumeration blow-up experiment (the paper's §1 motivation:
//! "path oriented timing verifiers suffer from poor performance as they may
//! have to enumerate a very large number of paths").
//!
//! Workload: `k` serial copies of the Figure-1-style false-path gadget.
//! Every path longer than the exact delay routes through at least one
//! falsified long branch, and their number grows exponentially with `k` —
//! a path-oriented verifier must refute each one, while the waveform
//! narrower settles the same `δ = exact + 1` check with near-linear work.
//!
//! Run with `cargo run --release -p ltt-bench --bin path_blowup`.

use ltt_bench::render::Table;
use ltt_core::{verify, VerifyConfig};
use ltt_netlist::{Circuit, CircuitBuilder, DelayInterval, GateKind};
use ltt_sta::count_paths_at_least;

/// `k` serial false-path gadgets (prefix 4, long branch 2 each, like the
/// paper's Figure 1): top = k·70-ish, exact = k·60-ish levels.
fn serial_gadgets(k: usize) -> Circuit {
    let d = DelayInterval::fixed(10);
    let mut b = CircuitBuilder::new(format!("serial{k}"));
    let mut feed = b.input("x0");
    for g in 0..k {
        let x1 = b.input(format!("x1_{g}"));
        let shared = b.input(format!("sh_{g}"));
        let mut n = b.gate(format!("n1_{g}"), GateKind::And, &[feed, x1], d);
        for i in 2..4 {
            let side = b.input(format!("p{i}_{g}"));
            let kind = if i % 2 == 1 {
                GateKind::Or
            } else {
                GateKind::And
            };
            n = b.gate(format!("n{i}_{g}"), kind, &[n, side], d);
        }
        n = b.gate(format!("n4_{g}"), GateKind::And, &[n, shared], d);
        let sb = b.input(format!("sb_{g}"));
        let short = b.gate(format!("short_{g}"), GateKind::And, &[n, sb], d);
        let a1 = b.gate(format!("a1_{g}"), GateKind::Or, &[n, shared], d);
        let q2 = b.input(format!("q2_{g}"));
        let a2 = b.gate(format!("a2_{g}"), GateKind::And, &[a1, q2], d);
        feed = b.gate(format!("s_{g}"), GateKind::Or, &[a2, short], d);
    }
    b.mark_output(feed);
    b.build().expect("serial gadget chain is valid")
}

fn main() {
    let mut table = Table::new(&[
        "gadgets",
        "gates",
        "top",
        "exact",
        "false paths >= exact+1",
        "narrowing events",
        "stage",
        "narrowing ms",
    ]);
    for k in [1usize, 2, 4, 8, 16, 32] {
        let c = serial_gadgets(k);
        let s = c.outputs()[0];
        let top = c.arrival_times()[s.index()];
        // Exact by construction: each gadget's true route is 6 levels, the
        // false one 7 (validated against the oracle for small k in the
        // integration tests).
        let exact = 60 * k as i64;
        let delta = exact + 1;
        // Exact count via DP (the enumerator itself blows up in memory on
        // the larger instances — the experiment's point).
        let count = count_paths_at_least(&c, s, delta);
        let config = VerifyConfig::default();
        let r = verify(&c, s, delta, &config);
        let stage = match &r.verdict {
            ltt_core::Verdict::NoViolation { stage } => format!("{stage:?}"),
            other => format!("{other:?}"),
        };
        table.row(&[
            k.to_string(),
            c.num_gates().to_string(),
            top.to_string(),
            exact.to_string(),
            count.to_string(),
            r.solver.events.to_string(),
            stage,
            format!("{:.2}", r.elapsed.as_secs_f64() * 1e3),
        ]);
    }
    println!("Path enumeration vs. waveform narrowing, k serial false-path gadgets");
    println!("(every listed path must be individually refuted by a path-oriented");
    println!("verifier; the narrower proves the same δ = exact+1 check once)");
    println!();
    println!("{}", table.render());
}
