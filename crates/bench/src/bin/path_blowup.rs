//! The path-enumeration blow-up experiment (the paper's §1 motivation:
//! "path oriented timing verifiers suffer from poor performance as they may
//! have to enumerate a very large number of paths").
//!
//! Workload: `k` serial copies of the Figure-1-style false-path gadget
//! ([`ltt_netlist::generators::serial_false_path_gadgets`]). Every path
//! longer than the exact delay routes through at least one falsified long
//! branch, and their number grows exponentially with `k` — a path-oriented
//! verifier must refute each one, while the waveform narrower settles the
//! same `δ = exact + 1` check with near-linear work.
//!
//! Run with `cargo run --release -p ltt-bench --bin path_blowup`.
//!
//! `--emit K FILE` instead writes the `k = K` instance as a `.bench`
//! netlist and exits — this is how CI materializes the stress circuit for
//! the `ltt … --deadline-ms` smoke runs.

use ltt_bench::render::Table;
use ltt_core::{verify, VerifyConfig};
use ltt_netlist::bench_format::write_bench;
use ltt_netlist::generators::serial_false_path_gadgets;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(rest) = args.split_first().filter(|(flag, _)| *flag == "--emit") {
        return emit(rest.1);
    }
    let mut table = Table::new(&[
        "gadgets",
        "gates",
        "top",
        "exact",
        "false paths >= exact+1",
        "narrowing events",
        "stage",
        "narrowing ms",
    ]);
    for k in [1usize, 2, 4, 8, 16, 32] {
        let c = serial_false_path_gadgets(k, 10);
        let s = c.outputs()[0];
        let top = c.arrival_times()[s.index()];
        // Exact by construction: each gadget's true route is 6 levels, the
        // false one 7 (validated against the oracle for small k in the
        // integration tests).
        let exact = 60 * k as i64;
        let delta = exact + 1;
        // Exact count via DP (the enumerator itself blows up in memory on
        // the larger instances — the experiment's point).
        let count = ltt_sta::count_paths_at_least(&c, s, delta);
        let config = VerifyConfig::default();
        let r = verify(&c, s, delta, &config);
        let stage = match &r.verdict {
            ltt_core::Verdict::NoViolation { stage } => format!("{stage:?}"),
            other => format!("{other:?}"),
        };
        table.row(&[
            k.to_string(),
            c.num_gates().to_string(),
            top.to_string(),
            exact.to_string(),
            count.to_string(),
            r.solver.events.to_string(),
            stage,
            format!("{:.2}", r.elapsed.as_secs_f64() * 1e3),
        ]);
    }
    println!("Path enumeration vs. waveform narrowing, k serial false-path gadgets");
    println!("(every listed path must be individually refuted by a path-oriented");
    println!("verifier; the narrower proves the same δ = exact+1 check once)");
    println!();
    println!("{}", table.render());
    ExitCode::SUCCESS
}

fn emit(rest: &[String]) -> ExitCode {
    let (k, path) = match rest {
        [k, path] => match k.parse::<usize>() {
            Ok(k) if k > 0 => (k, path),
            _ => {
                eprintln!("--emit needs a positive gadget count");
                return ExitCode::from(3);
            }
        },
        _ => {
            eprintln!("usage: path_blowup --emit K FILE");
            return ExitCode::from(3);
        }
    };
    let c = serial_false_path_gadgets(k, 10);
    if let Err(e) = std::fs::write(path, write_bench(&c)) {
        eprintln!("cannot write `{path}`: {e}");
        return ExitCode::from(3);
    }
    println!(
        "wrote {path}: k = {k}, {} gates, topological {}, exact floating delay {}",
        c.num_gates(),
        c.topological_delay(),
        60 * k
    );
    ExitCode::SUCCESS
}
