//! Regenerates the paper's **Table 1**: the full pipeline on the
//! evaluation suite (real c17 + synthetic ISCAS'85 stand-ins), reporting
//! per-stage verdicts, case-analysis backtracks, and CPU time, with the
//! paper's reference values alongside.
//!
//! Run with `cargo run --release -p ltt-bench --bin table1`.
//! Pass `--quick` to skip the two largest stand-ins, `--jobs N` to fan
//! each entry's per-output checks over N workers (0 = one per hardware
//! thread), and `--compare` to run the suite twice — serial and parallel —
//! and report both wall-clocks. Verdict columns are identical either way.

use ltt_bench::table1::{render_rows, run_entry_with, Table1Row};
use ltt_core::{BatchRunner, VerifyConfig};
use ltt_netlist::suite::{iscas85_suite, SuiteEntry};
use std::time::{Duration, Instant};

fn run_suite(
    suite: &[SuiteEntry],
    config: &VerifyConfig,
    runner: BatchRunner,
    quick: bool,
) -> (Vec<Table1Row>, Duration) {
    let t0 = Instant::now();
    let mut rows = Vec::new();
    for entry in suite {
        if quick && entry.circuit.num_gates() > 2000 {
            eprintln!("[skip] {} (--quick)", entry.name);
            continue;
        }
        eprintln!(
            "[run ] {} ({} gates, top {}, {} job(s))",
            entry.name,
            entry.circuit.num_gates(),
            entry.circuit.topological_delay(),
            runner.jobs()
        );
        rows.extend(run_entry_with(entry, config, runner.clone()));
    }
    (rows, t0.elapsed())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let compare = args.iter().any(|a| a == "--compare");
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--jobs needs an integer"))
        .unwrap_or(0);
    // The paper abandons c6288 after an excessive number of backtracks;
    // bound the budget the same way.
    let config = VerifyConfig {
        max_backtracks: 20_000,
        ..Default::default()
    };

    let suite = iscas85_suite(10);
    let runner = BatchRunner::new(jobs);
    let serial_wall = if compare {
        let (_, wall) = run_suite(&suite, &config, BatchRunner::serial(), quick);
        Some(wall)
    } else {
        None
    };
    let (rows, wall) = run_suite(&suite, &config, runner.clone(), quick);

    println!("Table 1 — ISCAS'85 evaluation (delay 10 per gate)");
    println!("(stand-ins marked sNNN; see DESIGN.md for the substitution)");
    println!();
    println!("{}", render_rows(&rows));
    println!("Legend: P possible violation, N no violation possible, V test");
    println!("vector found, A abandoned (backtrack budget), - stage not needed;");
    println!("E = exact floating-mode delay, U = proven upper bound.");
    println!();
    match serial_wall {
        Some(serial) => println!(
            "suite wall-clock: serial {:.2} s → {} job(s) {:.2} s ({:.2}x)",
            serial.as_secs_f64(),
            runner.jobs(),
            wall.as_secs_f64(),
            serial.as_secs_f64() / wall.as_secs_f64().max(1e-9)
        ),
        None => println!(
            "suite wall-clock: {:.2} s with {} job(s)",
            wall.as_secs_f64(),
            runner.jobs()
        ),
    }
}
