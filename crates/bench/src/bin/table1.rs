//! Regenerates the paper's **Table 1**: the full pipeline on the
//! evaluation suite (real c17 + synthetic ISCAS'85 stand-ins), reporting
//! per-stage verdicts, case-analysis backtracks, and CPU time, with the
//! paper's reference values alongside.
//!
//! Run with `cargo run --release -p ltt-bench --bin table1`.
//! Pass `--quick` to skip the two largest stand-ins, `--jobs N` to fan
//! each entry's per-output checks over N workers (0 = one per hardware
//! thread), and `--compare` to run the suite twice — serial and parallel —
//! and report both wall-clocks. Verdict columns are identical either way.
//! `--trace FILE` records per-stage spans of every check and writes them
//! as Chrome-trace JSON (load in chrome://tracing), plus a per-stage
//! wall-clock rollup — the Table 1 time columns broken down by pipeline
//! stage. Verdicts are identical with or without tracing.
//! `--bench-json FILE` writes the same rollup as a machine-readable
//! benchmark artifact (suite wall-clock plus per-stage span counts and
//! totals) for CI trend tracking; it implies recording.
//! `--engine narrow|sat|hybrid` re-runs the table through the selected
//! verification backend (DESIGN.md §15) — the narrow-vs-sat wall-clock
//! comparison in EXPERIMENTS.md is two invocations of this flag.

use ltt_bench::table1::{render_rows, run_entry_with, Table1Row};
use ltt_core::{BatchRunner, Engine, Obs, Recorder, VerifyConfig};
use ltt_netlist::suite::{iscas85_suite, SuiteEntry};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn run_suite(
    suite: &[SuiteEntry],
    config: &VerifyConfig,
    runner: BatchRunner,
    quick: bool,
) -> (Vec<Table1Row>, Duration) {
    let t0 = Instant::now();
    let mut rows = Vec::new();
    for entry in suite {
        if quick && entry.circuit.num_gates() > 2000 {
            eprintln!("[skip] {} (--quick)", entry.name);
            continue;
        }
        eprintln!(
            "[run ] {} ({} gates, top {}, {} job(s))",
            entry.name,
            entry.circuit.num_gates(),
            entry.circuit.topological_delay(),
            runner.jobs()
        );
        rows.extend(run_entry_with(entry, config, runner.clone()));
    }
    (rows, t0.elapsed())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let compare = args.iter().any(|a| a == "--compare");
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--jobs needs an integer"))
        .unwrap_or(0);
    let trace: Option<String> = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| args.get(i + 1).expect("--trace needs a file").clone());
    let bench_json: Option<String> = args
        .iter()
        .position(|a| a == "--bench-json")
        .map(|i| args.get(i + 1).expect("--bench-json needs a file").clone());
    let engine = args
        .iter()
        .position(|a| a == "--engine")
        .map(|i| args.get(i + 1).expect("--engine needs a name"))
        .map(|name| Engine::parse(name).expect("--engine needs narrow, sat, or hybrid"))
        .unwrap_or(Engine::Narrow);
    let recorder = (trace.is_some() || bench_json.is_some()).then(|| Arc::new(Recorder::new()));
    // The paper abandons c6288 after an excessive number of backtracks;
    // bound the budget the same way (the cap doubles as the CDCL conflict
    // cap under `--engine sat`).
    let config = VerifyConfig {
        max_backtracks: 20_000,
        engine,
        obs: recorder
            .as_ref()
            .map_or_else(Obs::disabled, |r| Obs::recording(r.clone())),
        ..Default::default()
    };

    let suite = iscas85_suite(10);
    let runner = BatchRunner::new(jobs);
    let serial_wall = if compare {
        let (_, wall) = run_suite(&suite, &config, BatchRunner::serial(), quick);
        Some(wall)
    } else {
        None
    };
    let (rows, wall) = run_suite(&suite, &config, runner.clone(), quick);

    println!("Table 1 — ISCAS'85 evaluation (delay 10 per gate)");
    println!("(stand-ins marked sNNN; see DESIGN.md for the substitution)");
    println!();
    println!("{}", render_rows(&rows));
    println!("Legend: P possible violation, N no violation possible, V test");
    println!("vector found, A abandoned (backtrack budget), - stage not needed;");
    println!("E = exact floating-mode delay, U = proven upper bound.");
    println!();
    match serial_wall {
        Some(serial) => println!(
            "suite wall-clock: serial {:.2} s → {} job(s) {:.2} s ({:.2}x)",
            serial.as_secs_f64(),
            runner.jobs(),
            wall.as_secs_f64(),
            serial.as_secs_f64() / wall.as_secs_f64().max(1e-9)
        ),
        None => println!(
            "suite wall-clock: {:.2} s with {} job(s)",
            wall.as_secs_f64(),
            runner.jobs()
        ),
    }

    if let Some(recorder) = &recorder {
        let spans = recorder.spans();
        let mut totals: std::collections::BTreeMap<&'static str, (u64, u64)> =
            std::collections::BTreeMap::new();
        for span in &spans {
            let entry = totals.entry(span.name).or_default();
            entry.0 += 1;
            entry.1 += span.dur_us;
        }
        if let Some(path) = &trace {
            std::fs::write(path, recorder.chrome_trace()).expect("write trace file");
            println!();
            println!("per-stage breakdown ({} spans -> {path}):", spans.len());
            for (name, &(count, dur_us)) in &totals {
                println!(
                    "  {name:<24} {count:>8} spans  {:>10.3} s",
                    dur_us as f64 / 1e6
                );
            }
        }
        if let Some(path) = &bench_json {
            // Machine-readable rollup for CI trend tracking. Stage names
            // are static identifiers (no escaping needed).
            use std::fmt::Write;
            let mut json = String::new();
            let _ = write!(
                json,
                "{{\n  \"suite\": \"table1\",\n  \"quick\": {quick},\n  \"jobs\": {},\n  \"wall_s\": {:.6},\n  \"stages\": {{",
                runner.jobs(),
                wall.as_secs_f64()
            );
            for (i, (name, &(count, dur_us))) in totals.iter().enumerate() {
                let _ = write!(
                    json,
                    "{}\n    \"{name}\": {{ \"spans\": {count}, \"total_s\": {:.6} }}",
                    if i == 0 { "" } else { "," },
                    dur_us as f64 / 1e6
                );
            }
            let _ = writeln!(json, "\n  }}\n}}");
            std::fs::write(path, json).expect("write bench-json file");
            eprintln!("[json] per-stage rollup -> {path}");
        }
    }
}
