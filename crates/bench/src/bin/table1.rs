//! Regenerates the paper's **Table 1**: the full pipeline on the
//! evaluation suite (real c17 + synthetic ISCAS'85 stand-ins), reporting
//! per-stage verdicts, case-analysis backtracks, and CPU time, with the
//! paper's reference values alongside.
//!
//! Run with `cargo run --release -p ltt-bench --bin table1`.
//! Pass `--quick` to skip the two largest stand-ins.

use ltt_bench::table1::{render_rows, run_entry};
use ltt_core::VerifyConfig;
use ltt_netlist::suite::iscas85_suite;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // The paper abandons c6288 after an excessive number of backtracks;
    // bound the budget the same way.
    let config = VerifyConfig {
        max_backtracks: 20_000,
        ..Default::default()
    };

    let suite = iscas85_suite(10);
    let mut rows = Vec::new();
    for entry in &suite {
        if quick && entry.circuit.num_gates() > 2000 {
            eprintln!("[skip] {} (--quick)", entry.name);
            continue;
        }
        eprintln!(
            "[run ] {} ({} gates, top {})",
            entry.name,
            entry.circuit.num_gates(),
            entry.circuit.topological_delay()
        );
        rows.extend(run_entry(entry, &config));
    }
    println!("Table 1 — ISCAS'85 evaluation (delay 10 per gate)");
    println!("(stand-ins marked sNNN; see DESIGN.md for the substitution)");
    println!();
    println!("{}", render_rows(&rows));
    println!("Legend: P possible violation, N no violation possible, V test");
    println!("vector found, A abandoned (backtrack budget), - stage not needed;");
    println!("E = exact floating-mode delay, U = proven upper bound.");
}
