//! Ablation study: the marginal power of each pipeline stage, quantified
//! over the suite's false-path circuits (the analytic counterpart of the
//! BEFORE/AFTER columns of Table 1).
//!
//! For every circuit with a false longest path we run the `δ = exact + 1`
//! check under four configurations — narrowing only, + dominators, + stem
//! correlation, full (+ case analysis) — and report the verdict and time of
//! each.
//!
//! Run with `cargo run --release -p ltt-bench --bin ablation`.

use ltt_bench::render::Table;
use ltt_bench::table1::critical_output;
use ltt_core::{exact_delay, verify, Verdict, VerifyConfig};
use ltt_netlist::suite::{standin, standin_specs, SpineKind};

fn tag(v: &Verdict) -> &'static str {
    match v {
        Verdict::NoViolation { .. } => "N",
        Verdict::Violation { .. } => "V",
        Verdict::Possible => "P",
        Verdict::Abandoned => "A",
    }
}

fn main() {
    let mut table = Table::new(&[
        "circuit",
        "delta",
        "narrowing",
        "+dominators",
        "+stems",
        "full",
        "full cpu (ms)",
    ]);
    for spec in standin_specs() {
        if spec.exact_levels == spec.levels && spec.kind == SpineKind::Chain {
            continue; // no false path: nothing to ablate
        }
        let c = standin(&spec, 10);
        let s = critical_output(&c);
        let full = VerifyConfig {
            max_backtracks: 20_000,
            ..Default::default()
        };
        let search = exact_delay(&c, s, &full);
        if !search.proven_exact {
            eprintln!("[skip] {}: search abandoned", spec.name);
            continue;
        }
        let delta = search.delay + 1;

        let configs = [
            VerifyConfig {
                dominators: false,
                stem_correlation: false,
                case_analysis: false,
                ..full.clone()
            },
            VerifyConfig {
                stem_correlation: false,
                case_analysis: false,
                ..full.clone()
            },
            VerifyConfig {
                case_analysis: false,
                ..full.clone()
            },
            full.clone(),
        ];
        let results: Vec<_> = configs
            .iter()
            .map(|cfg| verify(&c, s, delta, cfg))
            .collect();
        table.row(&[
            spec.name.to_string(),
            delta.to_string(),
            tag(&results[0].verdict).to_string(),
            tag(&results[1].verdict).to_string(),
            tag(&results[2].verdict).to_string(),
            tag(&results[3].verdict).to_string(),
            format!("{:.2}", results[3].elapsed.as_secs_f64() * 1e3),
        ]);
    }
    println!("Ablation: verdict of the δ = exact+1 check per configuration");
    println!("(P = still inconclusive at that configuration, N = proven)");
    println!();
    println!("{}", table.render());
}
