//! `loadgen` — a concurrent load generator for `ltt-serve` daemons and
//! `ltt-router` fleets.
//!
//! Spawns N client connections, each issuing M `check` requests against a
//! set of registered circuits, and reports throughput plus latency
//! percentiles. With no `--addr`, an in-process target is started on an
//! ephemeral port and drained at the end — a single daemon by default, a
//! router over `--fleet K` in-process backends when asked — so one
//! command exercises the full serving (or fleet) path; the CI smoke and
//! chaos jobs run exactly that.
//!
//! ```text
//! loadgen [--addr A] [--clients N] [--requests M]
//!         [--circuit c17|figure1|adder] [--circuits K] [--zipf S]
//!         [--fleet B] [--replicas R] [--verify] [--churn R]
//!         [--jobs J] [--queue-cap Q]
//! ```
//!
//! `--circuits K` spreads load over K circuit variants (the named circuit
//! plus K−1 deterministic random DAGs); `--zipf S` skews their popularity
//! Zipf-style (rank r drawn ∝ 1/r^S — S 0 is uniform, S ≥ 1 gives a hot
//! head, the shape real registry traffic has). `--verify` precomputes
//! every check's expected outcome with an in-process [`CheckSession`] and
//! counts any served reply that disagrees — served answers must be
//! *identical* to local ones no matter how many hops or failovers the
//! fleet inserted. `--churn R` makes every R-th request an ECO `patch`
//! (re-annotating the delay of the first output's driver, with an
//! all-outputs re-check bundled in the same round-trip); those
//! incremental re-verifications report their own latency percentiles,
//! separate from the steady-state check latencies. Churned revisions
//! chain off the base circuit, so the plain-check oracle stays valid;
//! patched replies are checked for well-formedness, not against the
//! (pre-edit) oracle.
//!
//! Exit code 0 when every request was answered correctly (violations are
//! expected — the load mix probes around each output's exact delay;
//! `overloaded`/`unavailable`/`shutting_down` rejections are counted but
//! tolerated: they are the backpressure contract, not wrong answers);
//! 1 when any request failed, any verified reply mismatched, or the
//! transport broke.

use ltt_core::{CheckSession, Verdict, VerifyConfig};
use ltt_netlist::bench_format::write_bench;
use ltt_netlist::generators::{carry_skip_adder, figure1, random_circuit, RandomCircuitConfig};
use ltt_netlist::suite::c17;
use ltt_netlist::Circuit;
use ltt_serve::{percentile, Client, Json, Router, RouterConfig, ServeConfig, Server};
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Args {
    addr: Option<String>,
    clients: usize,
    requests: usize,
    circuit: String,
    circuits: usize,
    zipf: f64,
    fleet: usize,
    replicas: usize,
    verify: bool,
    churn: usize,
    jobs: usize,
    queue_cap: usize,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        clients: 8,
        requests: 25,
        circuit: "c17".to_string(),
        circuits: 1,
        zipf: 0.0,
        fleet: 0,
        replicas: 2,
        verify: false,
        churn: 0,
        jobs: 0,
        queue_cap: 64,
        shutdown: true,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|_| "--clients needs an integer")?
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests needs an integer")?
            }
            "--circuit" => args.circuit = value("--circuit")?,
            "--circuits" => {
                args.circuits = value("--circuits")?
                    .parse()
                    .map_err(|_| "--circuits needs an integer")?
            }
            "--zipf" => {
                args.zipf = value("--zipf")?
                    .parse()
                    .map_err(|_| "--zipf needs a number")?
            }
            "--fleet" => {
                args.fleet = value("--fleet")?
                    .parse()
                    .map_err(|_| "--fleet needs an integer")?
            }
            "--replicas" => {
                args.replicas = value("--replicas")?
                    .parse()
                    .map_err(|_| "--replicas needs an integer")?
            }
            "--verify" => args.verify = true,
            "--churn" => {
                args.churn = value("--churn")?
                    .parse()
                    .map_err(|_| "--churn needs an integer")?
            }
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs needs an integer")?
            }
            "--queue-cap" => {
                args.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|_| "--queue-cap needs an integer")?
            }
            "--no-shutdown" => args.shutdown = false,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if args.clients == 0 || args.requests == 0 || args.circuits == 0 {
        return Err("--clients, --requests, and --circuits must be positive".to_string());
    }
    if !args.zipf.is_finite() || args.zipf < 0.0 {
        return Err("--zipf must be a finite non-negative number".to_string());
    }
    Ok(args)
}

fn pick_circuit(name: &str) -> Result<Circuit, String> {
    match name {
        "c17" => Ok(c17(10)),
        "figure1" => Ok(figure1(10)),
        "adder" => Ok(carry_skip_adder(4, 2, 10)),
        other => Err(format!(
            "unknown circuit `{other}` (expected c17, figure1, or adder)"
        )),
    }
}

/// One circuit variant of the load mix: its netlist source, the outputs
/// and deltas probed, and (under `--verify`) the expected outcome of
/// every (output, delta) cell.
struct Variant {
    name: String,
    source: String,
    outputs: Vec<String>,
    deltas: Vec<i64>,
    /// `expected[output_idx][delta_idx]` — the served `outcome` string a
    /// correct reply must carry. Empty when not verifying.
    expected: Vec<Vec<&'static str>>,
}

/// Builds the variant set: variant 0 is the named circuit, variants 1..K
/// are deterministic random DAGs (distinct seeds, so distinct content
/// hashes — each gets its own ring owner).
fn build_variants(args: &Args, base: &Circuit) -> Vec<Variant> {
    (0..args.circuits)
        .map(|i| {
            let circuit;
            let circuit = if i == 0 {
                base
            } else {
                circuit = random_circuit(&RandomCircuitConfig {
                    num_gates: 60,
                    num_outputs: 3,
                    seed: 0x10AD ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ..Default::default()
                });
                &circuit
            };
            let outputs: Vec<String> = circuit
                .outputs()
                .iter()
                .map(|&o| circuit.net(o).name().to_string())
                .collect();
            // Probe around the interesting region: half the topological
            // delay up to just past it (a mix of violations and proofs).
            let top = circuit.topological_delay();
            let deltas: Vec<i64> = vec![top / 2, top - 10, top, top + 1];
            let expected = if args.verify {
                let session = CheckSession::new(circuit, VerifyConfig::default());
                circuit
                    .outputs()
                    .iter()
                    .map(|&o| {
                        deltas
                            .iter()
                            .map(|&delta| match session.verify(o, delta).verdict {
                                Verdict::Violation { .. } => "violation",
                                Verdict::NoViolation { .. } => "all_safe",
                                Verdict::Possible | Verdict::Abandoned => "undecided",
                            })
                            .collect()
                    })
                    .collect()
            } else {
                Vec::new()
            };
            Variant {
                name: format!("loadgen-{i}"),
                source: write_bench(circuit),
                outputs,
                deltas,
                expected,
            }
        })
        .collect()
}

/// The cumulative Zipf distribution over variant *ranks*: rank r (1-based)
/// is drawn with probability ∝ 1/r^s. `s = 0` degenerates to uniform.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// XorShift64 — a tiny deterministic PRNG so every run issues the same
/// request stream for a given client count.
fn xorshift64(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// One client's tally.
#[derive(Default)]
struct Tally {
    latencies: Vec<Duration>,
    /// Round-trip latencies of `--churn` patch requests (ECO edit +
    /// bundled incremental re-check), tallied apart from plain checks.
    churn_latencies: Vec<Duration>,
    violations: u64,
    safe: u64,
    undecided: u64,
    failures: u64,
    /// Structured backpressure: `overloaded`, `unavailable`, or
    /// `shutting_down` — honest "not now" answers, not wrong ones.
    rejected: u64,
    /// `--verify` replies whose outcome differed from the local oracle.
    mismatched: u64,
}

fn run_client(
    addr: &str,
    variants: &[Variant],
    cdf: &[f64],
    requests: usize,
    client_index: usize,
    verify: bool,
    churn: usize,
) -> std::io::Result<Tally> {
    let mut client = Client::connect(addr)?;
    // Every client registers every variant: the first miss parses, the
    // rest hit the content-hashed cache — which is itself part of the
    // workload (and, through a router, exercises the replica fan-out).
    let mut ids: HashMap<usize, String> = HashMap::new();
    for (v, variant) in variants.iter().enumerate() {
        let reply = client.call(&Json::obj([
            ("op", Json::str("register")),
            ("name", Json::str(variant.name.clone())),
            ("source", Json::str(variant.source.clone())),
        ]))?;
        let circuit = reply
            .get("circuit")
            .and_then(Json::as_str)
            .ok_or_else(|| std::io::Error::other(format!("register failed: {}", reply.encode())))?
            .to_string();
        ids.insert(v, circuit);
    }
    let mut rng = (client_index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut tally = Tally::default();
    let mut patches_sent = 0u64;
    for i in 0..requests {
        // Zipf-pick the variant, then walk its (output, delta) grid
        // deterministically.
        let u = (xorshift64(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
        let v = cdf.iter().position(|&c| u < c).unwrap_or(cdf.len() - 1);
        let variant = &variants[v];
        let oi = (client_index + i) % variant.outputs.len();
        let di = (client_index + i / variant.outputs.len()) % variant.deltas.len();
        let is_churn = churn > 0 && (i + 1) % churn == 0;
        let request = if is_churn {
            // An ECO patch chained off the *base* revision (so the plain
            // checks keep hitting the unedited circuit the oracle knows):
            // re-annotate the first output's driver, alternating between
            // two delays, and bundle an all-outputs re-check at δ = top.
            patches_sent += 1;
            let delay = 11 + (patches_sent % 2) as i64;
            Json::obj([
                ("op", Json::str("patch")),
                ("circuit", Json::str(ids[&v].clone())),
                (
                    "edits",
                    Json::Arr(vec![Json::obj([
                        ("gate", Json::str(variant.outputs[0].clone())),
                        ("delay", Json::Int(delay)),
                    ])]),
                ),
                ("delta", Json::Int(variant.deltas[2])),
                ("id", Json::Int(i as i64)),
            ])
        } else {
            Json::obj([
                ("op", Json::str("check")),
                ("circuit", Json::str(ids[&v].clone())),
                ("output", Json::str(variant.outputs[oi].clone())),
                ("delta", Json::Int(variant.deltas[di])),
                ("id", Json::Int(i as i64)),
            ])
        };
        let start = Instant::now();
        let reply = client.call(&request)?;
        let elapsed = start.elapsed();
        if is_churn {
            tally.churn_latencies.push(elapsed);
        } else {
            tally.latencies.push(elapsed);
        }
        match reply.get("outcome").and_then(Json::as_str) {
            Some(outcome) => {
                match outcome {
                    "violation" => tally.violations += 1,
                    "all_safe" => tally.safe += 1,
                    "undecided" => tally.undecided += 1,
                    _ => {
                        tally.failures += 1;
                        continue;
                    }
                }
                // The oracle describes the pre-edit circuit, so only
                // plain checks are compared against it.
                if verify && !is_churn && variant.expected[oi][di] != outcome {
                    tally.mismatched += 1;
                    eprintln!(
                        "loadgen: MISMATCH {}:{} δ={} expected {} got {}",
                        variant.name,
                        variant.outputs[oi],
                        variant.deltas[di],
                        variant.expected[oi][di],
                        outcome
                    );
                }
            }
            None => {
                let code = reply
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str)
                    .unwrap_or("");
                match code {
                    "overloaded" | "unavailable" | "shutting_down" => tally.rejected += 1,
                    _ => {
                        tally.failures += 1;
                        eprintln!("loadgen: request failed: {}", reply.encode());
                    }
                }
            }
        }
    }
    Ok(tally)
}

/// The in-process target started when no `--addr` is given: a single
/// daemon, or a router fronting a spawned fleet.
enum LocalTarget {
    Server(
        ltt_serve::ServerHandle,
        std::thread::JoinHandle<std::io::Result<()>>,
    ),
    Router(
        ltt_serve::RouterHandle,
        std::thread::JoinHandle<std::io::Result<()>>,
    ),
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::from(2);
        }
    };
    let base = match pick_circuit(&args.circuit) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::from(2);
        }
    };
    let variants = build_variants(&args, &base);
    let cdf = zipf_cdf(variants.len(), args.zipf);

    // Target: an external daemon/router, or a fresh in-process one.
    let (addr, local) = match &args.addr {
        Some(addr) => (addr.clone(), None),
        None if args.fleet > 0 => {
            let config = RouterConfig {
                spawn: args.fleet,
                backend_jobs: args.jobs,
                backend_queue_cap: args.queue_cap,
                backend_registry_cap: variants.len().max(16),
                replicas: args.replicas,
                ..Default::default()
            };
            let router = match Router::bind(config) {
                Ok(router) => router,
                Err(e) => {
                    eprintln!("loadgen: router bind failed: {e}");
                    return ExitCode::from(1);
                }
            };
            let addr = router.local_addr().expect("bound router").to_string();
            let handle = router.handle();
            let join = std::thread::spawn(move || router.run());
            (addr, Some(LocalTarget::Router(handle, join)))
        }
        None => {
            let config = ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                jobs: args.jobs,
                queue_cap: args.queue_cap,
                ..Default::default()
            };
            let server = match Server::bind(&config) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("loadgen: bind failed: {e}");
                    return ExitCode::from(1);
                }
            };
            let addr = server.local_addr().expect("bound server").to_string();
            let handle = server.handle();
            let join = std::thread::spawn(move || server.run());
            (addr, Some(LocalTarget::Server(handle, join)))
        }
    };
    println!(
        "loadgen: {} clients x {} requests -> {} ({}, {} variant(s), zipf {})",
        args.clients,
        args.requests,
        addr,
        args.circuit,
        variants.len(),
        args.zipf
    );

    let started = Instant::now();
    let tallies: Vec<std::io::Result<Tally>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|i| {
                let (addr, variants, cdf) = (&addr, &variants, &cdf);
                scope.spawn(move || {
                    run_client(
                        addr,
                        variants,
                        cdf,
                        args.requests,
                        i,
                        args.verify,
                        args.churn,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall = started.elapsed();

    let mut latencies = Vec::new();
    let mut churn_latencies = Vec::new();
    let mut total = Tally::default();
    let mut transport_errors = 0u64;
    for result in tallies {
        match result {
            Ok(tally) => {
                latencies.extend(tally.latencies);
                churn_latencies.extend(tally.churn_latencies);
                total.violations += tally.violations;
                total.safe += tally.safe;
                total.undecided += tally.undecided;
                total.failures += tally.failures;
                total.rejected += tally.rejected;
                total.mismatched += tally.mismatched;
            }
            Err(e) => {
                eprintln!("loadgen: client failed: {e}");
                transport_errors += 1;
            }
        }
    }
    latencies.sort();
    churn_latencies.sort();
    let answered = latencies.len() + churn_latencies.len();
    let throughput = answered as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "answered {answered} checks in {:.3}s ({throughput:.0} req/s): \
         {} violation, {} safe, {} undecided, {} failed, {} rejected, {} mismatched",
        wall.as_secs_f64(),
        total.violations,
        total.safe,
        total.undecided,
        total.failures,
        total.rejected,
        total.mismatched,
    );
    println!(
        "latency p50 {:?}  p90 {:?}  p99 {:?}  max {:?}",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.90),
        percentile(&latencies, 0.99),
        latencies.last().copied().unwrap_or(Duration::ZERO),
    );
    if !churn_latencies.is_empty() {
        println!(
            "re-verify (patch) latency over {} ECO(s): p50 {:?}  p90 {:?}  p99 {:?}  max {:?}",
            churn_latencies.len(),
            percentile(&churn_latencies, 0.50),
            percentile(&churn_latencies, 0.90),
            percentile(&churn_latencies, 0.99),
            churn_latencies.last().copied().unwrap_or(Duration::ZERO),
        );
    }

    // Drain the target (ours, or the external one when asked to).
    match local {
        Some(LocalTarget::Server(handle, join)) => {
            if args.shutdown {
                handle.shutdown();
            }
            match join.join() {
                Ok(Ok(())) => println!("server drained cleanly"),
                Ok(Err(e)) => {
                    eprintln!("loadgen: server error: {e}");
                    transport_errors += 1;
                }
                Err(_) => {
                    eprintln!("loadgen: server thread panicked");
                    transport_errors += 1;
                }
            }
        }
        Some(LocalTarget::Router(handle, join)) => {
            if args.shutdown {
                handle.shutdown();
            }
            match join.join() {
                Ok(Ok(())) => println!("router drained cleanly"),
                Ok(Err(e)) => {
                    eprintln!("loadgen: router error: {e}");
                    transport_errors += 1;
                }
                Err(_) => {
                    eprintln!("loadgen: router thread panicked");
                    transport_errors += 1;
                }
            }
        }
        None => {
            if args.shutdown {
                if let Ok(mut client) = Client::connect(&addr) {
                    let _ = client.call(&Json::obj([("op", Json::str("shutdown"))]));
                }
            }
        }
    }

    if total.failures > 0 || total.mismatched > 0 || transport_errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
