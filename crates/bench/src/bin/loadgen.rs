//! `loadgen` — a concurrent load generator for the `ltt-serve` daemon.
//!
//! Spawns N client connections, each issuing M `check` requests against a
//! registered circuit, and reports throughput plus latency percentiles.
//! With no `--addr`, an in-process server is started on an ephemeral port
//! and drained at the end, so one command exercises the full serving path
//! (the CI smoke job runs exactly that).
//!
//! ```text
//! loadgen [--addr A] [--clients N] [--requests M]
//!         [--circuit c17|figure1|adder] [--jobs J] [--queue-cap Q]
//! ```
//!
//! Exit code 0 when every request was answered (violations are expected —
//! the load mix probes around each output's exact delay); 1 when any
//! request failed or the transport broke.

use ltt_netlist::bench_format::write_bench;
use ltt_netlist::generators::{carry_skip_adder, figure1};
use ltt_netlist::suite::c17;
use ltt_netlist::Circuit;
use ltt_serve::{percentile, Client, Json, ServeConfig, Server};
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Args {
    addr: Option<String>,
    clients: usize,
    requests: usize,
    circuit: String,
    jobs: usize,
    queue_cap: usize,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        clients: 8,
        requests: 25,
        circuit: "c17".to_string(),
        jobs: 0,
        queue_cap: 64,
        shutdown: true,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|_| "--clients needs an integer")?
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests needs an integer")?
            }
            "--circuit" => args.circuit = value("--circuit")?,
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs needs an integer")?
            }
            "--queue-cap" => {
                args.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|_| "--queue-cap needs an integer")?
            }
            "--no-shutdown" => args.shutdown = false,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if args.clients == 0 || args.requests == 0 {
        return Err("--clients and --requests must be positive".to_string());
    }
    Ok(args)
}

fn pick_circuit(name: &str) -> Result<Circuit, String> {
    match name {
        "c17" => Ok(c17(10)),
        "figure1" => Ok(figure1(10)),
        "adder" => Ok(carry_skip_adder(4, 2, 10)),
        other => Err(format!(
            "unknown circuit `{other}` (expected c17, figure1, or adder)"
        )),
    }
}

/// One client's tally.
#[derive(Default)]
struct Tally {
    latencies: Vec<Duration>,
    violations: u64,
    safe: u64,
    failures: u64,
}

fn run_client(
    addr: &str,
    source: &str,
    outputs: &[String],
    deltas: &[i64],
    requests: usize,
    seed: usize,
) -> std::io::Result<Tally> {
    let mut client = Client::connect(addr)?;
    // Every client registers: the first miss parses, the rest hit the
    // content-hashed cache — which is itself part of the workload.
    let reply = client.call(&Json::obj([
        ("op", Json::str("register")),
        ("name", Json::str("loadgen")),
        ("source", Json::str(source)),
    ]))?;
    let circuit = reply
        .get("circuit")
        .and_then(Json::as_str)
        .ok_or_else(|| std::io::Error::other(format!("register failed: {}", reply.encode())))?
        .to_string();
    let mut tally = Tally::default();
    for i in 0..requests {
        let output = &outputs[(seed + i) % outputs.len()];
        let delta = deltas[(seed + i / outputs.len()) % deltas.len()];
        let request = Json::obj([
            ("op", Json::str("check")),
            ("circuit", Json::str(circuit.clone())),
            ("output", Json::str(output.clone())),
            ("delta", Json::Int(delta)),
            ("id", Json::Int(i as i64)),
        ]);
        let start = Instant::now();
        let reply = client.call(&request)?;
        tally.latencies.push(start.elapsed());
        match reply.get("outcome").and_then(Json::as_str) {
            Some("violation") => tally.violations += 1,
            Some("all_safe") => tally.safe += 1,
            _ => tally.failures += 1,
        }
    }
    Ok(tally)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::from(2);
        }
    };
    let circuit = match pick_circuit(&args.circuit) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::from(2);
        }
    };
    let source = write_bench(&circuit);
    let outputs: Vec<String> = circuit
        .outputs()
        .iter()
        .map(|&o| circuit.net(o).name().to_string())
        .collect();
    // Probe around the interesting region: half the topological delay up
    // to just past it (a mix of violations and proofs).
    let top = circuit.topological_delay();
    let deltas: Vec<i64> = vec![top / 2, top - 10, top, top + 1];

    // Target: an external daemon, or a fresh in-process one.
    let (addr, local) = match &args.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let config = ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                jobs: args.jobs,
                queue_cap: args.queue_cap,
                ..Default::default()
            };
            let server = match Server::bind(&config) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("loadgen: bind failed: {e}");
                    return ExitCode::from(1);
                }
            };
            let addr = server.local_addr().expect("bound server").to_string();
            let handle = server.handle();
            let join = std::thread::spawn(move || server.run());
            (addr, Some((handle, join)))
        }
    };
    println!(
        "loadgen: {} clients x {} requests -> {} ({})",
        args.clients, args.requests, addr, args.circuit
    );

    let started = Instant::now();
    let tallies: Vec<std::io::Result<Tally>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|i| {
                let (addr, source) = (&addr, &source);
                let (outputs, deltas) = (&outputs, &deltas);
                scope.spawn(move || run_client(addr, source, outputs, deltas, args.requests, i * 7))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall = started.elapsed();

    let mut latencies = Vec::new();
    let mut violations = 0u64;
    let mut safe = 0u64;
    let mut failures = 0u64;
    let mut transport_errors = 0u64;
    for result in tallies {
        match result {
            Ok(tally) => {
                latencies.extend(tally.latencies);
                violations += tally.violations;
                safe += tally.safe;
                failures += tally.failures;
            }
            Err(e) => {
                eprintln!("loadgen: client failed: {e}");
                transport_errors += 1;
            }
        }
    }
    latencies.sort();
    let answered = latencies.len();
    let throughput = answered as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "answered {answered} checks in {:.3}s ({throughput:.0} req/s): \
         {violations} violation, {safe} safe, {failures} failed",
        wall.as_secs_f64()
    );
    println!(
        "latency p50 {:?}  p90 {:?}  p99 {:?}  max {:?}",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.90),
        percentile(&latencies, 0.99),
        latencies.last().copied().unwrap_or(Duration::ZERO),
    );

    // Drain the daemon (ours, or the external one when asked to).
    if let Some((handle, join)) = local {
        if args.shutdown {
            handle.shutdown();
        }
        match join.join() {
            Ok(Ok(())) => println!("server drained cleanly"),
            Ok(Err(e)) => {
                eprintln!("loadgen: server error: {e}");
                transport_errors += 1;
            }
            Err(_) => {
                eprintln!("loadgen: server thread panicked");
                transport_errors += 1;
            }
        }
    } else if args.shutdown {
        if let Ok(mut client) = Client::connect(&addr) {
            let _ = client.call(&Json::obj([("op", Json::str("shutdown"))]));
        }
    }

    if failures > 0 || transport_errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
