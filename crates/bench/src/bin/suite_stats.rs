//! Structural statistics of the evaluation suite vs. the published
//! ISCAS'85 figures — documents how faithful the stand-ins are beyond the
//! timing numbers.
//!
//! Run with `cargo run --release -p ltt-bench --bin suite_stats`.

use ltt_bench::render::Table;
use ltt_netlist::suite::iscas85_suite;

fn main() {
    // Published ISCAS'85 statistics: (name, gates, inputs, outputs).
    let published = [
        ("c17", 6, 5, 2),
        ("s432", 160, 36, 7),
        ("s499", 202, 41, 32),
        ("s880", 383, 60, 26),
        ("s1355", 546, 41, 32),
        ("s1908", 880, 33, 25),
        ("s2670", 1193, 233, 140),
        ("s3540", 1669, 50, 22),
        ("s5315", 2307, 178, 123),
        ("s7552", 3512, 207, 108),
        ("s6288", 2406, 32, 32),
    ];
    let mut table = Table::new(&[
        "circuit", "gates", "(paper)", "inputs", "(paper)", "outputs", "(paper)", "depth", "stems",
        "top", "(paper)",
    ]);
    for entry in iscas85_suite(10) {
        let (_, pg, pi, po) = published
            .iter()
            .find(|(n, ..)| *n == entry.name)
            .copied()
            .unwrap_or((entry.name, 0, 0, 0));
        let c = &entry.circuit;
        table.row(&[
            entry.name.to_string(),
            c.num_gates().to_string(),
            pg.to_string(),
            c.inputs().len().to_string(),
            pi.to_string(),
            c.outputs().len().to_string(),
            po.to_string(),
            c.depth().to_string(),
            c.num_fanout_stems().to_string(),
            c.topological_delay().to_string(),
            entry.paper_top.to_string(),
        ]);
    }
    println!("Suite structural statistics vs. the published ISCAS'85 figures");
    println!("(c17 is the real netlist NOR-mapped; sNNN are stand-ins; the");
    println!("c17 gate count differs from the raw 6-NAND netlist because the");
    println!("paper's NOR implementation is larger)");
    println!();
    println!("{}", table.render());
}
