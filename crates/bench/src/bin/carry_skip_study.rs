//! Regenerates the **carry-skip adder study** (§6, Figures 2–3): the
//! 16-bit carry-skip adder whose full ripple path is false. The paper
//! reports topological delay 2000, floating-mode delay 1000, and 1636
//! backtracks to settle both δ = 1000 (vector) and δ = 1001 (inconsistent).
//!
//! Run with `cargo run --release -p ltt-bench --bin carry_skip_study`.

use ltt_bench::table1::critical_output;
use ltt_core::{exact_delay, verify, Verdict, VerifyConfig};
use ltt_netlist::generators::carry_skip_adder;
use ltt_sta::vector_violates;

fn main() {
    // Delay 50 puts the 16-bit/4-block adder at the paper's scale
    // (top ≈ 2000).
    let c = carry_skip_adder(16, 4, 50);
    let cout = critical_output(&c);
    let top = c.arrival_times()[cout.index()];
    println!(
        "16-bit carry-skip adder (4-bit blocks, delay 50): {} gates, top = {top}",
        c.num_gates()
    );
    println!("(paper: topological delay 2000, floating-mode delay 1000)");

    let config = VerifyConfig::default();
    let t0 = std::time::Instant::now();
    let search = exact_delay(&c, cout, &config);
    let elapsed = t0.elapsed();
    println!(
        "exact floating-mode delay: {} (proven: {}), {} backtracks total, {:.1} ms",
        search.delay,
        search.proven_exact,
        search.backtracks,
        elapsed.as_secs_f64() * 1e3
    );
    println!(
        "top/floating ratio: {:.2} (paper: {:.2})",
        top as f64 / search.delay as f64,
        2000.0 / 1000.0
    );

    // The two boundary checks of the paper.
    let r_hi = verify(&c, cout, search.delay + 1, &config);
    println!(
        "δ = {}: {:?} ({} backtracks)",
        search.delay + 1,
        verdict_name(&r_hi.verdict),
        r_hi.backtracks
    );
    let r_lo = verify(&c, cout, search.delay, &config);
    match &r_lo.verdict {
        Verdict::Violation { vector } => {
            assert!(vector_violates(&c, vector, cout, search.delay));
            println!(
                "δ = {}: test vector found ({} backtracks), certified by the simulator",
                search.delay, r_lo.backtracks
            );
        }
        other => println!("δ = {}: {other:?}", search.delay),
    }
}

fn verdict_name(v: &Verdict) -> String {
    match v {
        Verdict::NoViolation { stage } => format!("NoViolation ({stage:?})"),
        Verdict::Violation { .. } => "Violation".into(),
        Verdict::Possible => "Possible".into(),
        Verdict::Abandoned => "Abandoned".into(),
    }
}
