//! The Table 1 experiment: per-circuit stage verdicts, backtracks and CPU
//! time for the evaluation suite, at the paper's two δ points per circuit
//! (the exact floating-mode delay, and exact + 1 where the pipeline must
//! prove no violation).

use ltt_core::{BatchRunner, Budget, CheckSession, Engine, Stage, Verdict, VerifyConfig};
use ltt_netlist::suite::SuiteEntry;
use ltt_netlist::{Circuit, NetId};
use std::time::Duration;

/// One rendered row of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Circuit name.
    pub name: String,
    /// Measured topological delay.
    pub top: i64,
    /// The checked δ.
    pub delta: i64,
    /// Marker: `E` exact delay, `U` upper bound, empty otherwise.
    pub marker: char,
    /// Stage column "BEFORE G.I.T.D.": 'P' or 'N'.
    pub before_gitd: char,
    /// Stage column "AFTER G.I.T.D.": 'P', 'N' or '-'.
    pub after_gitd: char,
    /// Stage column "AFTER STEM C.": 'P', 'N' or '-'.
    pub after_stems: char,
    /// Case-analysis backtracks, or `None` when not needed ('-').
    pub backtracks: Option<u64>,
    /// Case-analysis result: 'V', 'N', 'A' or '-'.
    pub result: char,
    /// CPU time of this row's checks.
    pub cpu: Duration,
    /// The paper's reference values `(top, δ_exact, backtracks)` if any.
    pub paper: Option<(i64, Option<i64>, Option<u64>)>,
}

/// The stage at which a no-violation proof landed, as Table 1 columns.
fn stage_columns(reports: &[ltt_core::VerifyReport]) -> (char, char, char, Option<u64>, char) {
    // Worst (latest) stage over the outputs that had to be proven.
    let mut worst = 0u8; // 1 narrowing, 2 dominators, 3 stems, 4 case analysis
    let mut any_violation = false;
    let mut abandoned = false;
    let mut backtracks = 0u64;
    let mut case_ran = false;
    for r in reports {
        backtracks += r.backtracks;
        match &r.verdict {
            Verdict::NoViolation { stage } => {
                let s = match stage {
                    Stage::Narrowing => 1,
                    Stage::Dominators => 2,
                    Stage::StemCorrelation => 3,
                    Stage::CaseAnalysis => {
                        case_ran = true;
                        4
                    }
                    // Not produced by the narrowing pipeline.
                    Stage::Sat => 4,
                };
                worst = worst.max(s);
            }
            Verdict::Violation { .. } => {
                any_violation = true;
                case_ran = true;
                worst = worst.max(4);
            }
            Verdict::Abandoned => {
                abandoned = true;
                case_ran = true;
                worst = worst.max(4);
            }
            Verdict::Possible => {
                worst = worst.max(4);
            }
        }
    }
    let before = if worst <= 1 { 'N' } else { 'P' };
    let after_gitd = if worst <= 1 {
        '-'
    } else if worst <= 2 {
        'N'
    } else {
        'P'
    };
    let after_stems = if worst <= 2 {
        '-'
    } else if worst <= 3 {
        'N'
    } else {
        'P'
    };
    let result = if worst <= 3 {
        '-'
    } else if abandoned {
        'A'
    } else if any_violation {
        'V'
    } else {
        'N'
    };
    let btr = if case_ran { Some(backtracks) } else { None };
    (before, after_gitd, after_stems, btr, result)
}

/// The output with the largest topological arrival (the circuit's critical
/// output, where the exact circuit delay lives).
pub fn critical_output(circuit: &Circuit) -> NetId {
    let arrival = circuit.arrival_times();
    circuit
        .outputs()
        .iter()
        .copied()
        .max_by_key(|o| arrival[o.index()])
        .expect("circuit has outputs")
}

/// Runs the two Table 1 rows for one suite entry, serially. Equivalent to
/// [`run_entry_with`] on [`BatchRunner::serial`].
pub fn run_entry(entry: &SuiteEntry, config: &VerifyConfig) -> Vec<Table1Row> {
    run_entry_with(entry, config, BatchRunner::serial())
}

/// Runs the two Table 1 rows for one suite entry, fanning the per-output
/// checks over `runner`'s workers.
///
/// One [`CheckSession`] is opened per entry, so the learning table, SCOAP
/// measures, stem candidates and base fixpoint are computed once and
/// shared by the delay search and both published rows. The exact
/// floating-mode delay is first determined with the verifier's own delay
/// search on the critical output (certified against the simulator); the
/// published rows are then re-measured: δ = exact + 1 over **all** outputs
/// (must prove `N`), and δ = exact on the critical output (must find `V`).
/// If the search was abandoned (the c6288 pattern), the rows report the
/// proven upper bound and the abandoned probe instead.
///
/// Verdicts and backtrack counts are identical for every `runner` — only
/// the wall-clock (`cpu` column) changes.
pub fn run_entry_with(
    entry: &SuiteEntry,
    config: &VerifyConfig,
    runner: BatchRunner,
) -> Vec<Table1Row> {
    let circuit = &entry.circuit;
    let top = circuit.topological_delay();
    let s = critical_output(circuit);
    let session = CheckSession::new(circuit, config.clone());
    // Engine dispatch (DESIGN.md §15): `ltt_sat::exact_delay` routes by
    // `config.engine` and is the narrowing search verbatim for `narrow`.
    let search = ltt_sat::exact_delay(&session, s);
    let mut rows = Vec::new();

    if search.proven_exact {
        let exact = search.delay;
        // Row 1: δ = exact + 1 over all outputs, fanned over the runner
        // (serially through the SAT/hybrid path — it is the cross-check
        // engine, not the throughput one).
        let batch = if config.engine == Engine::Narrow {
            runner.verify_all_outputs(&session, exact + 1)
        } else {
            let checks: Vec<(NetId, i64)> =
                circuit.outputs().iter().map(|&o| (o, exact + 1)).collect();
            ltt_sat::run_checks(
                &session,
                config.engine,
                &checks,
                &Budget::unlimited(),
                false,
            )
        };
        let (b, g, st, btr, res) = stage_columns(&batch.reports);
        rows.push(Table1Row {
            name: entry.name.to_string(),
            top,
            delta: exact + 1,
            marker: ' ',
            before_gitd: b,
            after_gitd: g,
            after_stems: st,
            backtracks: btr,
            result: res,
            cpu: batch.wall,
            paper: None,
        });
        // Row 2: δ = exact on the critical output.
        let t0 = std::time::Instant::now();
        let report = ltt_sat::verify(&session, s, exact);
        let (b, g, st, btr, res) = stage_columns(std::slice::from_ref(&report));
        rows.push(Table1Row {
            name: entry.name.to_string(),
            top,
            delta: exact,
            marker: 'E',
            before_gitd: b,
            after_gitd: g,
            after_stems: st,
            backtracks: btr,
            result: res,
            cpu: t0.elapsed(),
            paper: Some((entry.paper_top, entry.paper_exact, entry.paper_backtracks)),
        });
    } else {
        // Abandoned search (the c6288 pattern). Row 1: the smallest δ the
        // search-free pipeline proved (= upper bound + 1); row 2: the probe
        // that was abandoned, taken straight from the search's reports.
        let ub = search.upper_bound;
        let t0 = std::time::Instant::now();
        let report = ltt_sat::verify(&session, s, ub + 1);
        let (b, g, st, btr, res) = stage_columns(std::slice::from_ref(&report));
        rows.push(Table1Row {
            name: entry.name.to_string(),
            top,
            delta: ub + 1,
            marker: 'U',
            before_gitd: b,
            after_gitd: g,
            after_stems: st,
            backtracks: btr,
            result: res,
            cpu: t0.elapsed(),
            paper: None,
        });
        if let Some(abandoned) = search
            .probes
            .iter()
            .find(|p| matches!(p.verdict, Verdict::Abandoned))
        {
            let (b, g, st, btr, res) = stage_columns(std::slice::from_ref(abandoned));
            rows.push(Table1Row {
                name: entry.name.to_string(),
                top,
                delta: abandoned.delta,
                marker: ' ',
                before_gitd: b,
                after_gitd: g,
                after_stems: st,
                backtracks: btr,
                result: res,
                cpu: abandoned.elapsed,
                paper: Some((entry.paper_top, entry.paper_exact, entry.paper_backtracks)),
            });
        }
    }
    rows
}

/// Renders rows in the paper's column layout, with the paper's reference
/// values appended for side-by-side comparison.
pub fn render_rows(rows: &[Table1Row]) -> String {
    let mut t = crate::render::Table::new(&[
        "CIRCUIT",
        "MAX.TOP",
        "DELTA",
        "",
        "BEFORE G.I.T.D.",
        "AFTER G.I.T.D.",
        "AFTER STEM C.",
        "C.A. #BTRCK",
        "C.A. RESULT",
        "CPU (ms)",
        "PAPER top/exact/btrck",
    ]);
    for r in rows {
        let paper = match r.paper {
            Some((pt, pe, pb)) => format!(
                "{pt}/{}/{}",
                pe.map_or("-".into(), |v| v.to_string()),
                pb.map_or("-".into(), |v| v.to_string())
            ),
            None => String::new(),
        };
        t.row(&[
            r.name.clone(),
            r.top.to_string(),
            r.delta.to_string(),
            r.marker.to_string(),
            r.before_gitd.to_string(),
            r.after_gitd.to_string(),
            r.after_stems.to_string(),
            r.backtracks.map_or("-".into(), |b| b.to_string()),
            r.result.to_string(),
            format!("{:.2}", r.cpu.as_secs_f64() * 1e3),
            paper,
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltt_netlist::suite::c17_nor;

    #[test]
    fn c17_rows_match_paper() {
        let entry = SuiteEntry {
            name: "c17",
            circuit: c17_nor(10),
            paper_top: 50,
            paper_exact: Some(50),
            paper_backtracks: Some(0),
            standin: false,
        };
        let rows = run_entry(&entry, &VerifyConfig::default());
        assert_eq!(rows.len(), 2);
        // δ = 51 proven, δ = 50 vector found.
        assert_eq!(rows[0].delta, 51);
        assert_eq!(rows[1].delta, 50);
        assert_eq!(rows[1].marker, 'E');
        assert_eq!(rows[1].result, 'V');
        assert_eq!(rows[1].top, 50); // the paper's NOR-mapped topological delay
        let rendered = render_rows(&rows);
        assert!(rendered.contains("c17"));
    }

    #[test]
    fn parallel_rows_match_serial_rows() {
        let entry = SuiteEntry {
            name: "c17",
            circuit: c17_nor(10),
            paper_top: 50,
            paper_exact: Some(50),
            paper_backtracks: Some(0),
            standin: false,
        };
        let config = VerifyConfig::default();
        let serial = run_entry_with(&entry, &config, BatchRunner::serial());
        let parallel = run_entry_with(&entry, &config, BatchRunner::new(4));
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            // Everything but the wall-clock is identical.
            assert_eq!(a.delta, b.delta);
            assert_eq!(a.marker, b.marker);
            assert_eq!(a.before_gitd, b.before_gitd);
            assert_eq!(a.after_gitd, b.after_gitd);
            assert_eq!(a.after_stems, b.after_stems);
            assert_eq!(a.backtracks, b.backtracks);
            assert_eq!(a.result, b.result);
        }
    }
}
