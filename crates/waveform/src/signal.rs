//! Abstract signals: the variable domains of the constraint system
//! (Definition 2 of the paper).
//!
//! An *abstract signal* pairs two abstract waveforms — one per settling
//! class: `S = (w, w̄)` with `w.v = 0` and `w̄.v = 1`. It denotes the union
//! of the two waveform sets and is the domain associated with every circuit
//! net during narrowing.

use crate::{Aw, Time};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A binary signal level (the *class* of an abstract waveform).
///
/// # Examples
///
/// ```
/// use ltt_waveform::Level;
/// assert_eq!(!Level::Zero, Level::One);
/// assert_eq!(Level::from_bool(true), Level::One);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Level {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
}

impl Level {
    /// Both levels, in `[Zero, One]` order (handy for iterating classes).
    pub const BOTH: [Level; 2] = [Level::Zero, Level::One];

    /// Converts from `bool` (`true` ⇒ [`Level::One`]).
    pub fn from_bool(b: bool) -> Level {
        if b {
            Level::One
        } else {
            Level::Zero
        }
    }

    /// Converts to `bool` (`One` ⇒ `true`).
    pub fn to_bool(self) -> bool {
        self == Level::One
    }

    /// Index of this level (`Zero` ⇒ 0, `One` ⇒ 1).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::ops::Not for Level {
    type Output = Level;
    fn not(self) -> Level {
        match self {
            Level::Zero => Level::One,
            Level::One => Level::Zero,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Zero => write!(f, "0"),
            Level::One => write!(f, "1"),
        }
    }
}

/// An abstract signal: a pair of abstract waveforms, one per settling class.
///
/// `Signal` is the domain type of the constraint system: a net's domain
/// `(S₀, S₁)` contains the binary waveforms that settle to 0 with last
/// transition in `S₀`, plus those that settle to 1 with last transition in
/// `S₁`. All §3.1.2 relations (equality, narrowness, inclusion,
/// intersection, union) operate componentwise.
///
/// # Examples
///
/// ```
/// use ltt_waveform::{Aw, Level, Signal, Time};
///
/// // Floating-mode primary input: stable after time 0 in both classes.
/// let input = Signal::floating_input();
/// assert_eq!(input[Level::Zero], Aw::before(Time::ZERO));
///
/// // A timing-check output domain: transitions at or after δ = 61.
/// let check = Signal::violation(Time::new(61));
/// assert_eq!(check[Level::One], Aw::after(Time::new(61)));
///
/// // Narrowing is componentwise intersection.
/// let narrowed = input.intersect(Signal::single_class(Level::One, Aw::FULL));
/// assert!(narrowed[Level::Zero].is_empty());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Signal {
    classes: [Aw; 2],
}

impl Signal {
    /// The empty signal `(φ, φ)`: the net can carry no waveform at all —
    /// the constraint system is inconsistent (Theorem 2).
    pub const EMPTY: Signal = Signal {
        classes: [Aw::EMPTY, Aw::EMPTY],
    };

    /// The full signal `(0|_{−∞}^{+∞}, 1|_{−∞}^{+∞})`: any binary waveform.
    pub const FULL: Signal = Signal {
        classes: [Aw::FULL, Aw::FULL],
    };

    /// Creates a signal from its class-0 and class-1 abstract waveforms.
    pub fn new(zero: Aw, one: Aw) -> Signal {
        Signal {
            classes: [zero, one],
        }
    }

    /// The floating-mode primary-input domain `(0|_{−∞}^0, 1|_{−∞}^0)`:
    /// waveforms of either final value that are stable after time 0
    /// (initial state unknown, vector applied at time 0).
    pub fn floating_input() -> Signal {
        Signal::new(Aw::before(Time::ZERO), Aw::before(Time::ZERO))
    }

    /// The transition-mode primary-input domain `(0|_0^0, 1|_0^0)`: every
    /// input has its (single) transition exactly at time 0. Changing the
    /// input abstract waveforms is all that is needed to switch circuit
    /// delay modes in this framework.
    pub fn transition_input() -> Signal {
        Signal::new(Aw::at(Time::ZERO), Aw::at(Time::ZERO))
    }

    /// The timing-check output domain `(0|_δ^{+∞}, 1|_δ^{+∞})`: only the
    /// waveforms that still transition at or after `δ` (the violating ones).
    pub fn violation(delta: Time) -> Signal {
        Signal::new(Aw::after(delta), Aw::after(delta))
    }

    /// A signal restricted to a single class, empty in the other.
    pub fn single_class(level: Level, w: Aw) -> Signal {
        let mut s = Signal::EMPTY;
        s.classes[level.index()] = w;
        s
    }

    /// A constant signal: settles to `level` and never transitions.
    pub fn constant(level: Level) -> Signal {
        Signal::single_class(level, Aw::before(Time::NEG_INF))
    }

    /// Whether both classes are empty — the inconsistent domain.
    pub fn is_empty(self) -> bool {
        self.classes[0].is_empty() && self.classes[1].is_empty()
    }

    /// The single settling class, if exactly one class is non-empty.
    ///
    /// Case analysis *fixes the class* of a net: after a decision (or after
    /// narrowing empties one class) this returns `Some(level)`.
    pub fn fixed_class(self) -> Option<Level> {
        match (self.classes[0].is_empty(), self.classes[1].is_empty()) {
            (false, true) => Some(Level::Zero),
            (true, false) => Some(Level::One),
            _ => None,
        }
    }

    /// Componentwise intersection (§3.1.2).
    pub fn intersect(self, other: Signal) -> Signal {
        Signal::new(
            self.classes[0].intersect(other.classes[0]),
            self.classes[1].intersect(other.classes[1]),
        )
    }

    /// Componentwise abstract union (§3.1.2); may over-approximate set union
    /// within each class (Lemma 1).
    pub fn union(self, other: Signal) -> Signal {
        Signal::new(
            self.classes[0].union(other.classes[0]),
            self.classes[1].union(other.classes[1]),
        )
    }

    /// Componentwise inclusion `S₁ ⊆ S₂` (non-strict narrowness).
    pub fn is_subset_of(self, other: Signal) -> bool {
        self.classes[0].is_subset_of(other.classes[0])
            && self.classes[1].is_subset_of(other.classes[1])
    }

    /// Strict narrowness `S₁ < S₂`: included and not equal.
    pub fn is_narrower_than(self, other: Signal) -> bool {
        self != other && self.is_subset_of(other)
    }

    /// Restricts the signal to one class (the other becomes `φ`) — the
    /// waveform-splitting decision of the case analysis.
    pub fn restrict_to_class(self, level: Level) -> Signal {
        Signal::single_class(level, self.classes[level.index()])
    }

    /// Latest settling time over both classes: after this time, no waveform
    /// in the domain can still transition (`−∞` if the domain is empty).
    pub fn latest_settle(self) -> Time {
        self.classes[0].max().max(self.classes[1].max())
    }

    /// Earliest last-transition bound over the non-empty classes (`+∞` if
    /// the domain is empty). Every waveform in the domain has its last
    /// transition at or after this time.
    pub fn earliest_last_transition(self) -> Time {
        let mut t = Time::POS_INF;
        for w in self.classes {
            if !w.is_empty() {
                t = t.min(w.lmin());
            }
        }
        t
    }

    /// Whether the domain still contains a waveform transitioning at or
    /// after `t` — the dynamic-carrier condition
    /// `D ∩ (0|_t^{+∞}, 1|_t^{+∞}) ≠ (φ, φ)` of Definition 7.
    pub fn can_transition_at_or_after(self, t: Time) -> bool {
        !self.intersect(Signal::violation(t)).is_empty()
    }

    /// Corollary 1 narrowing: keep only waveforms transitioning at or after
    /// `t` (intersect both classes with `[t, +∞]`).
    pub fn require_transition_at_or_after(self, t: Time) -> Signal {
        self.intersect(Signal::violation(t))
    }

    /// Forward settling narrowing: keep only waveforms stable after `t`.
    pub fn require_stable_after(self, t: Time) -> Signal {
        self.intersect(Signal::new(Aw::before(t), Aw::before(t)))
    }
}

impl Index<Level> for Signal {
    type Output = Aw;
    fn index(&self, level: Level) -> &Aw {
        &self.classes[level.index()]
    }
}

impl IndexMut<Level> for Signal {
    fn index_mut(&mut self, level: Level) -> &mut Aw {
        &mut self.classes[level.index()]
    }
}

impl fmt::Debug for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(0|{}, 1|{})", self.classes[0], self.classes[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aw(l: i64, m: i64) -> Aw {
        Aw::new(Time::new(l), Time::new(m))
    }

    #[test]
    fn level_negation_and_indexing() {
        assert_eq!(!Level::Zero, Level::One);
        assert_eq!(Level::Zero.index(), 0);
        assert_eq!(Level::One.index(), 1);
        assert!(Level::One.to_bool());
        assert_eq!(Level::from_bool(false), Level::Zero);
    }

    #[test]
    fn constructors_have_paper_shapes() {
        let f = Signal::floating_input();
        assert_eq!(f[Level::Zero], Aw::before(Time::ZERO));
        assert_eq!(f[Level::One], Aw::before(Time::ZERO));

        let v = Signal::violation(Time::new(61));
        assert_eq!(v[Level::Zero], Aw::after(Time::new(61)));
        assert_eq!(v[Level::One], Aw::after(Time::new(61)));

        let c = Signal::constant(Level::One);
        assert!(c[Level::Zero].is_empty());
        assert!(!c[Level::One].is_empty());
        assert_eq!(c[Level::One].max(), Time::NEG_INF);
    }

    #[test]
    fn emptiness_and_fixed_class() {
        assert!(Signal::EMPTY.is_empty());
        assert!(!Signal::FULL.is_empty());
        assert_eq!(Signal::FULL.fixed_class(), None);
        assert_eq!(
            Signal::single_class(Level::One, Aw::FULL).fixed_class(),
            Some(Level::One)
        );
        assert_eq!(Signal::EMPTY.fixed_class(), None);
    }

    #[test]
    fn componentwise_set_algebra() {
        let a = Signal::new(aw(0, 10), aw(5, 20));
        let b = Signal::new(aw(5, 15), Aw::EMPTY);
        let i = a.intersect(b);
        assert_eq!(i[Level::Zero], aw(5, 10));
        assert!(i[Level::One].is_empty());

        let u = a.union(b);
        assert_eq!(u[Level::Zero], aw(0, 15));
        assert_eq!(u[Level::One], aw(5, 20));
    }

    #[test]
    fn narrowness_is_strict_inclusion() {
        let a = Signal::new(aw(2, 8), aw(5, 20));
        let b = Signal::new(aw(0, 10), aw(5, 20));
        assert!(a.is_subset_of(b));
        assert!(a.is_narrower_than(b));
        assert!(!b.is_narrower_than(a));
        assert!(!a.is_narrower_than(a));
    }

    #[test]
    fn class_restriction() {
        let s = Signal::new(aw(0, 10), aw(5, 20));
        let r = s.restrict_to_class(Level::One);
        assert!(r[Level::Zero].is_empty());
        assert_eq!(r[Level::One], aw(5, 20));
    }

    #[test]
    fn settle_and_transition_bounds() {
        let s = Signal::new(aw(0, 10), aw(5, 20));
        assert_eq!(s.latest_settle(), Time::new(20));
        assert_eq!(s.earliest_last_transition(), Time::new(0));
        assert_eq!(Signal::EMPTY.latest_settle(), Time::NEG_INF);
        assert_eq!(Signal::EMPTY.earliest_last_transition(), Time::POS_INF);
    }

    #[test]
    fn dynamic_carrier_condition() {
        let s = Signal::new(aw(0, 10), Aw::EMPTY);
        assert!(s.can_transition_at_or_after(Time::new(10)));
        assert!(!s.can_transition_at_or_after(Time::new(11)));
    }

    #[test]
    fn corollary1_narrowing() {
        let s = Signal::new(aw(0, 10), aw(5, 20));
        let n = s.require_transition_at_or_after(Time::new(11));
        assert!(n[Level::Zero].is_empty());
        assert_eq!(n[Level::One], aw(11, 20));
    }

    #[test]
    fn forward_settling_narrowing() {
        let s = Signal::FULL.require_stable_after(Time::new(10));
        assert_eq!(s[Level::Zero], Aw::before(Time::new(10)));
        assert_eq!(s[Level::One], Aw::before(Time::new(10)));
    }

    #[test]
    fn display_form() {
        let s = Signal::new(aw(1, 2), Aw::EMPTY);
        assert_eq!(s.to_string(), "(0|[1, 2], 1|phi)");
    }
}
