//! Abstract waveforms and the last-transition-interval algebra underlying
//! waveform-narrowing gate-level timing analysis.
//!
//! This crate implements §3.1 of Kassab, Cerny, Aourid & Krodel,
//! *"Propagation of Last-Transition-Time Constraints in Gate-Level Timing
//! Analysis"* (DATE 1998):
//!
//! * [`Time`] — the discrete time axis extended with `−∞`/`+∞`;
//! * [`Aw`] — an *abstract waveform* `v|_lmin^max`: the set of binary
//!   waveforms settling to class `v` after `max` with the last transition at
//!   or after `lmin`, together with the full relational algebra (equality,
//!   narrowness, inclusion, intersection, union, and the Lemma 1 union
//!   exactness criterion);
//! * [`Signal`] — an *abstract signal* `(S₀, S₁)`, one abstract waveform per
//!   settling class; the domain of every net variable in the constraint
//!   system;
//! * [`dense`] — an exact finite-window waveform-set oracle used to validate
//!   the interval rules (soundness property tests live in the consuming
//!   crates and in this crate's `tests/`).
//!
//! # Example
//!
//! Reproducing the shapes from the paper's Example 2 (the timing check
//! `σ = (ξ, s, 61)` on the Figure 1 circuit):
//!
//! ```
//! use ltt_waveform::{Aw, Level, Signal, Time};
//!
//! // Floating-mode primary inputs: stable after time 0.
//! let input = Signal::floating_input();
//!
//! // Timing-check output domain: transitions at or after δ = 61.
//! let d_s = Signal::violation(Time::new(61));
//!
//! // Forward propagation bounds the settling time of an internal net
//! // (delay 10 per gate level):
//! let d_n1 = Signal::FULL.require_stable_after(Time::new(10));
//! assert_eq!(d_n1[Level::Zero], Aw::before(Time::new(10)));
//!
//! // …and backward propagation of the last-transition interval narrows it:
//! let d_n1 = d_n1.require_transition_at_or_after(Time::new(1));
//! assert_eq!(d_n1[Level::One], Aw::new(Time::new(1), Time::new(10)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod aw;
pub mod dense;
mod signal;
mod time;

pub use aw::Aw;
pub use signal::{Level, Signal};
pub use time::Time;
